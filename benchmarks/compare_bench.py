"""Compare a fresh ``BENCH_*.json`` against a committed baseline.

CI calls this after every benchmark job::

    python benchmarks/compare_bench.py \\
        --baseline benchmarks/baselines/BENCH_loadgen.json \\
        --fresh BENCH_loadgen.json

and fails the job when any gated metric regressed past its tolerance
(default 20%). Two input schemas are understood:

* the canonical gate schema (what ``loadgen_gate.py`` writes)::

      {"metrics": {"loadgen_rps": {"value": 1500.0,
                                   "direction": "higher",
                                   "tolerance_pct": 30}}}

* the ``--bench-json`` dump from ``benchmarks/conftest.py``
  (``{test_name: {"mean": seconds, ...}}``) — each entry becomes a
  lower-is-better metric over its mean.

Baselines are deliberately *conservative floors*, not yesterday's
numbers: CI runners vary, so a committed baseline should be a value the
slowest acceptable runner still clears. To re-baseline after a genuine
performance change, run the producing job locally (or download its
artifact), sanity-check the numbers, round them *against* yourself
(lower for higher-is-better metrics, higher for lower-is-better), and
commit the result under ``benchmarks/baselines/`` — see
``docs/CONCURRENCY.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any


def load_metrics(path: Path, default_tolerance_pct: float) -> dict[str, dict[str, Any]]:
    """Read either supported schema into {name: {value, direction, tolerance}}."""
    payload = json.loads(path.read_text())
    metrics: dict[str, dict[str, Any]] = {}
    if isinstance(payload, dict) and isinstance(payload.get("metrics"), dict):
        for name, entry in payload["metrics"].items():
            metrics[name] = {
                "value": float(entry["value"]),
                "direction": entry.get("direction", "lower"),
                "tolerance_pct": float(
                    entry.get("tolerance_pct", default_tolerance_pct)
                ),
            }
        return metrics
    # pytest-bench dump: every test's mean runtime, lower is better.
    for name, entry in payload.items():
        if isinstance(entry, dict) and "mean" in entry:
            metrics[name] = {
                "value": float(entry["mean"]),
                "direction": "lower",
                "tolerance_pct": default_tolerance_pct,
            }
    return metrics


def regression_pct(direction: str, baseline: float, fresh: float) -> float:
    """How much worse ``fresh`` is than ``baseline``, in percent (<=0 = better)."""
    if baseline == 0:
        return 0.0
    if direction == "higher":
        return 100.0 * (baseline - fresh) / baseline
    return 100.0 * (fresh - baseline) / baseline


def compare(
    baseline: dict[str, dict[str, Any]],
    fresh: dict[str, dict[str, Any]],
) -> tuple[list[str], list[str]]:
    """Returns (report lines, failure lines)."""
    lines: list[str] = []
    failures: list[str] = []
    for name in sorted(baseline):
        base = baseline[name]
        entry = fresh.get(name)
        if entry is None:
            failures.append(f"{name}: present in baseline but missing from fresh run")
            continue
        tolerance = float(base["tolerance_pct"])
        direction = str(base["direction"])
        delta = regression_pct(direction, base["value"], entry["value"])
        verdict = "OK" if delta <= tolerance else "REGRESSED"
        lines.append(
            f"{name:<40} base={base['value']:<12.6g} fresh={entry['value']:<12.6g} "
            f"({'+' if delta >= 0 else ''}{delta:.1f}% vs {tolerance:g}% allowed, "
            f"{direction} is better) {verdict}"
        )
        if delta > tolerance:
            failures.append(
                f"{name}: {entry['value']:.6g} is {delta:.1f}% worse than "
                f"baseline {base['value']:.6g} (allowed {tolerance:g}%)"
            )
    for name in sorted(set(fresh) - set(baseline)):
        lines.append(f"{name:<40} fresh={fresh[name]['value']:<12.6g} (no baseline)")
    return lines, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True, type=Path)
    parser.add_argument("--fresh", required=True, type=Path)
    parser.add_argument(
        "--tolerance-pct",
        type=float,
        default=20.0,
        help="default allowed regression when the baseline entry has no "
        "tolerance_pct of its own (default 20)",
    )
    parser.add_argument(
        "--allow-missing-baseline",
        action="store_true",
        help="exit 0 (with a note) when the baseline file does not exist "
        "— for benchmarks that have not been baselined yet",
    )
    args = parser.parse_args(argv)
    if not args.baseline.exists():
        if args.allow_missing_baseline:
            print(f"no baseline at {args.baseline}; skipping comparison")
            return 0
        print(f"baseline file {args.baseline} does not exist", file=sys.stderr)
        return 2
    if not args.fresh.exists():
        print(f"fresh results file {args.fresh} does not exist", file=sys.stderr)
        return 2
    baseline = load_metrics(args.baseline, args.tolerance_pct)
    fresh = load_metrics(args.fresh, args.tolerance_pct)
    lines, failures = compare(baseline, fresh)
    print(f"comparing {args.fresh} against {args.baseline}")
    for line in lines:
        print(line)
    if failures:
        print(f"\n{len(failures)} regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nno regressions")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
