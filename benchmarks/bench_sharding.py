"""The CI sharding gate: prove ranking throughput scales with shards.

Runs the same seeded loadgen workload (heavy on keyless rank queries,
which the shard replicas serve) against three fleet sizes:

1. **1 shard** — the single ``SensingServer`` deployed today, with its
   worker pool deliberately bounded (``workers=1`` plus a simulated
   per-request I/O delay) so one server's capacity is well-defined;
2. **mid fleet** (default 4 shards) — shown for the near-linear curve,
   not gated;
3. **8 shards** — each shard bounded exactly like the single server.

Categories are pinned round-robin across the shards, so the offered
load splits evenly and the measured ratio is shard capacity, not hash
luck. The acceptance criterion is the 1→8 throughput ratio: it must be
at least ``--min-speedup`` (default 5×), and every session must
complete with zero error replies at every fleet size.

Writes ``BENCH_sharding.json`` in the canonical gate schema that
``compare_bench.py`` diffs against the committed baseline in
``benchmarks/baselines/``.

Usage::

    python benchmarks/bench_sharding.py                # CI defaults
    python benchmarks/bench_sharding.py --phones 200   # quicker local run
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from pathlib import Path


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--phones", type=int, default=400)
    parser.add_argument("--seed", type=int, default=2014)
    parser.add_argument("--shards", type=int, default=8)
    parser.add_argument("--mid-shards", type=int, default=4)
    # Large enough that simulated I/O wait dominates per-request Python
    # CPU — shard count, not the GIL, must be what bounds throughput.
    parser.add_argument("--io-delay-ms", type=float, default=15.0)
    parser.add_argument("--min-speedup", type=float, default=5.0)
    parser.add_argument("--out", type=Path, default=Path("BENCH_sharding.json"))
    args = parser.parse_args(argv)

    from repro.sim.loadgen import LoadgenSpec, format_report, run_loadgen

    # Rank-heavy mix: every other phone sends a keyless rank query, so
    # the replicas' read path carries real load at every fleet size.
    base = LoadgenSpec(
        phones=args.phones,
        seed=args.seed,
        mode="concurrent",
        clients=32,
        workers=1,  # bound one shard's capacity: ~1/io_delay req/s
        queue_capacity=64,
        io_delay_s=args.io_delay_ms / 1000.0,
        places=16,
        categories=8,
        replicas=1,
        rank_every=2,
        shards=1,
    )

    failures: list[str] = []
    reports = {}
    for shards in (1, args.mid_shards, args.shards):
        spec = replace(base, shards=shards)
        report = run_loadgen(spec)
        reports[shards] = report
        print(f"--- {shards} shard(s) ---")
        print(format_report(report))
        print()
        if report.sessions_completed != args.phones:
            failures.append(
                f"{shards} shard(s): only {report.sessions_completed}/"
                f"{args.phones} sessions completed"
            )
        if report.error_replies:
            failures.append(
                f"{shards} shard(s): {report.error_replies} error replies"
            )
        if report.replay_mismatches:
            failures.append(
                f"{shards} shard(s): {report.replay_mismatches} replay "
                "mismatches"
            )

    single = reports[1]
    full = reports[args.shards]
    mid = reports[args.mid_shards]
    speedup = full.requests_per_s / max(single.requests_per_s, 1e-9)
    mid_speedup = mid.requests_per_s / max(single.requests_per_s, 1e-9)
    print(
        f"scaling — 1 shard {single.requests_per_s:,.0f} req/s, "
        f"{args.mid_shards} shards {mid.requests_per_s:,.0f} req/s "
        f"({mid_speedup:.2f}x), {args.shards} shards "
        f"{full.requests_per_s:,.0f} req/s ({speedup:.2f}x)"
    )
    if speedup < args.min_speedup:
        failures.append(
            f"1→{args.shards} shard speedup {speedup:.2f}x below required "
            f"{args.min_speedup:.1f}x"
        )

    payload = {
        "metrics": {
            "sharding_speedup": {
                "value": speedup,
                "direction": "higher",
                "tolerance_pct": 25,
            },
            "sharding_rps": {
                "value": full.requests_per_s,
                "direction": "higher",
                "tolerance_pct": 30,
            },
        },
        "info": {
            "phones": args.phones,
            "seed": args.seed,
            "shards": args.shards,
            "mid_shards": args.mid_shards,
            "io_delay_ms": args.io_delay_ms,
            "workload_digest": full.workload_digest,
            "single_shard_rps": single.requests_per_s,
            "mid_shard_rps": mid.requests_per_s,
            "mid_speedup": mid_speedup,
            "requests_ok": full.requests_ok,
            "sessions_completed": full.sessions_completed,
        },
    }
    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {args.out}")

    if failures:
        print(f"\nsharding gate FAILED ({len(failures)}):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("sharding gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
