"""Ablation — coverage-kernel width σ.

The paper uses a large σ for slowly changing features and a small σ for
fast ones; this sweep quantifies how much coverage both schedulers can
achieve as σ varies (smaller σ ⇒ each measurement covers less time ⇒
lower achievable coverage at fixed budget).
"""

from benchmarks._ablation_common import print_table, record_points, run_once
from repro.experiments.ablations import run_sigma_ablation


def test_ablation_sigma_sweep(benchmark):
    points = run_once(benchmark, lambda: run_sigma_ablation(runs=3, seed=0))
    print_table(
        [("sigma (s)", ">10.1f"), ("greedy", ">8.4f"), ("baseline", ">9.4f")],
        [
            (p.sigma_s, p.greedy_coverage, p.baseline_coverage)
            for p in points
        ],
    )
    coverages = [point.greedy_coverage for point in points]
    assert coverages == sorted(coverages)  # wider kernel ⇒ more coverage
    record_points(
        benchmark, points, "sigma_s", "greedy_coverage", "baseline_coverage"
    )
