"""Ablation — coverage-kernel width σ.

The paper uses a large σ for slowly changing features and a small σ for
fast ones; this sweep quantifies how much coverage both schedulers can
achieve as σ varies (smaller σ ⇒ each measurement covers less time ⇒
lower achievable coverage at fixed budget).
"""

from repro.experiments.ablations import run_sigma_ablation


def test_ablation_sigma_sweep(benchmark):
    points = benchmark.pedantic(
        lambda: run_sigma_ablation(runs=3, seed=0), rounds=1, iterations=1
    )
    print()
    print(f"{'sigma (s)':>10}  {'greedy':>8}  {'baseline':>9}")
    for point in points:
        print(
            f"{point.sigma_s:>10.1f}  {point.greedy_coverage:>8.4f}  "
            f"{point.baseline_coverage:>9.4f}"
        )
    coverages = [point.greedy_coverage for point in points]
    assert coverages == sorted(coverages)  # wider kernel ⇒ more coverage
    benchmark.extra_info["points"] = [
        (point.sigma_s, point.greedy_coverage, point.baseline_coverage)
        for point in points
    ]
