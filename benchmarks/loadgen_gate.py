"""The CI load gate: run ``repro loadgen`` configs and enforce thresholds.

Two passes over the same seeded workload generator:

1. **scale** — ``--phones`` (default 10000) against the concurrent
   server with a small simulated I/O delay; gates sustained req/s and
   p99 handler latency, and requires *every* session to complete with
   zero error replies and zero idempotent-replay mismatches (the
   correctness half of the gate, fully deterministic under the seed);
2. **speedup** — a smaller population with a heavier I/O delay, run
   through both the concurrent server and the single-threaded baseline;
   gates the throughput ratio (the acceptance criterion: the worker
   pool must sustain at least ``--min-speedup``× the sequential rate).

Writes ``BENCH_loadgen.json`` in the canonical gate schema that
``compare_bench.py`` diffs against the committed baseline in
``benchmarks/baselines/``. Absolute thresholds here are deliberately
lenient (they catch catastrophic breakage on any runner); the
regression comparison against the baseline is the tighter screw.

Usage::

    python benchmarks/loadgen_gate.py                 # CI defaults
    python benchmarks/loadgen_gate.py --phones 2000   # quicker local run
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--phones", type=int, default=10000)
    parser.add_argument("--seed", type=int, default=2014)
    parser.add_argument("--min-rps", type=float, default=300.0)
    parser.add_argument("--max-p99-ms", type=float, default=100.0)
    parser.add_argument("--min-speedup", type=float, default=5.0)
    parser.add_argument("--out", type=Path, default=Path("BENCH_loadgen.json"))
    args = parser.parse_args(argv)

    from repro.sim.loadgen import (
        LoadgenSpec,
        format_report,
        run_comparison,
        run_loadgen,
    )

    failures: list[str] = []

    # -- pass 1: scale -------------------------------------------------
    scale_spec = LoadgenSpec(
        phones=args.phones,
        seed=args.seed,
        mode="concurrent",
        clients=8,
        workers=8,
        queue_capacity=64,
        io_delay_s=0.0002,
    )
    scale = run_loadgen(scale_spec)
    print(format_report(scale))
    print()
    if scale.sessions_completed != args.phones:
        failures.append(
            f"scale: only {scale.sessions_completed}/{args.phones} sessions completed"
        )
    if scale.error_replies:
        failures.append(f"scale: {scale.error_replies} error replies")
    if scale.replay_mismatches:
        failures.append(f"scale: {scale.replay_mismatches} replay mismatches")
    if scale.requests_per_s < args.min_rps:
        failures.append(
            f"scale: {scale.requests_per_s:.0f} req/s below floor {args.min_rps:.0f}"
        )
    if scale.p99_ms > args.max_p99_ms:
        failures.append(
            f"scale: p99 {scale.p99_ms:.1f}ms above ceiling {args.max_p99_ms:.0f}ms"
        )

    # -- pass 2: speedup ----------------------------------------------
    speedup_spec = LoadgenSpec(
        phones=250,
        seed=args.seed,
        mode="concurrent",
        clients=16,
        workers=16,
        queue_capacity=64,
        io_delay_s=0.008,
    )
    concurrent, sequential, speedup = run_comparison(speedup_spec)
    print(
        f"speedup — concurrent {concurrent.requests_per_s:,.0f} req/s vs "
        f"sequential {sequential.requests_per_s:,.0f} req/s = {speedup:.2f}x"
    )
    if speedup < args.min_speedup:
        failures.append(
            f"speedup: {speedup:.2f}x below required {args.min_speedup:.1f}x"
        )

    payload = {
        "metrics": {
            "loadgen_rps": {
                "value": scale.requests_per_s,
                "direction": "higher",
                "tolerance_pct": 30,
            },
            "loadgen_p99_ms": {
                "value": scale.p99_ms,
                "direction": "lower",
                "tolerance_pct": 100,
            },
            "loadgen_speedup": {
                "value": speedup,
                "direction": "higher",
                "tolerance_pct": 25,
            },
        },
        "info": {
            "phones": args.phones,
            "seed": args.seed,
            "workload_digest": scale.workload_digest,
            "requests_ok": scale.requests_ok,
            "sessions_completed": scale.sessions_completed,
            "busy_rejections": scale.busy_rejections,
            "p50_ms": scale.p50_ms,
            "duration_s": scale.duration_s,
            "sequential_rps": sequential.requests_per_s,
        },
    }
    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {args.out}")

    if failures:
        print(f"\nload gate FAILED ({len(failures)}):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("load gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
