"""Ablation — the price of online operation.

The paper's scheduler is "online": each participant is scheduled the
moment they scan, without revisiting earlier users' schedules. This
bench measures how much coverage that sacrifices relative to the offline
greedy that sees all participants up front.
"""

from benchmarks._ablation_common import print_table, record_points, run_once
from repro.experiments.ablations import run_online_ablation


def test_ablation_online_vs_offline(benchmark):
    points = run_once(benchmark, lambda: run_online_ablation(runs=3, seed=0))
    print_table(
        [
            ("users", ">6"),
            ("online", ">8.4f"),
            ("offline", ">8.4f"),
            ("ratio", ">6.3f"),
        ],
        [
            (p.users, p.online_coverage, p.offline_coverage, p.ratio)
            for p in points
        ],
    )
    # Online never beats offline materially, and the price stays small.
    for point in points:
        assert point.ratio <= 1.02
        assert point.ratio >= 0.80
    record_points(
        benchmark, points, "users", "online_coverage", "offline_coverage"
    )
