"""Ablation — the price of online operation.

The paper's scheduler is "online": each participant is scheduled the
moment they scan, without revisiting earlier users' schedules. This
bench measures how much coverage that sacrifices relative to the offline
greedy that sees all participants up front.
"""

from repro.experiments.ablations import run_online_ablation


def test_ablation_online_vs_offline(benchmark):
    points = benchmark.pedantic(
        lambda: run_online_ablation(runs=3, seed=0), rounds=1, iterations=1
    )
    print()
    print(f"{'users':>6}  {'online':>8}  {'offline':>8}  {'ratio':>6}")
    for point in points:
        print(
            f"{point.users:>6}  {point.online_coverage:>8.4f}  "
            f"{point.offline_coverage:>8.4f}  {point.ratio:>6.3f}"
        )
    # Online never beats offline materially, and the price stays small.
    for point in points:
        assert point.ratio <= 1.02
        assert point.ratio >= 0.80
    benchmark.extra_info["points"] = [
        (point.users, point.online_coverage, point.offline_coverage)
        for point in points
    ]
