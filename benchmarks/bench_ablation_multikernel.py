"""Ablation — scheduling for one kernel vs the per-feature blend.

One application senses a slow feature (σ = 60 s) and a fast one (σ = 5 s)
in the same bursts. Scheduling against either single kernel under-serves
the other feature; the blended multi-kernel objective balances both and
achieves the best combined value.
"""

from benchmarks._ablation_common import print_table, record_points, run_once
from repro.experiments.ablations import run_multikernel_ablation


def test_ablation_multikernel(benchmark):
    points = run_once(
        benchmark, lambda: run_multikernel_ablation(runs=3, seed=0)
    )
    print_table(
        [
            ("strategy", "<20"),
            ("slow cov", ">8.4f"),
            ("fast cov", ">8.4f"),
            ("blend value", ">11.1f"),
        ],
        [
            (
                p.strategy,
                p.slow_feature_coverage,
                p.fast_feature_coverage,
                p.blended_value,
            )
            for p in points
        ],
    )
    by_name = {point.strategy: point for point in points}
    blended = by_name["blended kernels"]
    for name, point in by_name.items():
        assert blended.blended_value >= point.blended_value - 1e-6, name
    record_points(
        benchmark,
        points,
        "strategy",
        "slow_feature_coverage",
        "fast_feature_coverage",
    )
