"""Ablation — scheduling for one kernel vs the per-feature blend.

One application senses a slow feature (σ = 60 s) and a fast one (σ = 5 s)
in the same bursts. Scheduling against either single kernel under-serves
the other feature; the blended multi-kernel objective balances both and
achieves the best combined value.
"""

from repro.experiments.ablations import run_multikernel_ablation


def test_ablation_multikernel(benchmark):
    points = benchmark.pedantic(
        lambda: run_multikernel_ablation(runs=3, seed=0), rounds=1, iterations=1
    )
    print()
    print(f"{'strategy':<20}  {'slow cov':>8}  {'fast cov':>8}  {'blend value':>11}")
    by_name = {}
    for point in points:
        by_name[point.strategy] = point
        print(
            f"{point.strategy:<20}  {point.slow_feature_coverage:>8.4f}  "
            f"{point.fast_feature_coverage:>8.4f}  {point.blended_value:>11.1f}"
        )
    blended = by_name["blended kernels"]
    for name, point in by_name.items():
        assert blended.blended_value >= point.blended_value - 1e-6, name
    benchmark.extra_info["points"] = [
        (p.strategy, p.slow_feature_coverage, p.fast_feature_coverage)
        for p in points
    ]
