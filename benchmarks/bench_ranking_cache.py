"""Ranking-cache gate: warm ``rank()`` must crush the cold path.

The workload is the Table II reproduction — the three Syracuse coffee
shops' sensed features (Fig. 10) ranked for David and Emma (Fig. 11).
The cold path bumps the category's data version before every request,
so the cache can never hit and every call runs the full Algorithm 2
pipeline (table scan, H matrix, Γ, min-cost-flow aggregation). The warm
path repeats the identical requests over unchanged data, which the
versioned cache serves as a dictionary lookup. The gate asserts the
warm path is at least 10× faster — if the cache key ever stops
matching (fingerprint drift, version churn), this collapses to ~1× and
fails loudly.
"""

import time

from repro.db import Database
from repro.experiments.fig10_shop_features import run_fig10
from repro.obs import MetricsRegistry
from repro.server.ranker_service import (
    PersonalizableRanker,
    RankingCache,
    bump_data_version,
)
from repro.server.schemas import create_all_tables
from repro.sim.scenarios import customer_profiles

CATEGORY = "coffee_shop"
ROUNDS = 30


def seed_database() -> Database:
    """Feature data for the Table II shops, straight from the Fig. 10 run."""
    database = Database(name="bench", metrics=MetricsRegistry())
    create_all_tables(database)
    table = database.table("feature_data")
    for place, features in run_fig10(seed=2014).features.items():
        for feature, value in features.items():
            table.insert(
                {
                    "place_id": place,
                    "category": CATEGORY,
                    "feature": feature,
                    "value": value,
                    "computed_at": 0.0,
                }
            )
    bump_data_version(database, CATEGORY)
    return database


def test_warm_rank_at_least_10x_faster_than_cold(benchmark):
    database = seed_database()
    profiles = customer_profiles()
    registry = MetricsRegistry()
    ranker = PersonalizableRanker(
        database, cache=RankingCache(metrics=registry), metrics=registry
    )

    def race():
        cold_times = []
        for _ in range(ROUNDS):
            bump_data_version(database, CATEGORY)  # cache can never hit
            started = time.perf_counter()
            ranker.rank_many(CATEGORY, profiles)
            cold_times.append(time.perf_counter() - started)
        ranker.rank_many(CATEGORY, profiles)  # fill the cache once
        warm_times = []
        for _ in range(ROUNDS):
            started = time.perf_counter()
            ranker.rank_many(CATEGORY, profiles)
            warm_times.append(time.perf_counter() - started)
        return min(cold_times), min(warm_times)

    cold, warm = benchmark.pedantic(race, rounds=1, iterations=1)
    speedup = cold / warm
    print()
    print(f"cold (best of {ROUNDS}): {cold * 1e6:>9.1f} µs")
    print(f"warm (best of {ROUNDS}): {warm * 1e6:>9.1f} µs")
    print(f"speedup: {speedup:.1f}x")
    assert ranker.cache.hits >= 2 * ROUNDS  # the warm rounds actually hit
    assert speedup >= 10.0
    benchmark.extra_info["cold_seconds"] = cold
    benchmark.extra_info["warm_seconds"] = warm
    benchmark.extra_info["speedup"] = speedup
