"""Ablation — equation (2) vs equation (4): which objective is "the"
scheduling problem?

The paper states the objective as a per-user coverage sum (eq. 2) but
solves and reports the pooled-set reformulation (eq. 4). This bench
schedules the same instances both ways and cross-evaluates, showing:

* the pooled greedy sacrifices little on the per-user metric,
* the per-user greedy (users ignore each other) leaves a large share of
  pooled coverage on the table — overlapping users pile onto the same
  well-spread instants,
* only the pooled objective reproduces the paper's reported numbers
  (average coverage ≤ 1 that "approaches 100%" with many users).
"""

import numpy as np

from benchmarks._ablation_common import print_table, record, run_once
from repro.core.scheduling import (
    GaussianKernel,
    GreedyScheduler,
    PerUserGreedyScheduler,
    SchedulingPeriod,
    SchedulingProblem,
    average_coverage,
    per_user_sum_value,
)
from repro.sim.arrivals import uniform_arrivals


def run_objective_comparison(*, users=40, budget=17, runs=3, seed=0):
    """Cross-evaluate both schedulers under both objectives."""
    period = SchedulingPeriod(0.0, 10_800.0, 1080)
    kernel = GaussianKernel(sigma=10.0)
    rows = []
    for run in range(runs):
        rng = np.random.default_rng(seed + run)
        problem = SchedulingProblem(
            period, uniform_arrivals(users, 10_800.0, budget, rng), kernel
        )
        pooled_schedule = GreedyScheduler().solve(problem)
        peruser_schedule = PerUserGreedyScheduler().solve(problem)
        rows.append(
            {
                "pooled_by_pooled": pooled_schedule.average_coverage,
                "pooled_by_perusr": per_user_sum_value(pooled_schedule),
                "perusr_by_pooled": average_coverage(peruser_schedule),
                "perusr_by_perusr": peruser_schedule.objective_value,
            }
        )
    return {key: float(np.mean([row[key] for row in rows])) for key in rows[0]}


def test_ablation_objective_formulations(benchmark):
    means = run_once(benchmark, run_objective_comparison)
    print_table(
        [
            ("schedule / metric", "<22"),
            ("pooled avg cov", ">15.4f"),
            ("per-user sum", ">14.1f"),
        ],
        [
            (
                "pooled greedy (eq.4)",
                means["pooled_by_pooled"],
                means["pooled_by_perusr"],
            ),
            (
                "per-user greedy (eq.2)",
                means["perusr_by_pooled"],
                means["perusr_by_perusr"],
            ),
        ],
    )
    # Each greedy wins on its own metric…
    assert means["pooled_by_pooled"] >= means["perusr_by_pooled"]
    assert means["perusr_by_perusr"] >= means["pooled_by_perusr"] - 1e-6
    # …and the per-user scheduler pays a real pooled-coverage price.
    assert means["perusr_by_pooled"] < means["pooled_by_pooled"] * 0.95
    record(benchmark, means=means)
