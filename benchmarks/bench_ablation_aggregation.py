"""Ablation — aggregation quality: footrule flow vs Borda vs exact Kemeny.

On random weighted instances small enough for exhaustive search, compare
the weighted-Kemeny objective achieved by the paper's min-cost-flow
footrule aggregation, the local-search-refined variant, and Borda count,
against the true optimum (ratio 1.0 = optimal; theory guarantees the
footrule solution ≤ 2.0).
"""

from benchmarks._ablation_common import record, run_once
from repro.experiments.ablations import run_aggregation_ablation


def test_ablation_aggregation_quality(benchmark):
    stats = run_once(
        benchmark,
        lambda: run_aggregation_ablation(instances=40, num_items=6, seed=0),
    )
    print()
    print(f"instances:                    {stats.instances}")
    print(f"footrule-flow / optimum:      {stats.footrule_ratio:.4f}")
    print(f"  + local search / optimum:   {stats.refined_ratio:.4f}")
    print(f"borda / optimum:              {stats.borda_ratio:.4f}")
    print(f"footrule exactly optimal on:  {stats.footrule_optimal_fraction:.0%}")
    assert stats.footrule_ratio <= 2.0
    assert stats.refined_ratio <= stats.footrule_ratio + 1e-9
    record(
        benchmark,
        footrule_ratio=stats.footrule_ratio,
        refined_ratio=stats.refined_ratio,
        borda_ratio=stats.borda_ratio,
    )
