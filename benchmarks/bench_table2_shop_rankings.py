"""Table II — rankings of coffee shops computed by SOR.

Runs the coffee-shop field tests and the ranking pipeline for David and
Emma; asserts the paper's exact ranking rows.
"""

from repro.experiments.table2_shop_rankings import (
    TABLE2_EXPECTED,
    format_table2,
    run_table2,
)


def test_table2_shop_rankings(benchmark):
    result = benchmark.pedantic(
        lambda: run_table2(seed=2014), rounds=1, iterations=1
    )
    print()
    print(format_table2(result))
    assert result.matches_expected()
    benchmark.extra_info["rankings"] = {
        user: places for user, places in result.as_rows()
    }
    benchmark.extra_info["paper_expected"] = TABLE2_EXPECTED
