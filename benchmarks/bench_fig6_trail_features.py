"""Fig. 6 — feature data for hiking trails.

Regenerates the five feature series (temperature, humidity, roughness,
curvature, altitude change) over the three simulated Syracuse trails and
records them as extra info, while timing the full field-test simulation.
"""

from repro.experiments.fig6_trail_features import (
    EXPECTED_ORDERINGS,
    format_fig6,
    run_fig6,
)


def test_fig6_trail_features(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig6(seed=2014), rounds=1, iterations=1
    )
    print()
    print(format_fig6(result))
    assert result.matches_expected()
    benchmark.extra_info["features"] = result.features
    benchmark.extra_info["expected_orderings"] = EXPECTED_ORDERINGS
    benchmark.extra_info["matches_paper"] = result.matches_expected()
