"""Fig. 10 — feature data for coffee shops.

Regenerates the four feature series (temperature, brightness, background
noise, Wi-Fi) over the three simulated Syracuse coffee shops.
"""

from repro.experiments.fig10_shop_features import (
    EXPECTED_ORDERINGS,
    format_fig10,
    run_fig10,
)


def test_fig10_shop_features(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig10(seed=2014), rounds=1, iterations=1
    )
    print()
    print(format_fig10(result))
    assert result.matches_expected()
    benchmark.extra_info["features"] = result.features
    benchmark.extra_info["expected_orderings"] = EXPECTED_ORDERINGS
    benchmark.extra_info["matches_paper"] = result.matches_expected()
