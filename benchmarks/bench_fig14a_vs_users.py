"""Fig. 14(a) — average coverage probability vs number of mobile users.

The paper's setup: 3-hour period, 1080 instants, σ = 10 s, budget 17,
users swept 10…50 (step 5), 10 runs per point, baseline = sense every
10 s from arrival. Expected shape: greedy dominates everywhere, reaches
≈0.88 at 40 users where the baseline sits at ≈0.50, and approaches 1.0
toward 50–55 users.
"""

import pytest

from repro.experiments.fig14_scheduling import format_sweep, run_fig14a


@pytest.mark.parametrize("backend", ["numpy", "reference"])
def test_fig14a_coverage_vs_users(benchmark, request, backend):
    runs = request.config.getoption("--paper-runs")
    result = benchmark.pedantic(
        lambda: run_fig14a(runs=runs, seed=0, backend=backend),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        format_sweep(
            result,
            f"Fig. 14(a) — coverage vs users ({runs} runs/point, {backend})",
        )
    )
    for point in result.points:
        assert point.greedy_mean > point.baseline_mean
    benchmark.extra_info["greedy_series"] = result.greedy_series()
    benchmark.extra_info["baseline_series"] = result.baseline_series()
    benchmark.extra_info["mean_improvement"] = result.mean_improvement
    benchmark.extra_info["paper_reference"] = (
        "greedy ~0.8+ at 40 users; baseline ~0.5 at 40 users; ~100% by 55 users"
    )
