"""Micro-benchmarks of the individual substrates.

Not tied to a paper figure; these catch performance regressions in the
pieces the experiment benches depend on.
"""

import numpy as np

from repro.barcode import PlacePayload, ReedSolomonCodec, decode_place_barcode, encode_place_barcode
from repro.core.ranking import Ranking, aggregate_footrule
from repro.core.scheduling import (
    GaussianKernel,
    GreedyScheduler,
    SchedulingPeriod,
    SchedulingProblem,
)
from repro.net.codec import decode_body, encode_body
from repro.script import Sandbox
from repro.sim.arrivals import uniform_arrivals


def test_codec_roundtrip_speed(benchmark):
    body = {
        "task_id": "task-123",
        "bursts": [
            {"sensor": "temperature", "t": float(i), "dt": 5.0,
             "values": [70.0 + j * 0.1 for j in range(5)]}
            for i in range(50)
        ],
    }
    result = benchmark(lambda: decode_body(encode_body(body)))
    assert result == body


def test_reed_solomon_decode_with_errors(benchmark):
    codec = ReedSolomonCodec(10)
    data = bytes(range(100))
    codeword = bytearray(codec.encode(data))
    for position in (3, 40, 77, 90, 104):
        codeword[position] ^= 0x5A
    damaged = bytes(codeword)
    assert benchmark(lambda: codec.decode(damaged)) == data


def test_barcode_scan_speed(benchmark):
    payload = PlacePayload(
        "starbucks", "Starbucks", "coffee_shop", 43.04, -76.13,
        "app-starbucks", "sor-server",
    )
    matrix = encode_place_barcode(payload)
    assert benchmark(lambda: decode_place_barcode(matrix)) == payload


def test_greedy_scheduler_paper_scale(benchmark):
    rng = np.random.default_rng(0)
    period = SchedulingPeriod(0.0, 10_800.0, 1080)
    users = uniform_arrivals(40, 10_800.0, 17, rng)
    problem = SchedulingProblem(period, users, GaussianKernel(10.0))
    schedule = benchmark(lambda: GreedyScheduler().solve(problem))
    assert schedule.average_coverage > 0.7


def test_greedy_scheduler_large_scale(benchmark):
    """2× the paper's resolution and 100 users — lazy greedy must stay
    comfortably sub-second."""
    rng = np.random.default_rng(1)
    period = SchedulingPeriod(0.0, 21_600.0, 2160)
    users = uniform_arrivals(100, 21_600.0, 17, rng)
    problem = SchedulingProblem(period, users, GaussianKernel(10.0))
    schedule = benchmark(lambda: GreedyScheduler().solve(problem))
    assert schedule.average_coverage > 0.7


def test_rank_aggregation_speed(benchmark):
    rng = np.random.default_rng(0)
    items = [f"place-{i}" for i in range(20)]
    collection = [Ranking(rng.permutation(items).tolist()) for _ in range(6)]
    weights = [3, 5, 1, 2, 4, 2]
    ranking = benchmark(lambda: aggregate_footrule(collection, weights))
    assert len(ranking) == 20


def test_lualite_script_execution(benchmark):
    sandbox = Sandbox()
    sandbox.register_function("get_light_readings", lambda n, ms: [500.0] * int(n))
    source = """
    local readings = get_light_readings(10, 100)
    local total = 0
    for i = 1, #readings do total = total + readings[i] end
    return total / #readings
    """
    assert benchmark(lambda: sandbox.run(source)) == 500.0
