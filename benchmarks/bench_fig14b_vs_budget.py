"""Fig. 14(b) — average coverage probability vs sensing budget.

The paper's setup: 40 users, budget swept 15…25 (step 1), 10 runs per
point. Expected shape: both curves rise with budget; greedy dominates by
a wide margin throughout.
"""

import pytest

from repro.experiments.fig14_scheduling import format_sweep, run_fig14b


@pytest.mark.parametrize("backend", ["numpy", "reference"])
def test_fig14b_coverage_vs_budget(benchmark, request, backend):
    runs = request.config.getoption("--paper-runs")
    result = benchmark.pedantic(
        lambda: run_fig14b(runs=runs, seed=0, backend=backend),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        format_sweep(
            result,
            f"Fig. 14(b) — coverage vs budget ({runs} runs/point, {backend})",
        )
    )
    for point in result.points:
        assert point.greedy_mean > point.baseline_mean
    greedy = [point.greedy_mean for point in result.points]
    assert greedy == sorted(greedy)
    benchmark.extra_info["greedy_series"] = result.greedy_series()
    benchmark.extra_info["baseline_series"] = result.baseline_series()
    benchmark.extra_info["mean_improvement"] = result.mean_improvement
