"""Table I — rankings of hiking trails computed by SOR.

Runs the trail field tests and the full personalizable ranking pipeline
for Alice, Bob and Chris; asserts the paper's exact ranking rows.
"""

from repro.experiments.table1_trail_rankings import (
    TABLE1_EXPECTED,
    format_table1,
    run_table1,
)


def test_table1_trail_rankings(benchmark):
    result = benchmark.pedantic(
        lambda: run_table1(seed=2014), rounds=1, iterations=1
    )
    print()
    print(format_table1(result))
    assert result.matches_expected()
    benchmark.extra_info["rankings"] = {
        user: places for user, places in result.as_rows()
    }
    benchmark.extra_info["paper_expected"] = TABLE1_EXPECTED
