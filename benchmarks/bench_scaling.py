"""The CI scaling gate: city-scale horizons stay fast and linear.

Runs the lazy-vs-stochastic scaling curve
(:func:`repro.experiments.ablations.run_scaling_ablation`) up to 10⁵
instants with a 10³-pick budget and gates four properties:

1. **speed** — at the 10⁵-instant point the stochastic greedy must be
   at least ``--min-speedup`` faster than the exact accelerated sweep
   (the sampled pick is O((N/B)·log(1/ε)) per pick, horizon-free);
2. **value** — every point's stochastic objective must stay within
   ``--min-value-ratio`` of the exact greedy value (the
   ``(1 − 1/e − ε)`` bound holds in expectation; in practice the ratio
   sits at ~0.99);
3. **memory** — the tracemalloc peak of a banded stochastic solve must
   stay under ``--max-bytes-per-instant`` × N at every point (the
   banded representation is O(N·window); the dense |T|×|T| matrices
   would need 80 GB at N = 10⁵) and under ``--max-peak-mb`` overall;
4. **exactness** — at the smallest point the banded and dense
   representations must produce bitwise-identical exact-greedy
   schedules and objective values (the band is a different *layout* of
   the same floats, not an approximation).

The whole curve must finish inside ``--max-seconds`` wall seconds.
Writes ``BENCH_scaling.json`` in the canonical gate schema that
``compare_bench.py`` diffs against the committed baseline in
``benchmarks/baselines/``.

Usage::

    python benchmarks/bench_scaling.py               # CI defaults
    python benchmarks/bench_scaling.py --rounds 1    # quicker local run
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=2014)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--users", type=int, default=50)
    parser.add_argument("--budget", type=int, default=20)
    parser.add_argument(
        "--instants",
        type=int,
        nargs="+",
        default=[2_000, 20_000, 100_000],
        help="horizon lengths; the last one is the gated point",
    )
    # The measured speedup at 10^5 instants is ~5.3x; the hard floor
    # sits below it so shared-runner jitter on the lazy baseline cannot
    # flake the job, while the committed BENCH_scaling.json baseline
    # pins the 5x expectation with its own tolerance.
    parser.add_argument("--min-speedup", type=float, default=4.0)
    parser.add_argument("--min-value-ratio", type=float, default=0.9)
    parser.add_argument("--max-bytes-per-instant", type=float, default=1000.0)
    parser.add_argument("--max-peak-mb", type=float, default=2048.0)
    parser.add_argument("--max-seconds", type=float, default=60.0)
    parser.add_argument("--out", type=Path, default=Path("BENCH_scaling.json"))
    args = parser.parse_args(argv)

    import numpy as np

    from repro.core.scheduling import (
        GaussianKernel,
        GreedyScheduler,
        SchedulingPeriod,
        SchedulingProblem,
    )
    from repro.experiments.ablations import PERIOD_S, run_scaling_ablation
    from repro.sim.arrivals import uniform_arrivals

    failures: list[str] = []
    started = time.perf_counter()

    points = run_scaling_ablation(
        instant_counts=tuple(args.instants),
        users=args.users,
        budget=args.budget,
        seed=args.seed,
        rounds=args.rounds,
    )
    print(
        f"{'N':>8} {'sigma_s':>8} {'lazy':>9} {'stochastic':>11} "
        f"{'speedup':>8} {'value':>7} {'peak':>9}"
    )
    for point in points:
        print(
            f"{point.num_instants:>8} {point.sigma_s:>8.2f} "
            f"{point.lazy_seconds * 1000:>7.1f}ms "
            f"{point.stochastic_seconds * 1000:>9.1f}ms "
            f"{point.speedup:>7.2f}x {point.value_ratio:>7.4f} "
            f"{point.peak_bytes / 1e6:>7.1f}MB"
        )
        if point.value_ratio < args.min_value_ratio:
            failures.append(
                f"N={point.num_instants}: stochastic value ratio "
                f"{point.value_ratio:.4f} below {args.min_value_ratio}"
            )
        if point.peak_bytes_per_instant > args.max_bytes_per_instant:
            failures.append(
                f"N={point.num_instants}: tracemalloc peak "
                f"{point.peak_bytes_per_instant:.0f} B/instant exceeds "
                f"{args.max_bytes_per_instant:.0f} (banded memory must "
                "stay O(N*window))"
            )
        if point.peak_bytes > args.max_peak_mb * 1e6:
            failures.append(
                f"N={point.num_instants}: tracemalloc peak "
                f"{point.peak_bytes / 1e6:.0f} MB exceeds "
                f"{args.max_peak_mb:.0f} MB"
            )
    gated = points[-1]
    if gated.speedup < args.min_speedup:
        failures.append(
            f"N={gated.num_instants}: stochastic speedup {gated.speedup:.2f}x "
            f"below required {args.min_speedup:.1f}x"
        )

    # Bitwise banded-vs-dense replay at the smallest (dense-feasible)
    # horizon: same assignments, exactly equal objective value.
    replay_instants = min(args.instants)
    rng = np.random.default_rng(args.seed)
    period = SchedulingPeriod(0.0, PERIOD_S, replay_instants)
    problem = SchedulingProblem(
        period,
        uniform_arrivals(args.users, PERIOD_S, args.budget, rng),
        GaussianKernel(sigma=100_000.0 / replay_instants),
    )
    banded = GreedyScheduler(mode="lazy", representation="banded").solve(problem)
    dense = GreedyScheduler(mode="lazy", representation="dense").solve(problem)
    bitwise = (
        banded.assignments == dense.assignments
        and banded.objective_value == dense.objective_value
    )
    print(
        f"banded-vs-dense bitwise replay at N={replay_instants}: "
        f"{'identical' if bitwise else 'DIVERGED'}"
    )
    if not bitwise:
        failures.append(
            f"banded and dense representations diverged at "
            f"N={replay_instants}: value {banded.objective_value!r} vs "
            f"{dense.objective_value!r}"
        )

    elapsed = time.perf_counter() - started
    print(f"curve wall time {elapsed:.1f}s (budget {args.max_seconds:.0f}s)")
    if elapsed > args.max_seconds:
        failures.append(
            f"scaling curve took {elapsed:.1f}s, over the "
            f"{args.max_seconds:.0f}s budget"
        )

    payload = {
        "metrics": {
            "scaling_stochastic_speedup": {
                "value": gated.speedup,
                "direction": "higher",
                "tolerance_pct": 25,
            },
            "scaling_value_ratio": {
                "value": gated.value_ratio,
                "direction": "higher",
                "tolerance_pct": 5,
            },
            "scaling_peak_bytes_per_instant": {
                "value": max(p.peak_bytes_per_instant for p in points),
                "direction": "lower",
                "tolerance_pct": 100,
            },
            "scaling_stochastic_seconds": {
                "value": gated.stochastic_seconds,
                "direction": "lower",
                "tolerance_pct": 200,
            },
        },
        "info": {
            "seed": args.seed,
            "rounds": args.rounds,
            "users": args.users,
            "budget": args.budget,
            "total_budget": args.users * args.budget,
            "instants": list(args.instants),
            "curve": [
                {
                    "num_instants": p.num_instants,
                    "sigma_s": p.sigma_s,
                    "lazy_seconds": p.lazy_seconds,
                    "stochastic_seconds": p.stochastic_seconds,
                    "speedup": p.speedup,
                    "value_ratio": p.value_ratio,
                    "peak_bytes": p.peak_bytes,
                }
                for p in points
            ],
            "banded_dense_bitwise": bitwise,
            "wall_seconds": elapsed,
        },
    }
    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {args.out}")

    if failures:
        print(f"\nscaling gate FAILED ({len(failures)}):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("scaling gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
