"""Ablation — spam resistance of the rank aggregation.

The paper chose the Kemeny distance because it "has been shown to have
good spam resistance" (its ref [7], Dwork et al.). This bench drops one
adversarial (reversed) ranking of growing weight into a pool of honest
noisy rankings (total honest weight 5) and measures how far each
aggregator drifts from the truth.

Expected shape: while the spammer is a *minority* (weight < half the
honest mass… up to ~3 here), the median-like footrule aggregation drifts
less than the mean-like Borda count. Once the spammer matches the
honest mass (weight 5), the median commits to one side and degrades
catastrophically while Borda merely averages — the classic breakdown
point of robust estimators.
"""

from repro.experiments.ablations import run_spam_resistance_ablation


def test_ablation_spam_resistance(benchmark):
    points = benchmark.pedantic(
        lambda: run_spam_resistance_ablation(instances=20, seed=0),
        rounds=1,
        iterations=1,
    )
    print()
    print(f"{'spam weight':>11}  {'footrule drift':>14}  {'borda drift':>11}")
    for point in points:
        print(
            f"{point.spam_weight:>11}  {point.footrule_drift:>14.2f}  "
            f"{point.borda_drift:>11.2f}"
        )
    # In the minority-spam regime the Kemeny-family aggregation resists
    # better than Borda (the paper's stated reason for choosing it).
    minority = next(point for point in points if point.spam_weight == 3)
    assert minority.footrule_drift <= minority.borda_drift + 1e-9
    benchmark.extra_info["points"] = [
        (point.spam_weight, point.footrule_drift, point.borda_drift)
        for point in points
    ]
