"""Ablation — spam resistance of the rank aggregation.

The paper chose the Kemeny distance because it "has been shown to have
good spam resistance" (its ref [7], Dwork et al.). This bench drops one
adversarial (reversed) ranking of growing weight into a pool of honest
noisy rankings (total honest weight 5) and measures how far each
aggregator drifts from the truth.

Expected shape: while the spammer is a *minority* (weight < half the
honest mass… up to ~3 here), the median-like footrule aggregation drifts
less than the mean-like Borda count. Once the spammer matches the
honest mass (weight 5), the median commits to one side and degrades
catastrophically while Borda merely averages — the classic breakdown
point of robust estimators.
"""

from benchmarks._ablation_common import print_table, record_points, run_once
from repro.experiments.ablations import run_spam_resistance_ablation


def test_ablation_spam_resistance(benchmark):
    points = run_once(
        benchmark, lambda: run_spam_resistance_ablation(instances=20, seed=0)
    )
    print_table(
        [
            ("spam weight", ">11"),
            ("footrule drift", ">14.2f"),
            ("borda drift", ">11.2f"),
        ],
        [
            (p.spam_weight, p.footrule_drift, p.borda_drift)
            for p in points
        ],
    )
    # In the minority-spam regime the Kemeny-family aggregation resists
    # better than Borda (the paper's stated reason for choosing it).
    minority = next(point for point in points if point.spam_weight == 3)
    assert minority.footrule_drift <= minority.borda_drift + 1e-9
    record_points(
        benchmark, points, "spam_weight", "footrule_drift", "borda_drift"
    )
