"""Benchmark-suite configuration.

Every test collected from this directory is auto-marked ``bench`` so the
tier-1 run (``pytest -x -q``, whose addopts deselect ``-m 'not bench'``)
never executes benchmarks even when both directories are passed. Run
them explicitly with ``pytest benchmarks -m bench``.

``--bench-json PATH`` writes a machine-readable summary of every
benchmark's wall-times after the session, independent of
pytest-benchmark's own ``--benchmark-json`` (ours is a stable, minimal
schema the overhead-comparison tooling consumes).
"""

from __future__ import annotations

import json

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--paper-runs",
        action="store",
        type=int,
        default=10,
        help="Runs per sweep point for the Fig. 14 reproduction "
        "(the paper uses 10; lower is faster).",
    )
    parser.addoption(
        "--bench-json",
        action="store",
        default=None,
        metavar="PATH",
        help="Write per-benchmark wall-time statistics (seconds) to PATH "
        "as JSON after the run.",
    )


def pytest_collection_modifyitems(config, items):
    """Mark every benchmark item ``bench`` so default runs skip them."""
    bench_marker = pytest.mark.bench
    for item in items:
        if "benchmarks" in str(item.fspath):
            item.add_marker(bench_marker)


def pytest_sessionfinish(session, exitstatus):
    """Dump benchmark timing stats to the ``--bench-json`` path, if set."""
    path = session.config.getoption("--bench-json")
    if not path:
        return
    bench_session = getattr(session.config, "_benchmarksession", None)
    benchmarks = getattr(bench_session, "benchmarks", None) or []
    results = {}
    for bench in benchmarks:
        stats = getattr(bench, "stats", None)
        if stats is None or not getattr(stats, "rounds", 0):
            continue
        results[bench.fullname] = {
            "mean": stats.mean,
            "min": stats.min,
            "max": stats.max,
            "stddev": stats.stddev,
            "median": stats.median,
            "rounds": stats.rounds,
            "iterations": getattr(bench, "iterations", None),
        }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
