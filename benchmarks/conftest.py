"""Benchmark-suite configuration."""

from __future__ import annotations


def pytest_addoption(parser):
    parser.addoption(
        "--paper-runs",
        action="store",
        type=int,
        default=10,
        help="Runs per sweep point for the Fig. 14 reproduction "
        "(the paper uses 10; lower is faster).",
    )
