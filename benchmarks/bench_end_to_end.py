"""End-to-end system benchmark.

Times a full coffee-shop deployment — barcode scans, online scheduling,
LuaLite script execution on every phone, binary uploads, server-side
decoding, feature computation and personalizable ranking — and records
protocol-level statistics.
"""

from repro.experiments.end_to_end import run_end_to_end


def test_end_to_end_pipeline(benchmark):
    result = benchmark.pedantic(
        lambda: run_end_to_end(seed=42, phones_per_shop=12, budget=30),
        rounds=1,
        iterations=1,
    )
    print()
    print(f"messages sent:     {result.messages_sent}")
    print(f"bytes sent:        {result.bytes_sent}")
    print(f"bytes received:    {result.bytes_received}")
    print(f"events processed:  {result.events_processed}")
    print(f"blobs decoded:     {result.blobs_decoded}")
    print(f"phone energy (mJ): {result.total_phone_energy_mj:.0f}")
    for user, ranking in result.rankings.items():
        print(f"{user}: {ranking}")
    assert result.rankings["David"] == ["Starbucks", "B&N Cafe", "Tim Hortons"]
    assert result.rankings["Emma"] == ["B&N Cafe", "Tim Hortons", "Starbucks"]
    benchmark.extra_info["messages_sent"] = result.messages_sent
    benchmark.extra_info["blobs_decoded"] = result.blobs_decoded
