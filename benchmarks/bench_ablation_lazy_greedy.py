"""Ablation — lazy-heap greedy vs the paper's naive O(N²) loop.

Both produce byte-identical schedules; this bench shows the runtime gap
growing with the number of instants.
"""

from repro.experiments.ablations import run_lazy_ablation


def test_ablation_lazy_vs_naive(benchmark):
    points = benchmark.pedantic(
        lambda: run_lazy_ablation(), rounds=1, iterations=1
    )
    print()
    print(f"{'N instants':>10}  {'lazy (s)':>10}  {'naive (s)':>10}  {'speedup':>8}")
    for point in points:
        print(
            f"{point.num_instants:>10}  {point.lazy_seconds:>10.4f}  "
            f"{point.naive_seconds:>10.4f}  {point.speedup:>7.1f}x"
        )
    assert all(point.identical_schedules for point in points)
    assert points[-1].speedup > 2.0
    benchmark.extra_info["points"] = [
        (point.num_instants, point.lazy_seconds, point.naive_seconds)
        for point in points
    ]
