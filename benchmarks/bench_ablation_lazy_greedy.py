"""Ablation — lazy-heap greedy vs the paper's naive O(N²) loop, and the
vectorized scheduling backend vs the scalar reference.

Every variant produces byte-identical schedules; these benches show the
runtime gaps. The lazy ablation runs on the scalar reference backend
(where the lazy heap is the accelerated path); the backend ablation pins
the headline speedup of the numpy core on a 1000-instant horizon — the
paper-literal O(N²) loop is where the vectorization pays off hardest,
the lazy-vs-lazy race is tighter (heap vs maintained dense argmax).
"""

from benchmarks._ablation_common import (
    print_table,
    record,
    record_points,
    run_once,
)
from repro.experiments.ablations import run_backend_ablation, run_lazy_ablation


def test_ablation_lazy_vs_naive(benchmark):
    points = run_once(benchmark, lambda: run_lazy_ablation())
    print_table(
        [
            ("N instants", ">10"),
            ("lazy (s)", ">10.4f"),
            ("naive (s)", ">10.4f"),
            ("speedup", ">8.1f"),
        ],
        [
            (p.num_instants, p.lazy_seconds, p.naive_seconds, p.speedup)
            for p in points
        ],
    )
    assert all(point.identical_schedules for point in points)
    assert points[-1].speedup > 2.0
    record_points(
        benchmark, points, "num_instants", "lazy_seconds", "naive_seconds"
    )


def test_ablation_backend_1000_instants(benchmark):
    """Numpy vs reference on a 1000-instant horizon, both strategies.

    The acceptance bar: the vectorized backend beats the scalar
    reference by ≥10× on the paper-literal greedy at 1000 instants (it
    lands nearer 50–100×), produces the identical schedule in every
    cell, and is never slower than the reference on the accelerated
    (lazy) strategy either.
    """

    def matrix():
        naive = run_backend_ablation(
            instant_counts=(1000,), users=50, budget=20, sigma=100.0, lazy=False
        )
        lazy = run_backend_ablation(
            instant_counts=(1000,), users=50, budget=20, sigma=100.0, lazy=True
        )
        return naive[0], lazy[0]

    naive, lazy = run_once(benchmark, matrix)
    print_table(
        [
            ("strategy", ">10"),
            ("reference (s)", ">14.4f"),
            ("numpy (s)", ">10.4f"),
            ("speedup", ">8.1f"),
        ],
        [
            ("naive", naive.reference_seconds, naive.numpy_seconds, naive.speedup),
            ("lazy", lazy.reference_seconds, lazy.numpy_seconds, lazy.speedup),
        ],
    )
    assert naive.identical_schedules and lazy.identical_schedules
    assert naive.speedup >= 10.0
    assert lazy.speedup >= 1.0
    record(
        benchmark,
        naive_reference_seconds=naive.reference_seconds,
        naive_numpy_seconds=naive.numpy_seconds,
        naive_speedup=naive.speedup,
        lazy_reference_seconds=lazy.reference_seconds,
        lazy_numpy_seconds=lazy.numpy_seconds,
        lazy_speedup=lazy.speedup,
    )
