"""Ablation — lazy-heap greedy vs the paper's naive O(N²) loop, and the
vectorized scheduling backend vs the scalar reference.

Every variant produces byte-identical schedules; these benches show the
runtime gaps. The lazy ablation runs on the scalar reference backend
(where the lazy heap is the accelerated path); the backend ablation pins
the headline speedup of the numpy core on a 1000-instant horizon — the
paper-literal O(N²) loop is where the vectorization pays off hardest,
the lazy-vs-lazy race is tighter (heap vs maintained dense argmax).
"""

from repro.experiments.ablations import run_backend_ablation, run_lazy_ablation


def test_ablation_lazy_vs_naive(benchmark):
    points = benchmark.pedantic(
        lambda: run_lazy_ablation(), rounds=1, iterations=1
    )
    print()
    print(f"{'N instants':>10}  {'lazy (s)':>10}  {'naive (s)':>10}  {'speedup':>8}")
    for point in points:
        print(
            f"{point.num_instants:>10}  {point.lazy_seconds:>10.4f}  "
            f"{point.naive_seconds:>10.4f}  {point.speedup:>7.1f}x"
        )
    assert all(point.identical_schedules for point in points)
    assert points[-1].speedup > 2.0
    benchmark.extra_info["points"] = [
        (point.num_instants, point.lazy_seconds, point.naive_seconds)
        for point in points
    ]


def test_ablation_backend_1000_instants(benchmark):
    """Numpy vs reference on a 1000-instant horizon, both strategies.

    The acceptance bar: the vectorized backend beats the scalar
    reference by ≥10× on the paper-literal greedy at 1000 instants (it
    lands nearer 50–100×), produces the identical schedule in every
    cell, and is never slower than the reference on the accelerated
    (lazy) strategy either.
    """

    def matrix():
        naive = run_backend_ablation(
            instant_counts=(1000,), users=50, budget=20, sigma=100.0, lazy=False
        )
        lazy = run_backend_ablation(
            instant_counts=(1000,), users=50, budget=20, sigma=100.0, lazy=True
        )
        return naive[0], lazy[0]

    naive, lazy = benchmark.pedantic(matrix, rounds=1, iterations=1)
    print()
    print(f"{'strategy':>10}  {'reference (s)':>14}  {'numpy (s)':>10}  {'speedup':>8}")
    for label, point in (("naive", naive), ("lazy", lazy)):
        print(
            f"{label:>10}  {point.reference_seconds:>14.4f}  "
            f"{point.numpy_seconds:>10.4f}  {point.speedup:>7.1f}x"
        )
    assert naive.identical_schedules and lazy.identical_schedules
    assert naive.speedup >= 10.0
    assert lazy.speedup >= 1.0
    benchmark.extra_info["naive_reference_seconds"] = naive.reference_seconds
    benchmark.extra_info["naive_numpy_seconds"] = naive.numpy_seconds
    benchmark.extra_info["naive_speedup"] = naive.speedup
    benchmark.extra_info["lazy_reference_seconds"] = lazy.reference_seconds
    benchmark.extra_info["lazy_numpy_seconds"] = lazy.numpy_seconds
    benchmark.extra_info["lazy_speedup"] = lazy.speedup
