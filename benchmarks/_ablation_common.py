"""Shared runner for the ``bench_ablation_*`` scripts.

Every ablation bench follows the same convention: run its experiment
exactly once inside pytest-benchmark's timer (the experiments do their
own repetition/averaging internally, so extra benchmark rounds would
just multiply runtime), print a small aligned table for the human
reading the CI log, assert the scientific claim, and record the raw
points in ``benchmark.extra_info`` for the JSON artifact. These helpers
keep the seven scripts to just their experiment call, their table
columns, and their assertions.
"""

import re

_SPEC = re.compile(r"^([<>^]?)(\d+)")


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark's timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def print_table(columns, rows):
    """Print an aligned table; ``columns`` are ``(title, format_spec)``.

    The format spec is applied to each cell (e.g. ``">10.4f"``); the
    header reuses its alignment and width. A leading blank line keeps
    the table clear of pytest's dot output.
    """
    print()
    headers = []
    for title, spec in columns:
        match = _SPEC.match(spec)
        align = (match.group(1) or ">") if match else ">"
        width = match.group(2) if match else ""
        headers.append(format(title, f"{align}{width}"))
    print("  ".join(headers))
    for row in rows:
        print(
            "  ".join(
                format(value, spec)
                for value, (_, spec) in zip(row, columns)
            )
        )


def record_points(benchmark, points, *fields):
    """Record one tuple per point (``fields`` are attribute names)."""
    benchmark.extra_info["points"] = [
        tuple(getattr(point, field) for field in fields) for point in points
    ]


def record(benchmark, **values):
    """Record scalar results in ``benchmark.extra_info``."""
    benchmark.extra_info.update(values)
