"""SORSystem: the full deployment in one object.

Assembles the pieces a real SOR rollout needs — sensing server, network,
Google-Cloud-Messaging channel, 2D barcodes at each place, participating
phones with their sensor providers — on a single discrete-event
simulator, and runs the whole protocol: scan → verify → schedule →
sense (scripts!) → upload → decode → features → rank.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.barcode import BitMatrix, PlacePayload, encode_place_barcode
from repro.common.errors import ConfigurationError
from repro.common.geo import LatLon
from repro.common.rng import RngRegistry
from repro.core.features import FeaturePipeline
from repro.core.ranking import PreferenceProfile
from repro.core.scheduling import DEFAULT_BACKEND
from repro.db import DurabilityConfig, RecoveryReport
from repro.net import CloudMessenger, NetworkConditions
from repro.net.resilience import BreakerPolicy, ResilientClient, RetryPolicy
from repro.net.transport import Network
from repro.phone import MobilePhone
from repro.phone.task import TaskInstance
from repro.server.app_manager import Application
from repro.server.concurrency import ConcurrencyConfig
from repro.server.ranker_service import RankingReport
from repro.server.server import SensingServer
from repro.sim.engine import Simulator
from repro.sim.fieldtest import BurstSettings, build_providers
from repro.sim.mobility import TrailWalker
from repro.sim.places import PlaceProfile
from repro.sim.scenarios import FIELD_TEST_END_S, FIELD_TEST_START_S


def generate_sensing_script(
    sensors: set[str],
    *,
    burst: BurstSettings | None = None,
    gps_burst: BurstSettings | None = None,
    accel_burst: BurstSettings | None = None,
) -> str:
    """Generate the LuaLite data-acquisition script for an application.

    The burst shape (how many readings, how far apart) is carried in the
    script itself, as the paper prescribes ("The number of readings to
    be taken during this period can be specified in the Lua scripts").
    """
    burst = burst or BurstSettings()
    gps_burst = gps_burst or BurstSettings(13, 3.0)
    accel_burst = accel_burst or BurstSettings(60, 0.025)
    lines = ["-- SOR data acquisition procedure", "local data = {}"]
    for sensor in sorted(sensors):
        if sensor == "gps":
            lines.append(f"data.gps = get_location({gps_burst.count}, {gps_burst.interval_s})")
        elif sensor == "accelerometer":
            lines.append(
                "data.accelerometer = get_accelerometer_readings("
                f"{accel_burst.count}, {accel_burst.interval_s})"
            )
        else:
            lines.append(
                f"data.{sensor} = get_{sensor}_readings("
                f"{burst.count}, {burst.interval_s})"
            )
    lines.append("return data")
    return "\n".join(lines)


@dataclass
class DeployedPlace:
    """A place with its application and printed barcode."""

    place: PlaceProfile
    application: Application
    barcode: BitMatrix


@dataclass
class DeployedPhone:
    """A phone, where it is, and its participation plan."""

    phone: MobilePhone
    place_id: str
    budget: int
    arrive_time: float
    depart_time: float
    walker: TrailWalker | None = None
    task: TaskInstance | None = None


class SORSystem:
    """A full simulated SOR deployment."""

    def __init__(
        self,
        *,
        start_time: float = FIELD_TEST_START_S,
        end_time: float = FIELD_TEST_END_S,
        seed: int = 0,
        network_conditions: NetworkConditions | None = None,
        server_host: str = "sor-server",
        num_servers: int = 1,
        resilient: bool = True,
        retry_policy: RetryPolicy | None = None,
        breaker_policy: BreakerPolicy | None = None,
        durability: DurabilityConfig | None = None,
        concurrency: ConcurrencyConfig | None = None,
        io_delay_s: float = 0.0,
        scheduler_backend: str = DEFAULT_BACKEND,
        scheduler_mode: str = "argmax",
        ranking_cache: bool = True,
    ) -> None:
        if num_servers < 1:
            raise ConfigurationError("need at least one sensing server")
        if durability is not None and num_servers > 1:
            raise ConfigurationError(
                "durability is only supported for single-server deployments "
                "(multiple servers share one database instance)"
            )
        self.simulator = Simulator(start_time=start_time)
        self.start_time = start_time
        self.end_time = end_time
        self.rngs = RngRegistry(root_seed=seed)
        self.network = Network(
            conditions=network_conditions or NetworkConditions(drop_probability=0.0),
            rng=self.rngs.generator("network"),
            clock=None,  # HTTP latency is negligible at field-test scale
            time_source=self.simulator.clock,  # outage windows follow sim time
        )
        self.gcm = CloudMessenger()
        # With ``resilient`` every phone↔server exchange goes through a
        # ResilientClient. Backoff waits are *not* charged to the shared
        # simulation clock (the event queue owns that timeline), so the
        # retry budget is bounded by max_attempts rather than the deadline.
        self.resilient = resilient
        self.retry_policy = (
            retry_policy
            if retry_policy is not None
            else RetryPolicy(max_attempts=8, base_backoff_s=0.1, max_backoff_s=5.0)
        )
        self.breaker_policy = (
            breaker_policy
            if breaker_policy is not None
            else BreakerPolicy(failure_threshold=32, recovery_timeout_s=60.0)
        )

        def make_client(stream: str) -> ResilientClient | None:
            if not resilient:
                return None
            return ResilientClient(
                self.network,
                policy=self.retry_policy,
                breaker_policy=self.breaker_policy,
                clock=self.simulator.clock,
                rng=self.rngs.generator("resilience", stream),
                sleep=lambda seconds: None,  # virtual waits; see note above
            )

        self._make_client = make_client
        # "One or multiple sensing servers need to be deployed": with
        # several servers they share one database, like app servers over
        # one PostgreSQL instance. Places are assigned round-robin.
        self.durability = durability
        self.concurrency = concurrency
        self.io_delay_s = io_delay_s
        self.scheduler_backend = scheduler_backend
        self.scheduler_mode = scheduler_mode
        self.ranking_cache = ranking_cache
        self.recovery_reports: list[RecoveryReport] = []
        if num_servers == 1:
            self.servers = [
                SensingServer(
                    server_host,
                    self.network,
                    self.simulator.clock,
                    gcm=self.gcm,
                    client=make_client(f"server:{server_host}"),
                    durability=durability,
                    concurrency=concurrency,
                    io_delay_s=io_delay_s,
                    scheduler_backend=scheduler_backend,
                    scheduler_mode=scheduler_mode,
                    ranking_cache=ranking_cache,
                )
            ]
            if self.servers[0].recovery is not None:
                self.recovery_reports.append(self.servers[0].recovery)
        else:
            from repro.db import Database

            shared = Database(name=f"{server_host}-shared")
            self.servers = [
                SensingServer(
                    f"{server_host}-{index + 1}",
                    self.network,
                    self.simulator.clock,
                    gcm=self.gcm,
                    database=shared,
                    client=make_client(f"server:{index + 1}"),
                    concurrency=concurrency,
                    io_delay_s=io_delay_s,
                    scheduler_backend=scheduler_backend,
                    scheduler_mode=scheduler_mode,
                    ranking_cache=ranking_cache,
                )
                for index in range(num_servers)
            ]
        self._next_server = 0
        self._places: dict[str, DeployedPlace] = {}
        self._phones: list[DeployedPhone] = []
        self._user_counter = 0

    @property
    def server(self) -> SensingServer:
        """The first (or only) sensing server."""
        return self.servers[0]

    @property
    def places(self) -> dict[str, DeployedPlace]:
        """Deployed places by place id."""
        return dict(self._places)

    @property
    def phones(self) -> list[DeployedPhone]:
        """Every deployed phone."""
        return list(self._phones)

    # ------------------------------------------------------------------
    # deployment
    # ------------------------------------------------------------------
    def deploy_place(
        self,
        place: PlaceProfile,
        pipeline: FeaturePipeline,
        *,
        coverage_sigma_s: float = 60.0,
        num_instants: int = 1080,
        location_tolerance_m: float | None = None,
    ) -> DeployedPlace:
        """Create the application for ``place`` and print its barcode."""
        if place.place_id in self._places:
            raise ConfigurationError(f"place {place.place_id!r} already deployed")
        tolerance = location_tolerance_m
        if tolerance is None:
            # Trails are extended objects; allow the whole trail length.
            tolerance = (
                place.trail.length_m if place.trail is not None else 500.0
            )
        home_server = self.servers[self._next_server % len(self.servers)]
        self._next_server += 1
        application = Application(
            app_id=f"app-{place.place_id}",
            creator=f"owner-of-{place.place_id}",
            place_id=place.place_id,
            place_name=place.name,
            category=place.category,
            location=place.location,
            script=generate_sensing_script(pipeline.required_sensors),
            pipeline=pipeline,
            period_start=self.start_time,
            period_end=self.end_time,
            num_instants=num_instants,
            coverage_sigma_s=coverage_sigma_s,
            location_tolerance_m=tolerance,
        )
        home_server.create_application(application)
        barcode = encode_place_barcode(
            PlacePayload(
                place_id=place.place_id,
                name=place.name,
                category=place.category,
                latitude=place.location.latitude,
                longitude=place.location.longitude,
                app_id=application.app_id,
                server_host=home_server.host,
            )
        )
        deployed = DeployedPlace(place=place, application=application, barcode=barcode)
        self._places[place.place_id] = deployed
        return deployed

    def deploy_phone(
        self,
        place_id: str,
        *,
        budget: int,
        arrive_time: float | None = None,
        depart_time: float | None = None,
        user_name: str | None = None,
        pace_m_per_s: float = 1.3,
    ) -> DeployedPhone:
        """Register a user, stage their phone at a place, plan the visit."""
        deployed_place = self._places.get(place_id)
        if deployed_place is None:
            raise ConfigurationError(f"no deployed place {place_id!r}")
        place = deployed_place.place
        arrive = arrive_time if arrive_time is not None else self.start_time
        depart = depart_time if depart_time is not None else self.end_time
        if not self.start_time <= arrive < depart:
            raise ConfigurationError("phone visit must lie inside the period")
        self._user_counter += 1
        user_id = f"user-{self._user_counter}"
        token = f"token-{self._user_counter}"
        self.server.register_user(user_id, user_name or user_id.title(), token)
        phone = MobilePhone(
            user_id=user_id,
            token=token,
            network=self.network,
            clock=self.simulator.clock,
            gcm=self.gcm,
            rng=self.rngs.generator("phone", user_id),
            client=self._make_client(f"phone:{user_id}"),
        )
        walker = None
        if place.trail is not None:
            mode = "loop" if _trail_is_loop(place) else "ping_pong"
            walker = TrailWalker(
                place.trail,
                pace_m_per_s=pace_m_per_s,
                start_time=arrive - self._user_counter * 90.0,
                mode=mode,
            )
            phone.set_location_source(
                lambda t, w=walker: LatLon(
                    w.position(t).latitude, w.position(t).longitude
                )
            )
        else:
            phone.set_location_source(lambda t, p=place: p.location)
        pipeline = deployed_place.application.pipeline
        providers = build_providers(
            place,
            pipeline.required_sensors,
            self.simulator.clock,
            self.rngs.generator("sensors", user_id),
            walker=walker,
            phase=float(self._user_counter),
        )
        for provider in providers.values():
            phone.add_provider(provider)
        deployed = DeployedPhone(
            phone=phone,
            place_id=place_id,
            budget=budget,
            arrive_time=arrive,
            depart_time=depart,
            walker=walker,
        )
        self._phones.append(deployed)
        self.simulator.schedule_at(arrive, lambda: self._on_arrival(deployed))
        return deployed

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------
    def _on_arrival(self, deployed: DeployedPhone) -> None:
        barcode = self._places[deployed.place_id].barcode
        task = deployed.phone.scan_barcode(
            barcode, budget=deployed.budget, departure_time=deployed.depart_time
        )
        deployed.task = task
        if task is None:
            return
        for sense_time in task.sensing_times:
            self.simulator.schedule_at(
                max(sense_time, self.simulator.now()),
                deployed.phone.tick,
            )
        # One tick right after the last instant guarantees the upload
        # happens even if every instant fired inside a single event.
        if task.sensing_times:
            self.simulator.schedule_at(
                max(task.sensing_times[-1] + 1.0, self.simulator.now()),
                deployed.phone.tick,
            )
        # When the user leaves before the period ends, their phone
        # reports a location away from the place, and the Participation
        # Manager marks the task finished (paper Section II-B).
        if deployed.depart_time < self.end_time:
            self.simulator.schedule_at(
                deployed.depart_time,
                lambda: self._on_departure(deployed),
            )

    def _on_departure(self, deployed: DeployedPhone) -> None:
        from repro.net import Envelope, MessageType

        place = self._places[deployed.place_id].place
        application = self._places[deployed.place_id].application
        away = LatLon(place.location.latitude + 0.5, place.location.longitude)
        deployed.phone.set_location_source(lambda t, point=away: point)
        deployed.phone.tick()  # flush any remaining upload first
        home_host = next(
            (
                server.host
                for server in self.servers
                if server.apps.get(application.app_id) is not None
            ),
            None,
        )
        if home_host is None:
            return
        deployed.phone.message_handler.send(
            home_host,
            Envelope(
                message_type=MessageType.LOCATION_REPORT,
                sender=deployed.phone.host,
                recipient=home_host,
                payload={
                    "token": deployed.phone.token,
                    "latitude": away.latitude,
                    "longitude": away.longitude,
                },
            ),
        )

    # ------------------------------------------------------------------
    # crash and restart (used by the crash-injection harness)
    # ------------------------------------------------------------------
    def kill_server(self, index: int = 0) -> None:
        """Simulate a hard process kill of one sensing server.

        The host disappears from the network (in-flight and future
        requests fail with a transport error, which the phones' resilient
        clients absorb) and the durable log handle is closed without any
        graceful flush beyond what already reached the OS — exactly what
        ``kill -9`` leaves behind.
        """
        server = self.servers[index]
        if self.network.is_registered(server.host):
            self.network.unregister(server.host)
        server.close()
        if server.database.durability is not None:
            server.database.durability.close()

    def restart_server(self, index: int = 0) -> RecoveryReport | None:
        """Bring a killed server back, recovering from disk if durable.

        With durability configured the new process replays the checkpoint
        + WAL into a fresh database and rehydrates its in-memory managers
        (applications, scheduler coverage, task-id counter) from it; the
        un-persistable feature pipelines are re-attached from the
        deployment records. Without durability the server restarts empty,
        which is the whole point of the contrast scenario.
        """
        old = self.servers[index]
        if self.network.is_registered(old.host):
            raise ConfigurationError(
                f"server {old.host!r} is still registered; kill it first"
            )
        server = SensingServer(
            old.host,
            self.network,
            self.simulator.clock,
            gcm=self.gcm,
            client=self._make_client(f"server:{old.host}"),
            durability=self.durability,
            concurrency=self.concurrency,
            io_delay_s=self.io_delay_s,
            scheduler_backend=self.scheduler_backend,
            scheduler_mode=self.scheduler_mode,
            ranking_cache=self.ranking_cache,
        )
        for deployed in self._places.values():
            application = deployed.application
            if server.apps.get(application.app_id) is not None:
                server.apps.attach_pipeline(
                    application.app_id, application.pipeline
                )
        self.servers[index] = server
        if server.recovery is not None:
            self.recovery_reports.append(server.recovery)
        return server.recovery

    # ------------------------------------------------------------------
    # running and results
    # ------------------------------------------------------------------
    def run(self, until: float | None = None) -> None:
        """Run the deployment to ``until`` (default: the period end)."""
        self.simulator.run(until if until is not None else self.end_time)

    def process_and_rank(
        self, category: str, profiles: list[PreferenceProfile]
    ) -> dict[str, RankingReport]:
        """Decode uploads, compute features, rank for each profile.

        Each server processes the blobs it received and computes features
        for its own applications; rankings then read the shared feature
        data through any server's ranker, in one batch that shares a
        single feature_data scan (and hits the versioned ranking cache
        when the data hasn't changed since the last call).
        """
        for server in self.servers:
            server.process_data()
            server.compute_all_features()
        return self.server.ranker.rank_many(category, profiles)

    def feature_values(self, category: str) -> dict[str, dict[str, float]]:
        """Feature data currently in the database for a category."""
        return self.server.ranker.feature_values(category)


def _trail_is_loop(place: PlaceProfile) -> bool:
    assert place.trail is not None
    import math

    first = place.trail.points[0]
    last = place.trail.points[-1]
    return (
        math.hypot(last.east_m - first.east_m, last.north_m - first.north_m)
        < place.trail.length_m * 0.05
    )
