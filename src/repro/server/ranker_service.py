"""The Personalizable Ranker service.

Reads feature data for all places of a category from the database,
assembles the paper's H matrix, and runs Algorithm 2 (Γ → individual
rankings → weighted footrule aggregation via min-cost flow) for a
user's preference profile.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import RankingError
from repro.core.features import build_feature_matrix
from repro.core.ranking import (
    PreferenceProfile,
    Ranking,
    aggregate_footrule,
    individual_rankings,
    preference_distance_matrix,
    weighted_footrule_distance,
    weighted_kemeny_distance,
)
from repro.db import Database, eq


@dataclass(frozen=True)
class RankingReport:
    """The aggregated ranking plus everything needed to explain it."""

    profile_name: str
    category: str
    ranking: Ranking
    feature_names: list[str]
    feature_matrix: np.ndarray
    place_ids: list[str]
    individual: list[Ranking]
    weights: list[int]
    weighted_footrule: float
    weighted_kemeny: float


class PersonalizableRanker:
    """Ranks the places of a category for a preference profile."""

    def __init__(self, database: Database) -> None:
        self.database = database

    def feature_values(self, category: str) -> dict[str, dict[str, float]]:
        """place_id → {feature → value} for every place in the category."""
        rows = self.database.table("feature_data").select(eq("category", category))
        values: dict[str, dict[str, float]] = {}
        for row in rows:
            values.setdefault(row["place_id"], {})[row["feature"]] = row["value"]
        return values

    def rank(self, category: str, profile: PreferenceProfile) -> RankingReport:
        """Run the full personalizable ranking pipeline."""
        values = self.feature_values(category)
        if len(values) < 2:
            raise RankingError(
                f"need at least two places with feature data in {category!r}"
            )
        feature_sets = [set(features) for features in values.values()]
        common = set.intersection(*feature_sets)
        feature_names = sorted(
            feature for feature in common if profile.weight(feature) > 0
        )
        if not feature_names:
            raise RankingError(
                "no common features with positive weight for this profile"
            )
        matrix, place_ids = build_feature_matrix(values, feature_names)
        gamma = preference_distance_matrix(matrix, feature_names, profile)
        individual = individual_rankings(gamma, place_ids)
        weights = [profile.weight(feature) for feature in feature_names]
        ranking = aggregate_footrule(individual, weights)
        return RankingReport(
            profile_name=profile.name,
            category=category,
            ranking=ranking,
            feature_names=feature_names,
            feature_matrix=matrix,
            place_ids=list(place_ids),
            individual=individual,
            weights=weights,
            weighted_footrule=weighted_footrule_distance(
                ranking, individual, weights
            ),
            weighted_kemeny=weighted_kemeny_distance(ranking, individual, weights),
        )
