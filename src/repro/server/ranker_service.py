"""The Personalizable Ranker service.

Reads feature data for all places of a category from the database,
assembles the paper's H matrix, and runs Algorithm 2 (Γ → individual
rankings → weighted footrule aggregation via min-cost flow) for a
user's preference profile.

Serving-path additions on top of the paper:

* **Versioned ranking cache.** Every category carries a durable,
  monotonically increasing ``data_version`` (the ``ranking_versions``
  table) that the Data Processor bumps whenever it writes
  ``feature_data``. A size-bounded LRU :class:`RankingCache` keys
  finished :class:`RankingReport` objects by ``(category, data_version,
  profile fingerprint)`` — the fingerprint is a stable hash over the
  profile's sorted ``(feature, preferred, weight)`` triples — so
  serving the same profile over unchanged sensed data is a dictionary
  lookup, and any feature write invalidates every cached ranking of
  its category. Because the version is persisted through the database
  (and thus the WAL), a restarted server can never serve stale results.

* **Batch ranking.** :meth:`PersonalizableRanker.rank_many` scans
  ``feature_data`` once per category and reuses the H matrix and the
  per-feature individual rankings across every profile whose effective
  feature set (and per-feature preferred value) matches, instead of
  recomputing the whole table scan per profile.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable, Mapping

import numpy as np

from repro.common.errors import RankingError
from repro.core.features import build_feature_matrix
from repro.core.ranking import (
    MAX,
    MIN,
    FeaturePreference,
    PreferenceProfile,
    Ranking,
    aggregate_footrule,
    require_finite_features,
    weighted_footrule_distance,
    weighted_kemeny_distance,
)
from repro.db import Database, eq
from repro.obs import MetricsRegistry, Tracer, get_metrics, get_tracer
from repro.server.schemas import RANKING_VERSIONS


# ----------------------------------------------------------------------
# durable per-category data versions
# ----------------------------------------------------------------------
def get_data_version(database: Database, category: str) -> int:
    """The category's current feature-data version (0 = never written)."""
    if not database.has_table(RANKING_VERSIONS.name):
        return 0
    row = database.table(RANKING_VERSIONS.name).get(category)
    return int(row["data_version"]) if row is not None else 0


def bump_data_version(database: Database, category: str) -> int:
    """Increment (and persist) the category's version; returns the new one.

    Called by the Data Processor after every ``feature_data`` write so
    cached rankings keyed on the old version can never be served again.
    """
    if not database.has_table(RANKING_VERSIONS.name):
        database.create_table(RANKING_VERSIONS)
    table = database.table(RANKING_VERSIONS.name)
    row = table.get(category)
    if row is None:
        table.insert({"category": category, "data_version": 1})
        return 1
    version = int(row["data_version"]) + 1
    table.update(eq("category", category), {"data_version": version})
    return version


# ----------------------------------------------------------------------
# wire form of preference profiles (the rank_query payload)
# ----------------------------------------------------------------------
def profile_to_dict(profile: PreferenceProfile) -> dict[str, Any]:
    """Encode a profile for a ``rank_query`` envelope payload."""
    preferences: dict[str, Any] = {}
    for feature in profile.feature_names:
        preference = profile.preference(feature)
        preferred: Any = preference.preferred
        if preferred is MAX:
            preferred = "max"
        elif preferred is MIN:
            preferred = "min"
        else:
            preferred = float(preferred)
        preferences[feature] = {
            "preferred": preferred,
            "weight": preference.weight,
        }
    return {"name": profile.name, "preferences": preferences}


def profile_from_dict(data: Mapping[str, Any]) -> PreferenceProfile:
    """Decode a ``rank_query`` payload entry back into a profile.

    Raises :class:`RankingError` on any shape problem so the endpoint
    can turn it into a clean ERROR reply.
    """
    if not isinstance(data, Mapping):
        raise RankingError("profile entry must be a mapping")
    name = data.get("name")
    raw = data.get("preferences")
    if not isinstance(name, str) or not isinstance(raw, Mapping) or not raw:
        raise RankingError("profile needs a name and a preferences mapping")
    preferences: dict[str, FeaturePreference] = {}
    for feature, entry in raw.items():
        if not isinstance(entry, Mapping):
            raise RankingError(f"preference for {feature!r} must be a mapping")
        preferred: Any = entry.get("preferred")
        if preferred == "max":
            preferred = MAX
        elif preferred == "min":
            preferred = MIN
        elif isinstance(preferred, (int, float)) and not isinstance(
            preferred, bool
        ):
            preferred = float(preferred)
        else:
            raise RankingError(
                f"preferred value for {feature!r} must be a number, "
                f"'max' or 'min', got {preferred!r}"
            )
        weight = entry.get("weight")
        if not isinstance(weight, int) or isinstance(weight, bool):
            raise RankingError(f"weight for {feature!r} must be an integer")
        preferences[str(feature)] = FeaturePreference(preferred, weight)
    return PreferenceProfile(name, preferences)


@dataclass(frozen=True)
class RankingReport:
    """The aggregated ranking plus everything needed to explain it."""

    profile_name: str
    category: str
    ranking: Ranking
    feature_names: list[str]
    feature_matrix: np.ndarray
    place_ids: list[str]
    individual: list[Ranking]
    weights: list[int]
    weighted_footrule: float
    weighted_kemeny: float


class RankingCache:
    """Size-bounded LRU cache of finished :class:`RankingReport` objects.

    Keys are ``(category, data_version, profile fingerprint)`` tuples;
    since the data version changes on every feature write, entries for
    stale data simply stop being addressable and age out of the LRU.
    Hit/miss/eviction counts are both kept as plain attributes (for
    reports and tests) and exported as ``sor_ranking_cache_*_total``.
    """

    def __init__(
        self, capacity: int = 256, *, metrics: MetricsRegistry | None = None
    ) -> None:
        if capacity < 1:
            raise RankingError("ranking cache capacity must be positive")
        self.capacity = capacity
        # Concurrent RANK_QUERY handlers hit the cache from many worker
        # threads at once, and even a read reorders the LRU list.
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, RankingReport] = OrderedDict()
        registry = metrics if metrics is not None else get_metrics()
        self._m_hits = registry.counter(
            "sor_ranking_cache_hits_total",
            "ranking requests served from the versioned ranking cache",
        )
        self._m_misses = registry.counter(
            "sor_ranking_cache_misses_total",
            "ranking requests that had to run the full Algorithm 2 pipeline",
        )
        self._m_evictions = registry.counter(
            "sor_ranking_cache_evictions_total",
            "cached ranking reports evicted by the LRU size bound",
        )
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: tuple) -> RankingReport | None:
        """The cached report for ``key``, refreshing its LRU position."""
        with self._lock:
            report = self._entries.get(key)
            if report is None:
                self.misses += 1
                self._m_misses.inc()
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            self._m_hits.inc()
            return report

    def put(self, key: tuple, report: RankingReport) -> None:
        """Store ``report`` under ``key``, evicting LRU overflow."""
        with self._lock:
            self._entries[key] = report
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                self._m_evictions.inc()

    def clear(self) -> None:
        """Drop every entry (counters keep their totals)."""
        with self._lock:
            self._entries.clear()


class _CategoryScan:
    """One ``feature_data`` scan plus the matrices derived from it.

    ``rank_many`` builds a scan once per category and reuses it across
    profiles: the H matrix is memoized per effective feature set, and
    each per-feature individual ranking per ``(feature, resolved
    preferred value)`` — the only inputs it depends on — so profiles
    sharing a feature emphasis never recompute its column sort.
    """

    def __init__(
        self,
        category: str,
        data_version: int,
        values: dict[str, dict[str, float]],
    ) -> None:
        self.category = category
        self.data_version = data_version
        self.values = values
        feature_sets = [set(features) for features in values.values()]
        self.common: set[str] = (
            set.intersection(*feature_sets) if feature_sets else set()
        )
        self._matrices: dict[
            tuple[str, ...], tuple[np.ndarray, list[Hashable]]
        ] = {}
        self._rankings: dict[tuple[str, float], Ranking] = {}

    def matrix(
        self, feature_names: tuple[str, ...]
    ) -> tuple[np.ndarray, list[Hashable]]:
        """The validated H matrix (and place order) for a feature set."""
        entry = self._matrices.get(feature_names)
        if entry is None:
            matrix, place_ids = build_feature_matrix(
                self.values, list(feature_names)
            )
            require_finite_features(matrix, feature_names, place_ids)
            entry = (matrix, place_ids)
            self._matrices[feature_names] = entry
        return entry

    def individual(
        self,
        feature: str,
        column: np.ndarray,
        place_ids: list[Hashable],
        preference: FeaturePreference,
    ) -> Ranking:
        """Step 1+2 for one feature column, memoized on (feature, uⱼ)."""
        preferred = preference.resolve(float(column.min()), float(column.max()))
        key = (feature, preferred)
        ranking = self._rankings.get(key)
        if ranking is None:
            gamma = np.abs(column - preferred)
            order = np.argsort(gamma, kind="stable")
            ranking = Ranking(place_ids[index] for index in order)
            self._rankings[key] = ranking
        return ranking


class PersonalizableRanker:
    """Ranks the places of a category for preference profiles.

    With a :class:`RankingCache` attached, repeated requests for the
    same ``(category, data version, profile)`` are served without
    touching ``feature_data``; without one every call recomputes.
    """

    def __init__(
        self,
        database: Database,
        *,
        cache: RankingCache | None = None,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.database = database
        self.cache = cache
        self.metrics = metrics if metrics is not None else get_metrics()
        self.tracer = tracer if tracer is not None else get_tracer()

    def data_version(self, category: str) -> int:
        """The category's current durable feature-data version."""
        return get_data_version(self.database, category)

    def feature_values(self, category: str) -> dict[str, dict[str, float]]:
        """place_id → {feature → value} for every place in the category."""
        rows = self.database.table("feature_data").select(eq("category", category))
        values: dict[str, dict[str, float]] = {}
        for row in rows:
            values.setdefault(row["place_id"], {})[row["feature"]] = row["value"]
        return values

    def rank(self, category: str, profile: PreferenceProfile) -> RankingReport:
        """Run the full personalizable ranking pipeline for one profile."""
        with self.tracer.span("ranker.rank", category=category) as span:
            report, _, cached = self._rank_cached(category, profile, None)
            span.set_attribute("cache", "hit" if cached else "miss")
        return report

    def rank_many(
        self, category: str, profiles: list[PreferenceProfile]
    ) -> dict[str, RankingReport]:
        """Rank the category for every profile, scanning the data once.

        Returns ``profile name → report`` in the profiles' order. Cached
        profiles are served from the cache; the remaining ones share a
        single ``feature_data`` scan, H matrix and per-feature rankings.
        """
        reports: dict[str, RankingReport] = {}
        hits = 0
        with self.tracer.span(
            "ranker.rank_many", category=category, profiles=len(profiles)
        ) as span:
            scan: _CategoryScan | None = None
            for profile in profiles:
                report, scan, cached = self._rank_cached(
                    category, profile, scan
                )
                hits += cached
                reports[profile.name] = report
            span.set_attribute("cache_hits", hits)
        return reports

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _rank_cached(
        self,
        category: str,
        profile: PreferenceProfile,
        scan: _CategoryScan | None,
    ) -> tuple[RankingReport, _CategoryScan | None, bool]:
        version = self.data_version(category)
        key = (category, version, profile.fingerprint())
        if self.cache is not None:
            report = self.cache.get(key)
            if report is not None:
                return report, scan, True
        if scan is None or scan.data_version != version:
            scan = _CategoryScan(category, version, self.feature_values(category))
        report = self._rank_profile(scan, profile)
        if self.cache is not None:
            self.cache.put(key, report)
        return report, scan, False

    def _rank_profile(
        self, scan: _CategoryScan, profile: PreferenceProfile
    ) -> RankingReport:
        if len(scan.values) < 2:
            raise RankingError(
                f"need at least two places with feature data in "
                f"{scan.category!r}"
            )
        # Features the profile never mentioned count as weight 0 (the
        # paper's "doesn't care") instead of crashing the whole category.
        feature_names = sorted(
            feature
            for feature in scan.common
            if profile.effective_weight(feature) > 0
        )
        if not feature_names:
            raise RankingError(
                "no common features with positive weight for this profile"
            )
        matrix, place_ids = scan.matrix(tuple(feature_names))
        individual = [
            scan.individual(
                feature, matrix[:, column], place_ids, profile.preference(feature)
            )
            for column, feature in enumerate(feature_names)
        ]
        weights = [profile.weight(feature) for feature in feature_names]
        ranking = aggregate_footrule(individual, weights, metrics=self.metrics)
        return RankingReport(
            profile_name=profile.name,
            category=scan.category,
            ranking=ranking,
            feature_names=feature_names,
            feature_matrix=matrix,
            place_ids=list(place_ids),
            individual=individual,
            weights=weights,
            weighted_footrule=weighted_footrule_distance(
                ranking, individual, weights
            ),
            weighted_kemeny=weighted_kemeny_distance(ranking, individual, weights),
        )
