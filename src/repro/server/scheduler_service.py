"""The online Sensing Scheduler service.

"For each application, the Sensing Scheduler applies an online algorithm
to calculate a sensing schedule (that specifies when to sense for each
participating user) for a scheduling period based on runtime
participation information."

Online operation: participants arrive one at a time (a barcode scan).
The service keeps, per application, the incremental coverage objective
over everything already scheduled; a new participant's budget is spent
greedily on the instants with maximum marginal coverage inside their
remaining presence window. This is exactly the paper's greedy restricted
to the elements that are still selectable, and inherits its guarantee
for the instants scheduled so far.
"""

from __future__ import annotations

import numpy as np

from repro.common.clock import Clock
from repro.common.errors import SchedulingError
from repro.core.scheduling import (
    DEFAULT_BACKEND,
    GREEDY_MODES,
    GaussianKernel,
    SchedulingPeriod,
    argmax_tied_low,
    make_objective,
    stochastic_sample_size,
)
from repro.obs import MetricsRegistry, Tracer, get_metrics, get_tracer
from repro.server.app_manager import Application
from repro.server.participation import ParticipationManager


class _AppSchedulerState:
    """Per-application incremental coverage state."""

    def __init__(
        self,
        application: Application,
        backend: str = DEFAULT_BACKEND,
        *,
        mode: str = "argmax",
        sample_epsilon: float = 0.1,
        seed: int = 2014,
    ) -> None:
        self.period = SchedulingPeriod(
            application.period_start,
            application.period_end,
            application.num_instants,
        )
        self.kernel = GaussianKernel(sigma=application.coverage_sigma_s)
        self.backend = backend
        self.mode = mode
        self.sample_epsilon = sample_epsilon
        # One seeded stream per application state: schedules stay
        # deterministic for a fixed arrival order, and rehydrate rebuilds
        # coverage from the persisted times rather than replaying draws.
        self._rng = (
            np.random.default_rng(seed) if mode == "stochastic" else None
        )
        self.objective = make_objective(self.period, self.kernel, backend)
        self.scheduled_counts: dict[str, int] = {}

    def schedule_user(
        self, user_id: str, *, from_time: float, until_time: float, budget: int
    ) -> tuple[list[int], int]:
        """Greedily pick up to ``budget`` instants in the user's window.

        Returns the chosen instants and the number of candidate instants
        whose marginal gain was evaluated (the service reports it). In
        ``mode="stochastic"`` each pick scores a seeded sample of the
        window instead of the whole window, falling back to the exact
        sweep when the sample comes up dry.
        """
        lo, hi = self.period.window_indices(
            max(from_time, self.period.start), min(until_time, self.period.end)
        )
        if hi <= lo:
            return [], 0
        chosen: list[int] = []
        already: set[int] = set()
        evaluated = 0
        sample_size = stochastic_sample_size(
            hi - lo, budget, self.sample_epsilon
        )
        for _ in range(budget):
            gains = self.objective.gains_fast()[lo:hi]
            evaluated += hi - lo
            if already:
                for index in already:
                    gains[index - lo] = -np.inf
            if self._rng is not None:
                draws = self._rng.integers(0, hi - lo, size=sample_size)
                positions = np.unique(draws)
                best_offset = int(positions[argmax_tied_low(gains[positions])])
                if gains[best_offset] <= 1e-12:
                    best_offset = argmax_tied_low(gains)
            else:
                best_offset = argmax_tied_low(gains)
            if gains[best_offset] <= 1e-12:
                break
            instant = lo + best_offset
            self.objective.add(instant)
            already.add(instant)
            chosen.append(instant)
        self.scheduled_counts[user_id] = (
            self.scheduled_counts.get(user_id, 0) + len(chosen)
        )
        return sorted(chosen), evaluated

    @property
    def average_coverage(self) -> float:
        return self.objective.average_coverage()


class SensingSchedulerService:
    """Schedules each participation request as it arrives."""

    def __init__(
        self,
        participation: ParticipationManager,
        clock: Clock,
        *,
        backend: str = DEFAULT_BACKEND,
        mode: str = "argmax",
        sample_epsilon: float = 0.1,
        seed: int = 2014,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        if mode not in GREEDY_MODES:
            raise SchedulingError(
                f"unknown greedy mode {mode!r}; expected one of {GREEDY_MODES}"
            )
        self.participation = participation
        self.clock = clock
        self.backend = backend
        self.mode = mode
        self.sample_epsilon = sample_epsilon
        self.seed = seed
        self._states: dict[str, _AppSchedulerState] = {}
        self.metrics = metrics if metrics is not None else get_metrics()
        self.tracer = tracer if tracer is not None else get_tracer()
        self._m_tasks = self.metrics.counter(
            "sor_scheduler_tasks_total", "participation tasks scheduled"
        )
        self._m_instants_assigned = self.metrics.counter(
            "sor_scheduler_instants_assigned_total",
            "sensing instants handed to phones",
        )
        self._m_instants_evaluated = self.metrics.counter(
            "sor_scheduler_instants_evaluated_total",
            "candidate instants whose marginal gain was evaluated online",
        )
        self._m_coverage = self.metrics.gauge(
            "sor_scheduler_coverage",
            "average coverage of the pooled schedule, per application",
            labels=("app",),
        )

    def state_for(self, application: Application) -> _AppSchedulerState:
        """The per-application incremental coverage state (lazily built)."""
        state = self._states.get(application.app_id)
        if state is None:
            state = _AppSchedulerState(
                application,
                self.backend,
                mode=self.mode,
                sample_epsilon=self.sample_epsilon,
                seed=self.seed,
            )
            self._states[application.app_id] = state
        return state

    def rehydrate(self, application: Application) -> int:
        """Rebuild coverage state from persisted schedules after a restart.

        The objective over already-scheduled instants is in-memory only;
        the schedules themselves are durable on the task rows. Re-adding
        each persisted sensing time (via its nearest instant index) makes
        post-recovery scheduling see exactly the coverage that existed
        before the crash. Returns the number of instants restored.
        """
        state = self.state_for(application)
        restored = 0
        for task in self.participation.tasks_for_app(application.app_id):
            times = task.get("schedule_times") or []
            if not times:
                continue
            for timestamp in times:
                state.objective.add(state.period.nearest_instant(float(timestamp)))
            state.scheduled_counts[task["user_id"]] = (
                state.scheduled_counts.get(task["user_id"], 0) + len(times)
            )
            restored += len(times)
        if restored:
            self._m_coverage.set(state.average_coverage, app=application.app_id)
        return restored

    def schedule_task(
        self,
        application: Application,
        task_id: str,
        *,
        budget: int,
        departure_time: float | None = None,
    ) -> list[float]:
        """Compute and record the sensing times for a new task.

        The schedule starts from *now* (a user cannot sense in the past)
        and runs to their expected departure or the period end.
        """
        if budget <= 0:
            raise SchedulingError("budget must be positive")
        state = self.state_for(application)
        now = self.clock.now()
        until = departure_time if departure_time is not None else state.period.end
        task = self.participation.get_task(task_id)
        if task is None:
            raise SchedulingError(f"unknown task {task_id!r}")
        with self.tracer.span(
            "scheduler.schedule_task", app_id=application.app_id, budget=budget
        ) as span:
            instants, evaluated = state.schedule_user(
                task["user_id"], from_time=now, until_time=until, budget=budget
            )
            span.set_attribute("instants", len(instants))
        self._m_tasks.inc()
        self._m_instants_assigned.inc(len(instants))
        self._m_instants_evaluated.inc(evaluated)
        self._m_coverage.set(state.average_coverage, app=application.app_id)
        times = [state.period.instant_time(index) for index in instants]
        self.participation.record_schedule(task_id, times)
        return times

    def coverage_for(self, application: Application) -> float:
        """Current average coverage of an application's pooled schedule."""
        return self.state_for(application).average_coverage
