"""The online Sensing Scheduler service.

"For each application, the Sensing Scheduler applies an online algorithm
to calculate a sensing schedule (that specifies when to sense for each
participating user) for a scheduling period based on runtime
participation information."

Online operation: participants arrive one at a time (a barcode scan).
The service keeps, per application, the incremental coverage objective
over everything already scheduled; a new participant's budget is spent
greedily on the instants with maximum marginal coverage inside their
remaining presence window. This is exactly the paper's greedy restricted
to the elements that are still selectable, and inherits its guarantee
for the instants scheduled so far.
"""

from __future__ import annotations

import numpy as np

from repro.common.clock import Clock
from repro.common.errors import SchedulingError
from repro.core.scheduling import CoverageObjective, GaussianKernel, SchedulingPeriod
from repro.server.app_manager import Application
from repro.server.participation import ParticipationManager


class _AppSchedulerState:
    """Per-application incremental coverage state."""

    def __init__(self, application: Application) -> None:
        self.period = SchedulingPeriod(
            application.period_start,
            application.period_end,
            application.num_instants,
        )
        self.kernel = GaussianKernel(sigma=application.coverage_sigma_s)
        self.objective = CoverageObjective(self.period, self.kernel)
        self.scheduled_counts: dict[str, int] = {}

    def schedule_user(
        self, user_id: str, *, from_time: float, until_time: float, budget: int
    ) -> list[int]:
        """Greedily pick up to ``budget`` instants in the user's window."""
        lo, hi = self.period.window_indices(
            max(from_time, self.period.start), min(until_time, self.period.end)
        )
        if hi <= lo:
            return []
        chosen: list[int] = []
        already: set[int] = set()
        for _ in range(budget):
            gains = self.objective.gains_fast()[lo:hi]
            if already:
                for index in already:
                    gains[index - lo] = -np.inf
            best_offset = int(np.argmax(gains))
            if gains[best_offset] <= 1e-12:
                break
            instant = lo + best_offset
            self.objective.add(instant)
            already.add(instant)
            chosen.append(instant)
        self.scheduled_counts[user_id] = (
            self.scheduled_counts.get(user_id, 0) + len(chosen)
        )
        return sorted(chosen)

    @property
    def average_coverage(self) -> float:
        return self.objective.average_coverage()


class SensingSchedulerService:
    """Schedules each participation request as it arrives."""

    def __init__(self, participation: ParticipationManager, clock: Clock) -> None:
        self.participation = participation
        self.clock = clock
        self._states: dict[str, _AppSchedulerState] = {}

    def state_for(self, application: Application) -> _AppSchedulerState:
        """The per-application incremental coverage state (lazily built)."""
        state = self._states.get(application.app_id)
        if state is None:
            state = _AppSchedulerState(application)
            self._states[application.app_id] = state
        return state

    def schedule_task(
        self,
        application: Application,
        task_id: str,
        *,
        budget: int,
        departure_time: float | None = None,
    ) -> list[float]:
        """Compute and record the sensing times for a new task.

        The schedule starts from *now* (a user cannot sense in the past)
        and runs to their expected departure or the period end.
        """
        if budget <= 0:
            raise SchedulingError("budget must be positive")
        state = self.state_for(application)
        now = self.clock.now()
        until = departure_time if departure_time is not None else state.period.end
        task = self.participation.get_task(task_id)
        if task is None:
            raise SchedulingError(f"unknown task {task_id!r}")
        instants = state.schedule_user(
            task["user_id"], from_time=now, until_time=until, budget=budget
        )
        times = [state.period.instant_time(index) for index in instants]
        self.participation.record_schedule(task_id, times)
        return times

    def coverage_for(self, application: Application) -> float:
        """Current average coverage of an application's pooled schedule."""
        return self.state_for(application).average_coverage
