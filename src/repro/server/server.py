"""The Sensing Server HTTP endpoint.

The server-side Message Handler "communicates with the mobile frontend
using HTTP and dispatches incoming messages to different components.
Note that if it detects that the received message includes sensed data,
it will directly store the binary message body into the database, which
will be processed later by the Data Processor."
"""

from __future__ import annotations

import time

from repro.common.clock import Clock
from repro.common.errors import (
    CodecError,
    ConfigurationError,
    ParticipationError,
    RankingError,
    TransportError,
)
from repro.common.geo import LatLon
from repro.core.scheduling import DEFAULT_BACKEND
from repro.db import Database, DurabilityConfig, RecoveryReport, eq
from repro.db.wal import open_durable_database
from repro.net import (
    CloudMessenger,
    Envelope,
    HttpRequest,
    HttpResponse,
    MessageType,
)
from repro.net.resilience import ResilientClient
from repro.net.transport import Network
from repro.obs import MetricsRegistry, Tracer, get_metrics, get_tracer
from repro.obs.export import CONTENT_TYPE, to_prometheus_text
from repro.server.app_manager import Application, ApplicationManager
from repro.server.concurrency import (
    ConcurrencyConfig,
    ReadWriteLock,
    RequestExecutor,
)
from repro.server.data_processor import DataProcessor
from repro.server.participation import ParticipationManager, ParticipationStatus
from repro.server.ranker_service import (
    PersonalizableRanker,
    RankingCache,
    profile_from_dict,
)
from repro.server.schemas import create_all_tables
from repro.server.scheduler_service import SensingSchedulerService
from repro.server.user_manager import UserInfoManager


class SensingServer:
    """One sensing server: endpoint + all backend components."""

    def __init__(
        self,
        host: str,
        network: Network,
        clock: Clock,
        *,
        gcm: CloudMessenger | None = None,
        database: Database | None = None,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        client: ResilientClient | None = None,
        dedupe_capacity: int = 4096,
        ranking_cache: bool = True,
        ranking_cache_capacity: int = 256,
        scheduler_backend: str = DEFAULT_BACKEND,
        scheduler_mode: str = "argmax",
        durability: DurabilityConfig | None = None,
        concurrency: ConcurrencyConfig | None = None,
        io_delay_s: float = 0.0,
    ) -> None:
        self.host = host
        self.network = network
        self.clock = clock
        self.gcm = gcm
        self.client = client
        # Simulated per-request I/O (socket read/write, WAL fsync): a
        # real wall-clock sleep taken *outside* any lock, so a worker
        # pool overlaps it while a single-threaded server serializes it.
        if io_delay_s < 0:
            raise ConfigurationError("io_delay_s must be non-negative")
        self.io_delay_s = io_delay_s
        # Readers–writer lock over all request handling: rank queries
        # share it, every mutating handler holds it exclusively, which
        # keeps the WAL-feeding commit path single-writer.
        self._rwlock = ReadWriteLock()
        self._executor = (
            RequestExecutor(concurrency, name=host)
            if concurrency is not None
            else None
        )
        self._busy_retry_after_s = (
            concurrency.busy_retry_after_s if concurrency is not None else 0.0
        )
        # Served replies are deduped through the durable `idempotency`
        # table (see _stored_response), bounded to this many entries.
        self._dedupe_capacity = dedupe_capacity
        self.metrics = metrics if metrics is not None else get_metrics()
        self.tracer = tracer if tracer is not None else get_tracer()
        self.recovery: RecoveryReport | None = None
        if durability is not None:
            if database is not None:
                raise ConfigurationError(
                    "pass either database= or durability=, not both"
                )
            self.database, self.recovery = open_durable_database(
                durability, name=host, metrics=self.metrics
            )
        else:
            self.database = (
                database
                if database is not None
                else Database(name=host, metrics=self.metrics)
            )
        create_all_tables(self.database)
        self.users = UserInfoManager(self.database, clock)
        self.apps = ApplicationManager(self.database, owner=host)
        self.participation = ParticipationManager(
            self.database, self.users, self.apps, clock, id_prefix=f"{host}:"
        )
        self.scheduler = SensingSchedulerService(
            self.participation,
            clock,
            backend=scheduler_backend,
            mode=scheduler_mode,
            metrics=self.metrics,
            tracer=self.tracer,
        )
        # Rebuild in-memory coverage state from the persisted schedules
        # of whatever applications survived on disk (no-op on a fresh
        # database).
        for application in self.apps.all_apps():
            self.scheduler.rehydrate(application)
        self.data_processor = DataProcessor(
            self.database, self.apps, clock, metrics=self.metrics
        )
        # ``ranking_cache=False`` is the ablation switch: the ranker then
        # runs the full Algorithm 2 pipeline on every request.
        self.ranking_cache = (
            RankingCache(capacity=ranking_cache_capacity, metrics=self.metrics)
            if ranking_cache
            else None
        )
        self.ranker = PersonalizableRanker(
            self.database,
            cache=self.ranking_cache,
            metrics=self.metrics,
            tracer=self.tracer,
        )
        self._phone_hosts: dict[str, str] = {}  # token → host
        self._m_requests = self.metrics.counter(
            "sor_server_requests_total",
            "HTTP requests handled, by message type and response status",
            labels=("type", "status"),
        )
        self._m_request_timer = self.metrics.timer(
            "sor_server_request_seconds",
            "handle_request latency in clock seconds",
        )
        self._m_sensed = self.metrics.counter(
            "sor_server_sensed_envelopes_total",
            "sensed-data envelopes stored for later processing",
        )
        self._m_ping = self.metrics.counter(
            "sor_server_ping_total",
            "phone ping attempts by outcome (http/gcm/failed)",
            labels=("outcome",),
        )
        self._m_push = self.metrics.counter(
            "sor_server_push_total",
            "schedule push attempts by outcome",
            labels=("outcome",),
        )
        self._m_duplicates = self.metrics.counter(
            "sor_server_duplicate_envelopes_total",
            "replayed envelopes served from the idempotency cache",
            labels=("type",),
        )
        self._m_busy = self.metrics.counter(
            "sor_server_busy_rejections_total",
            "requests refused at admission because the queue was full",
        )
        self._m_queue_depth = self.metrics.gauge(
            "sor_server_admission_queue_depth",
            "requests admitted but not yet picked up by a worker",
        )
        network.register(host, self)

    def _transport_send(self, request: HttpRequest) -> HttpResponse:
        """Outbound send, through the resilient client when attached."""
        if self.client is not None:
            return self.client.send(request)
        return self.network.send(request)

    # ------------------------------------------------------------------
    # administration
    # ------------------------------------------------------------------
    def register_user(self, user_id: str, name: str, token: str) -> None:
        """Register a mobile user (User Info Manager record)."""
        self.users.register(user_id, name, token)

    def create_application(self, application: Application) -> None:
        """Register a sensing application for a target place."""
        self.apps.create(application)

    # ------------------------------------------------------------------
    # endpoint
    # ------------------------------------------------------------------
    def handle_request(self, request: HttpRequest) -> HttpResponse:
        """Serve one HTTP request (the server-side Message Handler).

        With a worker pool configured, the request is admitted to the
        bounded queue and handled on a worker thread; when the queue is
        full the server answers immediately with HTTP 503 carrying a
        :data:`MessageType.BUSY` envelope — the backpressure signal the
        resilient client retries with jittered backoff. ``GET /metrics``
        is always served inline: observability must stay readable while
        the admission queue is saturated.
        """
        if request.method == "GET" and request.path == "/metrics":
            return self.metrics_response()
        if self._executor is None:
            return self._handle_one(request)
        pending = self._executor.submit(lambda: self._handle_one(request))
        if pending is None:
            self._m_busy.inc()
            self._m_requests.inc(type="busy", status="503")
            return self._busy_response()
        self._m_queue_depth.set(self._executor.queue_depth())
        return pending.result()

    def _handle_one(self, request: HttpRequest) -> HttpResponse:
        """Handle one admitted request (runs on a worker thread, if any)."""
        if self.io_delay_s:
            # The request's socket/disk time; deliberately outside every
            # lock so concurrent workers overlap it.
            time.sleep(self.io_delay_s)
        with self.tracer.span("server.handle_request", host=self.host) as span:
            with self._m_request_timer.time():
                response, message_type = self._dispatch(request)
            span.set_attribute("type", message_type)
            span.set_attribute("status", response.status)
        self._m_requests.inc(type=message_type, status=str(response.status))
        return response

    def _busy_response(self) -> HttpResponse:
        envelope = Envelope(
            message_type=MessageType.BUSY,
            sender=self.host,
            recipient="",
            payload={"retry_after_s": self._busy_retry_after_s},
        )
        return HttpResponse(
            status=503,
            body=envelope.to_bytes(),
            headers={"Retry-After": f"{self._busy_retry_after_s:g}"},
        )

    def close(self) -> None:
        """Stop the worker pool (idempotent; no-op without one)."""
        if self._executor is not None:
            self._executor.close()

    def metrics_response(self) -> HttpResponse:
        """The ``GET /metrics`` Prometheus text exposition."""
        body = to_prometheus_text(self.metrics).encode("utf-8")
        return HttpResponse(
            status=200, body=body, headers={"Content-Type": CONTENT_TYPE}
        )

    def _dispatch(self, request: HttpRequest) -> tuple[HttpResponse, str]:
        """Decode and route one envelope; returns (response, type label).

        Two paths through the readers–writer lock:

        * RANK_QUERY without an idempotency key is a pure read — it runs
          under the shared side, with no transaction, so any number of
          rank queries proceed together (and concurrently with nothing
          else).
        * Everything that can mutate runs under the exclusive side, one
          writer at a time, so in-memory apply order and WAL append
          order always agree. The idempotency-dedupe check happens
          *inside* the write lock: two concurrent replays of the same
          envelope serialize there, the first runs the handler, the
          second replays its stored reply.

        Envelopes carrying an already-seen idempotency key replay the
        response served the first time without re-running the handler:
        a retried PARTICIPATE cannot register a second task and a
        retried SENSED_DATA upload cannot double-ingest readings, even
        when only the original response leg was lost. The served-reply
        record lives in the durable ``idempotency`` table and is written
        in the same transaction as the handler's effects, so a crash
        leaves either both or neither — a retry after recovery can never
        re-run a handler whose reply was acknowledged, nor replay a
        reply whose effects were lost.
        """
        try:
            envelope = Envelope.from_bytes(request.body)
        except CodecError:
            return HttpResponse(status=400), "undecodable"
        message_type = envelope.message_type.value
        key = envelope.idempotency_key
        if envelope.message_type is MessageType.RANK_QUERY and key is None:
            with self._rwlock.read():
                reply = self._on_rank_query(envelope)
            return HttpResponse(status=200, body=reply.to_bytes()), message_type
        handlers = {
            MessageType.PARTICIPATE: self._on_participate,
            MessageType.SENSED_DATA: lambda env: self._on_sensed_data(
                env, request.body
            ),
            MessageType.PREFERENCES: self._on_preferences,
            MessageType.PONG: self._on_pong,
            MessageType.LOCATION_REPORT: self._on_location_report,
            MessageType.RANK_QUERY: self._on_rank_query,
        }
        handler = handlers.get(envelope.message_type)
        if handler is None:
            return HttpResponse(status=404), message_type
        with self._rwlock.write():
            if key is not None:
                cached = self._stored_response(key)
                if cached is not None:
                    self._m_duplicates.inc(type=message_type)
                    return cached, message_type
            with self.database.transaction():
                reply = handler(envelope)
                response = HttpResponse(status=200, body=reply.to_bytes())
                if key is not None:
                    self._store_response(key, response)
        return response, message_type

    def _stored_response(self, key: str) -> HttpResponse | None:
        row = self.database.table("idempotency").get(key)
        if row is None:
            return None
        return HttpResponse(status=row["status"], body=row["body"])

    def _store_response(self, key: str, response: HttpResponse) -> None:
        table = self.database.table("idempotency")
        table.insert(
            {
                "key": key,
                "status": response.status,
                "body": response.body,
                "created_at": self.clock.now(),
            }
        )
        overflow = table.count() - self._dedupe_capacity
        if overflow > 0:
            for row in table.select(order_by="created_at", limit=overflow):
                table.delete(eq("key", row["key"]))

    # ------------------------------------------------------------------
    # message handlers
    # ------------------------------------------------------------------
    def _on_participate(self, envelope: Envelope) -> Envelope:
        payload = envelope.payload
        try:
            app_id = str(payload["app_id"])
            user_id = str(payload["user_id"])
            token = str(payload["token"])
            budget = int(payload["budget"])
            location = LatLon(
                latitude=float(payload["latitude"]),
                longitude=float(payload["longitude"]),
            )
        except (KeyError, TypeError, ValueError):
            return envelope.reply(
                MessageType.ERROR, {"reason": "malformed participation request"}
            )
        try:
            task_id = self.participation.create_task(
                app_id=app_id,
                user_id=user_id,
                token=token,
                phone_host=envelope.sender,
                location=location,
                budget=budget,
            )
        except ParticipationError as exc:
            return envelope.reply(MessageType.ERROR, {"reason": str(exc)})
        self._phone_hosts[token] = envelope.sender
        application = self.apps.get(app_id)
        assert application is not None  # create_task verified it
        times = self.scheduler.schedule_task(
            application,
            task_id,
            budget=budget,
            departure_time=payload.get("departure_time"),
        )
        return envelope.reply(
            MessageType.SCHEDULE,
            {
                "task_id": task_id,
                "app_id": app_id,
                "script": application.script,
                "times": times,
            },
        )

    def _on_sensed_data(self, envelope: Envelope, raw_body: bytes) -> Envelope:
        payload = envelope.payload
        task_id = payload.get("task_id")
        if not isinstance(task_id, str):
            return envelope.reply(MessageType.ERROR, {"reason": "missing task_id"})
        task = self.participation.get_task(task_id)
        if task is None or task["token"] != payload.get("token"):
            return envelope.reply(MessageType.ERROR, {"reason": "unknown task"})
        # The paper's behaviour: store the binary body now, decode later.
        self.database.table("raw_data").insert(
            {
                "task_id": task_id,
                "received_at": self.clock.now(),
                "body": raw_body,
                "processed": False,
            }
        )
        self._m_sensed.inc()
        status = payload.get("status")
        if status == "error":
            self.participation.mark_status(
                task_id,
                ParticipationStatus.ERROR,
                error=str(payload.get("error", "")),
            )
        elif status == "finished":
            self.participation.mark_status(task_id, ParticipationStatus.FINISHED)
        # The paper: the sensing budget "is updated at runtime" — record
        # how much of it the phone actually consumed.
        executed = payload.get("executed")
        if isinstance(executed, int) and executed >= 0:
            remaining = max(0, task["budget"] - executed)
            self.database.table("tasks").update(
                eq("task_id", task_id), {"budget": remaining}
            )
        return envelope.reply(MessageType.ACK, {"task_id": task_id})

    def _on_preferences(self, envelope: Envelope) -> Envelope:
        token = envelope.payload.get("token")
        denied = envelope.payload.get("denied", [])
        if not isinstance(token, str) or not isinstance(denied, list):
            return envelope.reply(MessageType.ERROR, {"reason": "malformed"})
        if not self.users.update_preferences(token, [str(item) for item in denied]):
            return envelope.reply(MessageType.ERROR, {"reason": "unknown token"})
        return envelope.reply(MessageType.ACK)

    def _on_pong(self, envelope: Envelope) -> Envelope:
        token = envelope.payload.get("token")
        if isinstance(token, str):
            self._phone_hosts[token] = envelope.payload.get(
                "host", envelope.sender
            )
        return envelope.reply(MessageType.ACK)

    def _on_location_report(self, envelope: Envelope) -> Envelope:
        payload = envelope.payload
        token = payload.get("token")
        try:
            location = LatLon(
                latitude=float(payload["latitude"]),
                longitude=float(payload["longitude"]),
            )
        except (KeyError, TypeError, ValueError):
            return envelope.reply(MessageType.ERROR, {"reason": "malformed"})
        finished = (
            self.participation.handle_location_report(token, location)
            if isinstance(token, str)
            else []
        )
        return envelope.reply(MessageType.ACK, {"finished_tasks": finished})

    def _on_rank_query(self, envelope: Envelope) -> Envelope:
        """Serve Algorithm 2 for one or many profiles of one category.

        Batch on purpose: all profiles in the request share one
        ``feature_data`` scan and H matrix (``rank_many``), and repeat
        queries over unchanged data come straight from the versioned
        ranking cache.
        """
        payload = envelope.payload
        category = payload.get("category")
        raw_profiles = payload.get("profiles")
        if not isinstance(category, str) or not isinstance(raw_profiles, list):
            return envelope.reply(
                MessageType.ERROR, {"reason": "malformed rank query"}
            )
        try:
            profiles = [profile_from_dict(entry) for entry in raw_profiles]
            if not profiles:
                raise RankingError("rank query needs at least one profile")
            reports = self.ranker.rank_many(category, profiles)
        except RankingError as exc:
            return envelope.reply(MessageType.ERROR, {"reason": str(exc)})
        return envelope.reply(
            MessageType.RANKING,
            {
                "category": category,
                "data_version": self.ranker.data_version(category),
                "rankings": [
                    {
                        "profile": name,
                        "places": list(report.ranking.items),
                        "weighted_footrule": report.weighted_footrule,
                        "weighted_kemeny": report.weighted_kemeny,
                    }
                    for name, report in reports.items()
                ],
            },
        )

    # ------------------------------------------------------------------
    # outbound
    # ------------------------------------------------------------------
    def ping_phone(self, token: str) -> bool:
        """Reach a phone we lost track of.

        Try HTTP first; if the phone's host is unknown or unreachable,
        fall back to a GCM push asking the device to ping us — the
        paper's recovery path.
        """
        host = self._phone_hosts.get(token)
        if host is not None:
            envelope = Envelope(
                message_type=MessageType.PING,
                sender=self.host,
                recipient=host,
                payload={},
            )
            envelope = envelope.with_idempotency_key()
            try:
                response = self._transport_send(
                    HttpRequest("POST", host, "/sor", envelope.to_bytes())
                )
                if response.ok:
                    self._m_ping.inc(outcome="http")
                    return True
            except TransportError:
                pass
        if self.gcm is not None and self.gcm.is_registered(token):
            push_payload = {"action": "ping", "server": self.host}
            try:
                if self.client is not None:
                    self.client.call(
                        f"gcm:{token}",
                        lambda: self.gcm.push(token, push_payload),
                    )
                else:
                    self.gcm.push(token, push_payload)
                self._m_ping.inc(outcome="gcm")
                return True
            except TransportError:
                self._m_ping.inc(outcome="failed")
                return False
        self._m_ping.inc(outcome="failed")
        return False

    def push_schedule(self, task_id: str) -> bool:
        """Proactively (re)send a task's schedule and script to its phone.

        The paper's Sensing Scheduler "will also distribute the
        calculated schedules along with the corresponding Lua scripts to
        participating mobile phones" — this is that distribution path,
        used when a phone lost the original reply or the server
        recomputed. Returns True when the phone acknowledged.
        """
        task = self.participation.get_task(task_id)
        if task is None:
            self._m_push.inc(outcome="unknown_task")
            return False
        application = self.apps.get(task["app_id"])
        if application is None:
            self._m_push.inc(outcome="unknown_app")
            return False
        host = self._phone_hosts.get(task["token"], task["phone_host"])
        envelope = Envelope(
            message_type=MessageType.SCHEDULE,
            sender=self.host,
            recipient=host,
            payload={
                "task_id": task_id,
                "app_id": task["app_id"],
                "script": application.script,
                "times": list(task["schedule_times"]),
            },
        )
        envelope = envelope.with_idempotency_key()
        try:
            response = self._transport_send(
                HttpRequest("POST", host, "/sor", envelope.to_bytes())
            )
        except TransportError:
            self._m_push.inc(outcome="transport_error")
            return False
        if not response.ok or not response.body:
            self._m_push.inc(outcome="rejected")
            return False
        try:
            reply = Envelope.from_bytes(response.body)
        except CodecError:
            self._m_push.inc(outcome="undecodable_reply")
            return False
        acked = reply.message_type is MessageType.ACK
        self._m_push.inc(outcome="ok" if acked else "rejected")
        return acked

    def query_phone_location(self, token: str) -> LatLon | None:
        """Ask a phone where it is (used by the participation tracker)."""
        host = self._phone_hosts.get(token)
        if host is None:
            return None
        envelope = Envelope(
            message_type=MessageType.LOCATION_QUERY,
            sender=self.host,
            recipient=host,
            payload={},
        )
        try:
            response = self._transport_send(
                HttpRequest("POST", host, "/sor", envelope.to_bytes())
            )
        except TransportError:
            return None
        if not response.ok or not response.body:
            return None
        try:
            reply = Envelope.from_bytes(response.body)
            return LatLon(
                latitude=float(reply.payload["latitude"]),
                longitude=float(reply.payload["longitude"]),
            )
        except (CodecError, KeyError, TypeError, ValueError):
            return None

    # ------------------------------------------------------------------
    # processing and queries
    # ------------------------------------------------------------------
    def process_data(self) -> int:
        """Run one Data Processor pass; returns decoded blob count."""
        return self.data_processor.process_pending()

    def feature_charts(self, category: str) -> str:
        """Text figures for a category's feature data (the paper's
        Visualization module output)."""
        from repro.server.visualization import bar_chart, feature_table

        values = self.ranker.feature_values(category)
        if not values:
            return f"(no feature data for category {category!r})"
        feature_names = sorted({f for fs in values.values() for f in fs})
        sections = [feature_table(values, feature_names)]
        for feature in feature_names:
            sections.append("")
            sections.append(
                bar_chart(
                    feature,
                    {
                        place: features[feature]
                        for place, features in values.items()
                        if feature in features
                    },
                )
            )
        return "\n".join(sections)

    def compute_all_features(self) -> dict[str, dict[str, float]]:
        """Compute features for every application with data."""
        results: dict[str, dict[str, float]] = {}
        for application in self.apps.all_apps():
            has_data = (
                self.database.table("readings").count(
                    eq("place_id", application.place_id)
                )
                > 0
            )
            if has_data:
                results[application.place_id] = self.data_processor.compute_features(
                    application.app_id
                )
        return results
