"""The Participation Manager.

"Every time when a mobile user scans a 2D barcode, the Participation
Manager will first verify whether the user is actually in the target
place by acquiring its location and comparing it against the location
stored in the Application Manager, and then create a task for it if the
user is considered as a truthful user. Moreover, a mobile user's status
… will be changed to 'finished' if according to his/her location, he/she
leaves the target place."
"""

from __future__ import annotations

import enum
import itertools

from repro.common.clock import Clock
from repro.common.errors import ParticipationError
from repro.common.geo import LatLon, haversine_m
from repro.db import Database, and_, eq
from repro.server.app_manager import Application, ApplicationManager
from repro.server.user_manager import UserInfoManager


class ParticipationStatus(enum.Enum):
    """Task states the Participation Manager tracks (paper Section II-B)."""
    WAITING_FOR_SCHEDULE = "waiting_for_schedule"
    RUNNING = "running"
    FINISHED = "finished"
    ERROR = "error"


class ParticipationManager:
    """Creates and tracks sensing tasks for participating users."""

    def __init__(
        self,
        database: Database,
        users: UserInfoManager,
        apps: ApplicationManager,
        clock: Clock,
        *,
        id_prefix: str = "",
    ) -> None:
        self.database = database
        self.users = users
        self.apps = apps
        self.clock = clock
        # With several servers sharing one database, each needs its own
        # id namespace so task ids never collide. The counter resumes
        # past any persisted task of this prefix, so a restarted server
        # never re-issues an id that survived in the durable store.
        self.id_prefix = id_prefix
        self._task_counter = itertools.count(self._highest_persisted_ordinal() + 1)

    def _highest_persisted_ordinal(self) -> int:
        if not self.database.has_table("tasks"):
            return 0
        prefix = f"{self.id_prefix}task-"
        highest = 0
        for row in self.database.table("tasks").select():
            task_id = row["task_id"]
            if isinstance(task_id, str) and task_id.startswith(prefix):
                try:
                    highest = max(highest, int(task_id[len(prefix) :]))
                except ValueError:
                    continue
        return highest

    # ------------------------------------------------------------------
    # creation
    # ------------------------------------------------------------------
    def verify_location(self, application: Application, location: LatLon) -> bool:
        """The truthfulness check: is the user actually at the place?

        For trails the place is extended, so the tolerance is the
        application's configured radius around its anchor point.
        """
        distance = haversine_m(location, application.location)
        return distance <= application.location_tolerance_m

    def create_task(
        self,
        *,
        app_id: str,
        user_id: str,
        token: str,
        phone_host: str,
        location: LatLon,
        budget: int,
    ) -> str:
        """Validate a participation request and create its task record.

        Raises :class:`ParticipationError` with a reason when the request
        must be rejected (unknown user/app, bad token, wrong location,
        silly budget).
        """
        if budget <= 0:
            raise ParticipationError("sensing budget must be positive")
        if not self.users.verify(user_id, token):
            raise ParticipationError(f"unknown or mismatched user {user_id!r}")
        application = self.apps.get(app_id)
        if application is None:
            raise ParticipationError(f"unknown application {app_id!r}")
        if not self.verify_location(application, location):
            raise ParticipationError(
                f"user {user_id!r} is not at {application.place_name!r}; "
                "participation rejected"
            )
        now = self.clock.now()
        if not application.period_start <= now <= application.period_end:
            raise ParticipationError(
                "participation outside the application's scheduling period"
            )
        task_id = f"{self.id_prefix}task-{next(self._task_counter)}"
        self.database.table("tasks").insert(
            {
                "task_id": task_id,
                "app_id": app_id,
                "user_id": user_id,
                "token": token,
                "phone_host": phone_host,
                "budget": budget,
                "status": ParticipationStatus.WAITING_FOR_SCHEDULE.value,
                "created_at": now,
                "schedule_times": [],
            }
        )
        return task_id

    # ------------------------------------------------------------------
    # tracking
    # ------------------------------------------------------------------
    def get_task(self, task_id: str) -> dict | None:
        """The task row with ``task_id``, or None."""
        return self.database.table("tasks").get(task_id)

    def tasks_for_app(self, app_id: str) -> list[dict]:
        """Every task of ``app_id``."""
        return self.database.table("tasks").select(eq("app_id", app_id))

    def active_tasks_for_app(self, app_id: str) -> list[dict]:
        """Tasks of ``app_id`` currently RUNNING."""
        return self.database.table("tasks").select(
            and_(eq("app_id", app_id), eq("status", ParticipationStatus.RUNNING.value))
        )

    def record_schedule(self, task_id: str, times: list[float]) -> None:
        """Store a task's sensing times and mark it RUNNING."""
        updated = self.database.table("tasks").update(
            eq("task_id", task_id),
            {
                "schedule_times": list(times),
                "status": ParticipationStatus.RUNNING.value,
            },
        )
        if updated == 0:
            raise ParticipationError(f"unknown task {task_id!r}")

    def mark_status(
        self, task_id: str, status: ParticipationStatus, *, error: str = ""
    ) -> None:
        """Transition a task to ``status`` (with an optional error)."""
        updated = self.database.table("tasks").update(
            eq("task_id", task_id), {"status": status.value, "error": error}
        )
        if updated == 0:
            raise ParticipationError(f"unknown task {task_id!r}")

    def handle_location_report(self, token: str, location: LatLon) -> list[str]:
        """Mark tasks finished for a phone that left its target place.

        Returns the task ids transitioned to FINISHED.
        """
        finished = []
        for task in self.database.table("tasks").select(eq("token", token)):
            if task["status"] != ParticipationStatus.RUNNING.value:
                continue
            application = self.apps.get(task["app_id"])
            if application is None:
                continue
            if not self.verify_location(application, location):
                self.mark_status(task["task_id"], ParticipationStatus.FINISHED)
                finished.append(task["task_id"])
        return finished
