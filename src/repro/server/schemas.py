"""Database schemas for the sensing server's PostgreSQL stand-in."""

from __future__ import annotations

from repro.db import Column, ColumnType, Schema

USERS = Schema(
    name="users",
    columns=(
        Column("user_id", ColumnType.TEXT, nullable=False),
        Column("name", ColumnType.TEXT, nullable=False),
        Column("token", ColumnType.TEXT, nullable=False),
        Column("denied_sensors", ColumnType.JSON, default=[]),
        Column("registered_at", ColumnType.REAL, nullable=False),
    ),
    primary_key="user_id",
    unique=("token",),
)

APPLICATIONS = Schema(
    name="applications",
    columns=(
        Column("app_id", ColumnType.TEXT, nullable=False),
        # Which server host registered the application — after a crash,
        # each server rehydrates exactly the applications it owns.
        Column("owner", ColumnType.TEXT, nullable=False, default=""),
        Column("creator", ColumnType.TEXT, nullable=False),
        Column("place_id", ColumnType.TEXT, nullable=False),
        Column("place_name", ColumnType.TEXT, nullable=False),
        Column("category", ColumnType.TEXT, nullable=False),
        Column("latitude", ColumnType.REAL, nullable=False),
        Column("longitude", ColumnType.REAL, nullable=False),
        Column("location_tolerance_m", ColumnType.REAL, nullable=False),
        Column("script", ColumnType.TEXT, nullable=False),
        Column("period_start", ColumnType.REAL, nullable=False),
        Column("period_end", ColumnType.REAL, nullable=False),
        Column("num_instants", ColumnType.INT, nullable=False),
        Column("coverage_sigma_s", ColumnType.REAL, nullable=False),
    ),
    primary_key="app_id",
)

TASKS = Schema(
    name="tasks",
    columns=(
        Column("task_id", ColumnType.TEXT, nullable=False),
        Column("app_id", ColumnType.TEXT, nullable=False),
        Column("user_id", ColumnType.TEXT, nullable=False),
        Column("token", ColumnType.TEXT, nullable=False),
        Column("phone_host", ColumnType.TEXT, nullable=False),
        Column("budget", ColumnType.INT, nullable=False),
        Column("status", ColumnType.TEXT, nullable=False),
        Column("error", ColumnType.TEXT, default=""),
        Column("created_at", ColumnType.REAL, nullable=False),
        Column("schedule_times", ColumnType.JSON, default=[]),
    ),
    primary_key="task_id",
)

RAW_DATA = Schema(
    name="raw_data",
    columns=(
        Column("raw_id", ColumnType.INT, nullable=False, auto_increment=True),
        Column("task_id", ColumnType.TEXT, nullable=False),
        Column("received_at", ColumnType.REAL, nullable=False),
        Column("body", ColumnType.BLOB, nullable=False),
        Column("processed", ColumnType.BOOL, nullable=False, default=False),
    ),
    primary_key="raw_id",
)

READINGS = Schema(
    name="readings",
    columns=(
        Column("reading_id", ColumnType.INT, nullable=False, auto_increment=True),
        Column("task_id", ColumnType.TEXT, nullable=False),
        Column("app_id", ColumnType.TEXT, nullable=False),
        Column("place_id", ColumnType.TEXT, nullable=False),
        Column("sensor", ColumnType.TEXT, nullable=False),
        Column("t", ColumnType.REAL, nullable=False),
        Column("dt", ColumnType.REAL, nullable=False),
        Column("values", ColumnType.JSON, nullable=False),
        Column("source", ColumnType.TEXT, nullable=False),
    ),
    primary_key="reading_id",
)

FEATURE_DATA = Schema(
    name="feature_data",
    columns=(
        Column("feature_id", ColumnType.INT, nullable=False, auto_increment=True),
        Column("place_id", ColumnType.TEXT, nullable=False),
        Column("category", ColumnType.TEXT, nullable=False),
        Column("feature", ColumnType.TEXT, nullable=False),
        Column("value", ColumnType.REAL, nullable=False),
        Column("computed_at", ColumnType.REAL, nullable=False),
    ),
    primary_key="feature_id",
)

# Replies already served, keyed by envelope idempotency key. Durable on
# purpose: a server crash between serving a reply and the phone's retry
# must not let the retry re-run the handler (double task, double
# ingest) after recovery.
IDEMPOTENCY = Schema(
    name="idempotency",
    columns=(
        Column("key", ColumnType.TEXT, nullable=False),
        Column("status", ColumnType.INT, nullable=False),
        Column("body", ColumnType.BLOB, nullable=False, default=b""),
        Column("created_at", ColumnType.REAL, nullable=False),
    ),
    primary_key="key",
)

# One row per category: a monotonically increasing version the Data
# Processor bumps on every feature_data write. The ranking cache keys on
# it, so any write invalidates every cached ranking of the category —
# and because the row is durable, a restarted server can never serve
# results cached against data it no longer has.
RANKING_VERSIONS = Schema(
    name="ranking_versions",
    columns=(
        Column("category", ColumnType.TEXT, nullable=False),
        Column("data_version", ColumnType.INT, nullable=False, default=0),
    ),
    primary_key="category",
)

# Sensor bursts the Data Processor refused to turn into readings
# (NaN/inf, out-of-spec values, malformed shapes) — kept for forensics
# instead of poisoning feature extraction.
QUARANTINE = Schema(
    name="quarantine",
    columns=(
        Column("quarantine_id", ColumnType.INT, nullable=False, auto_increment=True),
        Column("task_id", ColumnType.TEXT, nullable=False),
        Column("app_id", ColumnType.TEXT, nullable=False),
        Column("place_id", ColumnType.TEXT, nullable=False),
        Column("sensor", ColumnType.TEXT, nullable=False),
        Column("reason", ColumnType.TEXT, nullable=False),
        Column("payload", ColumnType.JSON, nullable=False, default={}),
        Column("received_at", ColumnType.REAL, nullable=False),
    ),
    primary_key="quarantine_id",
)

ALL_SCHEMAS = (
    USERS,
    APPLICATIONS,
    TASKS,
    RAW_DATA,
    READINGS,
    FEATURE_DATA,
    IDEMPOTENCY,
    RANKING_VERSIONS,
    QUARANTINE,
)


def create_all_tables(database) -> None:
    """Create every server table plus its hot-path indexes.

    Idempotent: several sensing servers may share one database (the
    paper deploys "one or multiple sensing servers"), and each runs this
    at startup.
    """
    for schema in ALL_SCHEMAS:
        if not database.has_table(schema.name):
            database.create_table(schema)
    database.table("tasks").create_index("app_id")
    database.table("tasks").create_index("token")
    database.table("raw_data").create_index("processed")
    database.table("readings").create_index("place_id")
    database.table("feature_data").create_index("place_id")
    database.table("feature_data").create_index("category")
    database.table("applications").create_index("owner")
    database.table("quarantine").create_index("place_id")
