"""The Data Processor.

"The Data Processor periodically checks if there are any binary sensed
data in the database, and if any, it decodes the data and stores useful
information into corresponding tables … Moreover, it also processes raw
data to generate more meaningful data for various sensing features
(temperature, humidity, roughness of road surface, etc) … The processed
data are called feature data."
"""

from __future__ import annotations

import math
from typing import Any

from repro.common.clock import Clock
from repro.common.errors import CodecError
from repro.core.features.types import GpsFix, ReadingBurst
from repro.db import Database, and_, eq
from repro.net import Envelope
from repro.obs import MetricsRegistry, get_metrics
from repro.server.app_manager import ApplicationManager
from repro.server.ranker_service import bump_data_version

# Physically plausible value ranges per sensor (generous — they exist to
# stop NaN/inf and wildly impossible readings from poisoning feature
# extraction, not to second-guess unusual weather). Units follow the
# sensor providers: temperature °F, humidity %, microphone dB, pressure
# hPa, light lux, accelerometer m/s² per axis.
_SENSOR_LIMITS: dict[str, tuple[float, float]] = {
    "temperature": (-100.0, 300.0),
    "humidity": (-5.0, 105.0),
    "microphone": (-10.0, 200.0),
    "accelerometer": (-1000.0, 1000.0),
    "pressure": (100.0, 1200.0),
    "light": (-50.0, 500000.0),
}


class DataProcessor:
    """Decodes stored binary bodies and computes feature data.

    Bursts that fail validation (non-finite numbers, out-of-spec values,
    malformed shapes) are diverted into the ``quarantine`` table instead
    of becoming readings, and counted in
    ``sor_server_quarantined_readings_total``.
    """

    def __init__(
        self,
        database: Database,
        apps: ApplicationManager,
        clock: Clock,
        *,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.database = database
        self.apps = apps
        self.clock = clock
        self.metrics = metrics if metrics is not None else get_metrics()
        self.blobs_decoded = 0
        self.blobs_rejected = 0
        self.features_skipped = 0
        self.readings_quarantined = 0
        self._m_quarantined = self.metrics.counter(
            "sor_server_quarantined_readings_total",
            "sensor bursts diverted to quarantine instead of readings",
            labels=("sensor", "reason"),
        )

    # ------------------------------------------------------------------
    # step 1: binary blobs → readings rows
    # ------------------------------------------------------------------
    def process_pending(self) -> int:
        """Decode every unprocessed blob of *this server's* applications.

        Several servers may share the database; blobs whose application
        lives on another server are left unprocessed for that server's
        Data Processor. Returns how many blobs decoded successfully.
        """
        raw_table = self.database.table("raw_data")
        tasks_table = self.database.table("tasks")
        pending = raw_table.select(eq("processed", False))
        decoded = 0
        for row in pending:
            task = tasks_table.get(row["task_id"])
            if task is not None and self.apps.get(task["app_id"]) is None:
                continue  # another server's application
            inserted: list[int] = []
            try:
                self._decode_one(row, inserted)
                decoded += 1
                self.blobs_decoded += 1
            except CodecError:
                # Atomicity: a malformed burst halfway through a payload
                # must not leave partial readings behind. Compensating
                # deletes are cheaper than snapshotting the whole table.
                readings = self.database.table("readings")
                for reading_id in inserted:
                    readings.delete(eq("reading_id", reading_id))
                self.blobs_rejected += 1
            raw_table.update(eq("raw_id", row["raw_id"]), {"processed": True})
        return decoded

    def _decode_one(self, row: dict[str, Any], inserted: list[int]) -> None:
        """Decode one blob, appending created reading ids to ``inserted``."""
        envelope = Envelope.from_bytes(row["body"])
        payload = envelope.payload
        task_id = payload.get("task_id")
        bursts = payload.get("bursts")
        if not isinstance(task_id, str) or not isinstance(bursts, list):
            raise CodecError("sensed-data payload has the wrong shape")
        task = self.database.table("tasks").get(task_id)
        if task is None:
            raise CodecError(f"sensed data for unknown task {task_id!r}")
        application = self.apps.get(task["app_id"])
        if application is None:
            raise CodecError(f"task {task_id!r} references unknown app")
        readings = self.database.table("readings")
        for burst in bursts:
            if not isinstance(burst, dict):
                raise CodecError("burst entry is not a dict")
            sensor = str(burst.get("sensor", ""))
            reason = self._burst_problem(sensor, burst)
            if reason is not None:
                self._quarantine(
                    task_id=task_id,
                    app_id=task["app_id"],
                    place_id=application.place_id,
                    sensor=sensor,
                    reason=reason,
                    burst=burst,
                )
                continue
            inserted.append(
                readings.insert(
                    {
                        "task_id": task_id,
                        "app_id": task["app_id"],
                        "place_id": application.place_id,
                        "sensor": sensor,
                        "t": float(burst.get("t", 0.0)),
                        "dt": float(burst.get("dt", 0.0)),
                        "values": burst.get("values", []),
                        "source": task["user_id"],
                    }
                )
            )

    # ------------------------------------------------------------------
    # validation and quarantine
    # ------------------------------------------------------------------
    @staticmethod
    def _is_number(value: Any) -> bool:
        return isinstance(value, (int, float)) and not isinstance(value, bool)

    def _burst_problem(self, sensor: str, burst: dict[str, Any]) -> str | None:
        """Why this burst must not become readings, or None if it's fine."""
        t = burst.get("t", 0.0)
        dt = burst.get("dt", 0.0)
        if not self._is_number(t) or not self._is_number(dt):
            return "bad_shape"
        if not (math.isfinite(t) and math.isfinite(dt)):
            return "not_finite"
        values = burst.get("values", [])
        if not isinstance(values, list):
            return "bad_shape"
        scalars: list[float] = []
        for value in values:
            if isinstance(value, list):
                if not all(self._is_number(item) for item in value):
                    return "bad_shape"
                if sensor == "gps" and len(value) == 3:
                    lat, lon, alt = value
                    if not all(math.isfinite(v) for v in (lat, lon, alt)):
                        return "not_finite"
                    if not (
                        -90.0 <= lat <= 90.0
                        and -180.0 <= lon <= 180.0
                        and -1000.0 <= alt <= 20000.0
                    ):
                        return "out_of_range"
                    continue
                scalars.extend(value)
            elif self._is_number(value):
                scalars.append(value)
            else:
                return "bad_shape"
        for scalar in scalars:
            if not math.isfinite(scalar):
                return "not_finite"
        limits = _SENSOR_LIMITS.get(sensor)
        if limits is not None:
            low, high = limits
            for scalar in scalars:
                if not low <= scalar <= high:
                    return "out_of_range"
        return None

    def _quarantine(
        self,
        *,
        task_id: str,
        app_id: str,
        place_id: str,
        sensor: str,
        reason: str,
        burst: dict[str, Any],
    ) -> None:
        if self.database.has_table("quarantine"):
            self.database.table("quarantine").insert(
                {
                    "task_id": task_id,
                    "app_id": app_id,
                    "place_id": place_id,
                    "sensor": sensor,
                    "reason": reason,
                    "payload": burst,
                    "received_at": self.clock.now(),
                }
            )
        self.readings_quarantined += 1
        self._m_quarantined.inc(sensor=sensor, reason=reason)

    # ------------------------------------------------------------------
    # step 2: readings → feature data
    # ------------------------------------------------------------------
    def bursts_for_place(self, place_id: str) -> dict[str, list[ReadingBurst]]:
        """Reconstruct (t, Δt, d) bursts per sensor from the database."""
        rows = self.database.table("readings").select(eq("place_id", place_id))
        bursts: dict[str, list[ReadingBurst]] = {}
        for row in rows:
            values = tuple(
                self._revive_value(row["sensor"], value) for value in row["values"]
            )
            bursts.setdefault(row["sensor"], []).append(
                ReadingBurst(
                    timestamp=row["t"],
                    duration_s=row["dt"],
                    values=values,
                    source=row["source"],
                )
            )
        return bursts

    @staticmethod
    def _revive_value(sensor: str, value: Any) -> Any:
        """Wire form back to reading objects, dispatched on sensor type.

        GPS triples (lat, lon, alt) revive to :class:`GpsFix`; other
        list values (accelerometer/gyro vectors) revive to tuples.
        """
        if isinstance(value, list):
            if sensor == "gps" and len(value) == 3:
                return GpsFix(
                    latitude=float(value[0]),
                    longitude=float(value[1]),
                    altitude_m=float(value[2]),
                )
            return tuple(float(item) for item in value)
        return float(value)

    def compute_features(self, app_id: str) -> dict[str, float]:
        """Run the application's pipeline and persist feature data.

        Features whose sensor produced no data at all (every participant
        denied it, or it timed out everywhere) are skipped rather than
        failing the whole pass — the ranker works on the features the
        category's places have in common.
        """
        application = self.apps.get(app_id)
        if application is None:
            raise CodecError(f"unknown application {app_id!r}")
        pipeline = self.apps.pipeline_for(app_id)
        bursts = self.bursts_for_place(application.place_id)
        features, missing = pipeline.compute_available(bursts)
        self.features_skipped += len(missing)
        table = self.database.table("feature_data")
        now = self.clock.now()
        if features:
            # Every feature_data write advances the category's durable
            # version, invalidating all cached rankings built on the
            # previous data (see repro.server.ranker_service).
            bump_data_version(self.database, application.category)
        for feature, value in features.items():
            existing = table.select(
                and_(
                    eq("place_id", application.place_id), eq("feature", feature)
                )
            )
            if existing:
                table.update(
                    and_(
                        eq("place_id", application.place_id),
                        eq("feature", feature),
                    ),
                    {"value": value, "computed_at": now},
                )
            else:
                table.insert(
                    {
                        "place_id": application.place_id,
                        "category": application.category,
                        "feature": feature,
                        "value": value,
                        "computed_at": now,
                    }
                )
        return features
