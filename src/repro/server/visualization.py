"""The Visualization module.

"We also implemented a simple Visualization module, which can generate
figures for feature data in the database such that users can view them
easily." Here: terminal bar charts and CSV export — the formats a
headless reproduction can actually show.
"""

from __future__ import annotations

import io
from typing import Mapping

from repro.common.errors import ValidationError


def bar_chart(
    title: str,
    values: Mapping[str, float],
    *,
    width: int = 48,
    unit: str = "",
) -> str:
    """Render a horizontal ASCII bar chart of ``label → value``."""
    if not values:
        raise ValidationError("bar chart needs at least one value")
    if width < 8:
        raise ValidationError("width must be at least 8")
    label_width = max(len(label) for label in values)
    magnitudes = [abs(value) for value in values.values()]
    scale = max(magnitudes) or 1.0
    lines = [title, "=" * len(title)]
    for label, value in values.items():
        bar = "#" * max(1, int(round(abs(value) / scale * width)))
        lines.append(
            f"{label:<{label_width}}  {bar}  {value:.3f}{(' ' + unit) if unit else ''}"
        )
    return "\n".join(lines)


def feature_table(
    features_by_place: Mapping[str, Mapping[str, float]],
    feature_names: list[str],
) -> str:
    """Render the H matrix as an aligned text table (places × features)."""
    if not features_by_place:
        raise ValidationError("need at least one place")
    place_width = max(len(str(place)) for place in features_by_place)
    column_width = max(12, max((len(name) for name in feature_names), default=12))
    header = " " * place_width + "".join(
        f"  {name:>{column_width}}" for name in feature_names
    )
    lines = [header, "-" * len(header)]
    for place, features in features_by_place.items():
        cells = "".join(
            f"  {features.get(name, float('nan')):>{column_width}.3f}"
            for name in feature_names
        )
        lines.append(f"{place:<{place_width}}{cells}")
    return "\n".join(lines)


def sparkline(values, *, width: int | None = None) -> str:
    """Render a sequence of values in [0, ∞) as a unicode sparkline.

    Used to show the per-instant coverage profile of a schedule at a
    glance. ``width`` resamples the series to that many characters.
    """
    levels = "▁▂▃▄▅▆▇█"
    series = [float(value) for value in values]
    if not series:
        raise ValidationError("sparkline needs at least one value")
    if width is not None and width > 0 and len(series) > width:
        bucket = len(series) / width
        series = [
            max(series[int(index * bucket) : max(int((index + 1) * bucket), int(index * bucket) + 1)])
            for index in range(width)
        ]
    top = max(series) or 1.0
    return "".join(
        levels[min(len(levels) - 1, int(value / top * (len(levels) - 1) + 0.5))]
        for value in series
    )


def to_csv(
    features_by_place: Mapping[str, Mapping[str, float]],
    feature_names: list[str],
) -> str:
    """Export feature data as CSV (place, then one column per feature)."""
    buffer = io.StringIO()
    buffer.write("place," + ",".join(feature_names) + "\n")
    for place, features in features_by_place.items():
        row = [str(place)] + [
            repr(features[name]) if name in features else ""
            for name in feature_names
        ]
        buffer.write(",".join(row) + "\n")
    return buffer.getvalue()
