"""Concurrency primitives for the sensing server's request path.

A real SOR deployment serves thousands of phones at once, so the server
cannot process envelopes one at a time. This module supplies the three
pieces the concurrent request path is built from:

* :class:`ConcurrencyConfig` — how many workers run handlers, how many
  requests may wait for a worker, and what ``Retry-After`` hint a
  rejected sender gets;
* :class:`ReadWriteLock` — a writer-preferring readers–writer lock.
  Rank queries (pure reads) share it; every mutating handler takes the
  exclusive side, which keeps the commit path single-writer so
  write-ahead-log append order always matches in-memory apply order;
* :class:`RequestExecutor` — a bounded admission queue feeding a fixed
  pool of daemon worker threads. ``submit`` never blocks: when the
  queue is full it returns ``None`` and the server answers with a typed
  "busy" envelope (HTTP 503) that
  :class:`~repro.net.resilience.ResilientClient` retries with its usual
  jittered backoff. That is the system's backpressure: load the server
  cannot absorb is pushed back to the phones instead of growing an
  unbounded queue.

CPython's GIL means the pool does not parallelise pure computation; it
parallelises the *waiting* — request/response I/O, WAL fsyncs — which
is where a network server's wall-clock time actually goes. See
``docs/CONCURRENCY.md`` for the full threading model.
"""

from __future__ import annotations

import contextlib
import queue
import threading
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.common.errors import ValidationError


@dataclass(frozen=True)
class ConcurrencyConfig:
    """Shape of the server's worker pool and admission queue.

    ``queue_capacity`` bounds only the *waiting* requests; up to
    ``workers`` more are executing, so at most ``workers +
    queue_capacity`` requests are in the building at once.
    ``busy_retry_after_s`` is advisory — it rides in the busy reply so a
    client smarter than blind backoff could honour it.
    """

    workers: int = 8
    queue_capacity: int = 64
    busy_retry_after_s: float = 0.05

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValidationError("workers must be at least 1")
        if self.queue_capacity < 1:
            raise ValidationError("queue_capacity must be at least 1")
        if self.busy_retry_after_s < 0:
            raise ValidationError("busy_retry_after_s must be non-negative")


class ReadWriteLock:
    """A writer-preferring readers–writer lock.

    Any number of readers may hold the lock together; a writer holds it
    alone. A waiting writer blocks *new* readers from entering (writer
    preference), so a steady stream of rank queries can never starve
    the commit path.

    Not reentrant in either direction — the server's request path
    acquires it exactly once per request, so reentrancy would only
    paper over bugs.
    """

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._readers_done = threading.Condition(self._mutex)
        self._writer_done = threading.Condition(self._mutex)
        self._active_readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    @contextlib.contextmanager
    def read(self) -> Iterator[None]:
        """Hold the shared (reader) side for the ``with`` block."""
        with self._mutex:
            while self._writer_active or self._writers_waiting:
                self._writer_done.wait()
            self._active_readers += 1
        try:
            yield
        finally:
            with self._mutex:
                self._active_readers -= 1
                if self._active_readers == 0:
                    self._readers_done.notify_all()

    @contextlib.contextmanager
    def write(self) -> Iterator[None]:
        """Hold the exclusive (writer) side for the ``with`` block."""
        with self._mutex:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._active_readers:
                    self._readers_done.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True
        try:
            yield
        finally:
            with self._mutex:
                self._writer_active = False
                # Wake everyone: the next writer races the readers for
                # the mutex, and writer preference re-asserts itself on
                # the next read() entry check.
                self._readers_done.notify_all()
                self._writer_done.notify_all()


class _PendingResult:
    """The caller's handle on one submitted request."""

    __slots__ = ("_done", "_value", "_error")

    def __init__(self) -> None:
        self._done = threading.Event()
        self._value: Any = None
        self._error: BaseException | None = None

    def _finish(self, value: Any, error: BaseException | None) -> None:
        self._value = value
        self._error = error
        self._done.set()

    def result(self, timeout: float | None = None) -> Any:
        """Block until the worker finished; re-raise what it raised."""
        if not self._done.wait(timeout):
            raise TimeoutError("request did not complete in time")
        if self._error is not None:
            raise self._error
        return self._value


class RequestExecutor:
    """A fixed worker pool behind a bounded, non-blocking admission queue.

    ``submit`` either admits the work (returning a
    :class:`_PendingResult` the caller waits on) or refuses immediately
    (returning ``None``) when ``queue_capacity`` requests are already
    waiting. It never blocks the submitting thread, so backpressure is
    explicit and instant rather than hidden in a growing queue.

    ``submit`` and ``close`` are mutually exclusive via ``_lifecycle``:
    without that, a submitter could pass the ``_closed`` check, lose the
    CPU, and enqueue its work *behind* the shutdown sentinels — the
    workers exit first and the caller blocks forever on ``result()``.
    With the lock, every admitted request precedes every sentinel in
    queue order, so admitted work is always finished before the pool
    exits and late submits fail fast with ``None``.
    """

    def __init__(self, config: ConcurrencyConfig, *, name: str = "sor") -> None:
        self.config = config
        self._queue: "queue.Queue[tuple[Callable[[], Any], _PendingResult] | None]"
        self._queue = queue.Queue(maxsize=config.queue_capacity)
        self._closed = False
        self._lifecycle = threading.Lock()
        self._threads = [
            threading.Thread(
                target=self._work, name=f"{name}-worker-{index}", daemon=True
            )
            for index in range(config.workers)
        ]
        for thread in self._threads:
            thread.start()

    def _work(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:  # shutdown sentinel
                return
            fn, pending = item
            try:
                pending._finish(fn(), None)
            except BaseException as exc:  # noqa: BLE001 - relayed to caller
                pending._finish(None, exc)

    def submit(self, fn: Callable[[], Any]) -> _PendingResult | None:
        """Admit ``fn`` for execution, or return ``None`` when full/closed."""
        pending = _PendingResult()
        with self._lifecycle:
            if self._closed:
                return None
            try:
                self._queue.put_nowait((fn, pending))
            except queue.Full:
                return None
        return pending

    def queue_depth(self) -> int:
        """Requests admitted but not yet picked up by a worker."""
        return self._queue.qsize()

    def close(self) -> None:
        """Stop accepting work and join the workers (drains the queue).

        ``_closed`` flips under ``_lifecycle``, so no submit can slip a
        work item in behind the sentinels; everything admitted before
        the flip sits ahead of them in FIFO order and is finished by a
        worker before it sees its sentinel and exits.
        """
        with self._lifecycle:
            if self._closed:
                return
            self._closed = True
        # Sentinel puts may block on a full queue; that is fine — the
        # workers are still draining it, and no new work can arrive.
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join()
