"""The sensing server (paper Section II-B, Fig. 5).

Components map one-to-one onto the paper's architecture:

* :class:`UserInfoManager` — userID / name / token records,
* :class:`ApplicationManager` — per-place sensing applications: creator,
  location, the LuaLite data-acquisition script, scheduling-period
  configuration,
* :class:`ParticipationManager` — task list, truthfulness check
  (location verification on barcode scan), status tracking, budgets,
* :class:`SensingSchedulerService` — the online greedy coverage
  scheduler, invoked per participation request, distributing schedules
  plus scripts,
* :class:`DataProcessor` — decodes binary blobs from the database into
  readings and turns raw data into feature data,
* :class:`PersonalizableRanker` — ranks places from feature data and a
  user's preference profile,
* :mod:`repro.server.visualization` — text/CSV rendering of feature
  data,
* :class:`SensingServer` — the HTTP endpoint tying everything to a
  :class:`~repro.db.Database` (the PostgreSQL stand-in).

:class:`SORSystem` (in :mod:`repro.server.system`) assembles server,
phones, barcodes and places into a runnable end-to-end deployment.
"""

from repro.server.app_manager import Application, ApplicationManager
from repro.server.concurrency import (
    ConcurrencyConfig,
    ReadWriteLock,
    RequestExecutor,
)
from repro.server.data_processor import DataProcessor
from repro.server.participation import ParticipationManager, ParticipationStatus
from repro.server.ranker_service import PersonalizableRanker, RankingReport
from repro.server.scheduler_service import SensingSchedulerService
from repro.server.server import SensingServer
from repro.server.system import SORSystem
from repro.server.user_manager import UserInfoManager

__all__ = [
    "Application",
    "ApplicationManager",
    "ConcurrencyConfig",
    "DataProcessor",
    "ParticipationManager",
    "ParticipationStatus",
    "PersonalizableRanker",
    "RankingReport",
    "ReadWriteLock",
    "RequestExecutor",
    "SORSystem",
    "SensingSchedulerService",
    "SensingServer",
    "UserInfoManager",
]
