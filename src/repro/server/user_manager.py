"""The User Info Manager: userID, name and device token records."""

from __future__ import annotations

from repro.common.clock import Clock
from repro.common.errors import ParticipationError
from repro.db import Database, eq


class UserInfoManager:
    """Maintains user information in the ``users`` table."""

    def __init__(self, database: Database, clock: Clock) -> None:
        self.database = database
        self.clock = clock

    def register(self, user_id: str, name: str, token: str) -> None:
        """Register a user; duplicate ids or tokens are rejected."""
        self.database.table("users").insert(
            {
                "user_id": user_id,
                "name": name,
                "token": token,
                "denied_sensors": [],
                "registered_at": self.clock.now(),
            }
        )

    def is_registered(self, user_id: str) -> bool:
        """Whether ``user_id`` exists."""
        return self.database.table("users").get(user_id) is not None

    def by_token(self, token: str) -> dict | None:
        """Look a user up by device token (how uploads identify phones)."""
        rows = self.database.table("users").select(eq("token", token))
        return rows[0] if rows else None

    def verify(self, user_id: str, token: str) -> bool:
        """Whether ``token`` belongs to ``user_id``."""
        row = self.database.table("users").get(user_id)
        return row is not None and row["token"] == token

    def update_preferences(self, token: str, denied_sensors: list[str]) -> bool:
        """Record a phone's sensing preferences; False if token unknown."""
        user = self.by_token(token)
        if user is None:
            return False
        self.database.table("users").update(
            eq("user_id", user["user_id"]),
            {"denied_sensors": sorted(denied_sensors)},
        )
        return True

    def denied_sensors(self, user_id: str) -> list[str]:
        """The sensors ``user_id`` has denied (raises if unknown)."""
        row = self.database.table("users").get(user_id)
        if row is None:
            raise ParticipationError(f"unknown user {user_id!r}")
        return list(row["denied_sensors"])
