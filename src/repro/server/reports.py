"""Human-readable explanations of ranking reports.

A recommendation is only trustworthy if it can say *why*: this module
renders a :class:`~repro.server.ranker_service.RankingReport` as text —
the feature matrix, each feature's individual ranking with its weight,
and, per place, which features pulled it up or down relative to its
final rank.
"""

from __future__ import annotations

from repro.server.ranker_service import RankingReport


def explain_report(report: RankingReport, *, place_names: dict | None = None) -> str:
    """Render a full explanation of ``report``.

    ``place_names`` optionally maps place ids to display names.
    """
    names = place_names or {}

    def label(place_id) -> str:
        return str(names.get(place_id, place_id))

    lines = [
        f"Ranking for {report.profile_name} ({report.category})",
        "=" * 50,
    ]
    for rank, place_id in enumerate(report.ranking.items, start=1):
        lines.append(f"{rank}. {label(place_id)}")
    lines.append("")
    lines.append("Individual rankings (feature → weight → order):")
    for feature, weight, ranking in zip(
        report.feature_names, report.weights, report.individual
    ):
        order = " > ".join(label(place_id) for place_id in ranking.items)
        lines.append(f"  {feature:<18} w{weight}  {order}")
    lines.append("")
    lines.append("Why each place landed where it did:")
    for final_rank, place_id in enumerate(report.ranking.items, start=1):
        pulls = []
        for feature, weight, ranking in zip(
            report.feature_names, report.weights, report.individual
        ):
            individual_rank = ranking.position(place_id)
            displacement = individual_rank - final_rank
            if displacement < 0:
                direction = "pulled it up"
            elif displacement > 0:
                direction = "pushed it down"
            else:
                continue
            pulls.append(
                f"{feature} (rank {individual_rank}, w{weight}) {direction}"
            )
        detail = "; ".join(pulls) if pulls else "every feature agrees with this rank"
        lines.append(f"  #{final_rank} {label(place_id)}: {detail}")
    lines.append("")
    lines.append(
        f"aggregate quality: weighted footrule {report.weighted_footrule:.1f}, "
        f"weighted Kemeny {report.weighted_kemeny:.1f} "
        "(lower = closer to every individual ranking)"
    )
    return "\n".join(lines)
