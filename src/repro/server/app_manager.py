"""The Application Manager.

"An application is defined as a procedure of acquiring data from sensors
for a target place … The Application Manager manages all necessary
information related to each application, including its AppID, its
creator (which could be the owner/manager/operator of the corresponding
target place), and the Lua scripts defining the corresponding data
acquisition procedure."

The feature pipeline (how raw readings become feature values) is a
Python object and lives in an in-memory registry next to the persisted
configuration row.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError, ScriptError
from repro.common.geo import LatLon
from repro.core.features import FeaturePipeline
from repro.db import Database
from repro.script import parse


@dataclass(frozen=True)
class Application:
    """One sensing application: a place and how to sense it."""

    app_id: str
    creator: str
    place_id: str
    place_name: str
    category: str
    location: LatLon
    script: str
    pipeline: FeaturePipeline
    period_start: float
    period_end: float
    num_instants: int = 1080
    coverage_sigma_s: float = 60.0
    location_tolerance_m: float = 500.0

    def __post_init__(self) -> None:
        if self.period_end <= self.period_start:
            raise ConfigurationError("application period must be non-empty")
        if self.num_instants <= 0:
            raise ConfigurationError("num_instants must be positive")
        if self.coverage_sigma_s <= 0:
            raise ConfigurationError("coverage_sigma_s must be positive")
        if self.location_tolerance_m <= 0:
            raise ConfigurationError("location_tolerance_m must be positive")


class ApplicationManager:
    """Registers applications and answers lookups."""

    def __init__(self, database: Database) -> None:
        self.database = database
        self._pipelines: dict[str, FeaturePipeline] = {}
        self._apps: dict[str, Application] = {}

    def create(self, application: Application) -> None:
        """Register an application (validates its script parses)."""
        if application.app_id in self._apps:
            raise ConfigurationError(
                f"application {application.app_id!r} already exists"
            )
        try:
            parse(application.script)
        except ScriptError as exc:
            raise ConfigurationError(
                f"application script does not parse: {exc}"
            ) from exc
        self.database.table("applications").insert(
            {
                "app_id": application.app_id,
                "creator": application.creator,
                "place_id": application.place_id,
                "place_name": application.place_name,
                "category": application.category,
                "latitude": application.location.latitude,
                "longitude": application.location.longitude,
                "location_tolerance_m": application.location_tolerance_m,
                "script": application.script,
                "period_start": application.period_start,
                "period_end": application.period_end,
                "num_instants": application.num_instants,
                "coverage_sigma_s": application.coverage_sigma_s,
            }
        )
        self._apps[application.app_id] = application
        self._pipelines[application.app_id] = application.pipeline

    def get(self, app_id: str) -> Application | None:
        """The application with ``app_id``, or None."""
        return self._apps.get(app_id)

    def pipeline_for(self, app_id: str) -> FeaturePipeline:
        """The feature pipeline of ``app_id`` (raises if unknown)."""
        try:
            return self._pipelines[app_id]
        except KeyError:
            raise ConfigurationError(f"unknown application {app_id!r}") from None

    def all_apps(self) -> list[Application]:
        """Every registered application."""
        return list(self._apps.values())

    def apps_in_category(self, category: str) -> list[Application]:
        """Applications whose place belongs to ``category``."""
        return [app for app in self._apps.values() if app.category == category]
