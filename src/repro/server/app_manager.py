"""The Application Manager.

"An application is defined as a procedure of acquiring data from sensors
for a target place … The Application Manager manages all necessary
information related to each application, including its AppID, its
creator (which could be the owner/manager/operator of the corresponding
target place), and the Lua scripts defining the corresponding data
acquisition procedure."

The feature pipeline (how raw readings become feature values) is a
Python object and lives in an in-memory registry next to the persisted
configuration row.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.common.errors import ConfigurationError, ScriptError
from repro.common.geo import LatLon
from repro.core.features import FeaturePipeline
from repro.db import Database, eq
from repro.script import parse


@dataclass(frozen=True)
class Application:
    """One sensing application: a place and how to sense it.

    ``pipeline`` may be ``None`` for an application rehydrated from the
    database after a restart — the pipeline is a Python object that
    cannot be persisted; it is re-attached by the deployment layer via
    :meth:`ApplicationManager.attach_pipeline`.
    """

    app_id: str
    creator: str
    place_id: str
    place_name: str
    category: str
    location: LatLon
    script: str
    pipeline: FeaturePipeline | None
    period_start: float
    period_end: float
    num_instants: int = 1080
    coverage_sigma_s: float = 60.0
    location_tolerance_m: float = 500.0

    def __post_init__(self) -> None:
        if self.period_end <= self.period_start:
            raise ConfigurationError("application period must be non-empty")
        if self.num_instants <= 0:
            raise ConfigurationError("num_instants must be positive")
        if self.coverage_sigma_s <= 0:
            raise ConfigurationError("coverage_sigma_s must be positive")
        if self.location_tolerance_m <= 0:
            raise ConfigurationError("location_tolerance_m must be positive")


class ApplicationManager:
    """Registers applications and answers lookups.

    Configuration rows are durable; the in-memory registry is rebuilt
    from them at construction, scoped to ``owner`` (the server host that
    registered each application) so that servers sharing one database
    never adopt each other's applications after a restart.
    """

    def __init__(self, database: Database, *, owner: str = "") -> None:
        self.database = database
        self.owner = owner
        self._pipelines: dict[str, FeaturePipeline] = {}
        self._apps: dict[str, Application] = {}
        self._hydrate()

    def _hydrate(self) -> None:
        if not self.database.has_table("applications"):
            return
        rows = self.database.table("applications").select(eq("owner", self.owner))
        for row in rows:
            self._apps[row["app_id"]] = Application(
                app_id=row["app_id"],
                creator=row["creator"],
                place_id=row["place_id"],
                place_name=row["place_name"],
                category=row["category"],
                location=LatLon(
                    latitude=row["latitude"], longitude=row["longitude"]
                ),
                script=row["script"],
                pipeline=None,
                period_start=row["period_start"],
                period_end=row["period_end"],
                num_instants=row["num_instants"],
                coverage_sigma_s=row["coverage_sigma_s"],
                location_tolerance_m=row["location_tolerance_m"],
            )

    def attach_pipeline(self, app_id: str, pipeline: FeaturePipeline) -> None:
        """Re-attach the in-memory feature pipeline after rehydration."""
        application = self._apps.get(app_id)
        if application is None:
            raise ConfigurationError(f"unknown application {app_id!r}")
        self._apps[app_id] = dataclasses.replace(application, pipeline=pipeline)
        self._pipelines[app_id] = pipeline

    def create(self, application: Application) -> None:
        """Register an application (validates its script parses)."""
        if application.app_id in self._apps:
            raise ConfigurationError(
                f"application {application.app_id!r} already exists"
            )
        try:
            parse(application.script)
        except ScriptError as exc:
            raise ConfigurationError(
                f"application script does not parse: {exc}"
            ) from exc
        if application.pipeline is None:
            raise ConfigurationError(
                f"application {application.app_id!r} needs a feature pipeline"
            )
        self.database.table("applications").insert(
            {
                "app_id": application.app_id,
                "owner": self.owner,
                "creator": application.creator,
                "place_id": application.place_id,
                "place_name": application.place_name,
                "category": application.category,
                "latitude": application.location.latitude,
                "longitude": application.location.longitude,
                "location_tolerance_m": application.location_tolerance_m,
                "script": application.script,
                "period_start": application.period_start,
                "period_end": application.period_end,
                "num_instants": application.num_instants,
                "coverage_sigma_s": application.coverage_sigma_s,
            }
        )
        self._apps[application.app_id] = application
        self._pipelines[application.app_id] = application.pipeline

    def remove(self, app_id: str) -> Application | None:
        """Drop an application (registry + durable row); returns it.

        Used by shard rebalancing to transfer ownership: the losing
        shard removes the application, the gaining shard re-creates it.
        """
        application = self._apps.pop(app_id, None)
        self._pipelines.pop(app_id, None)
        if application is not None:
            self.database.table("applications").delete(eq("app_id", app_id))
        return application

    def get(self, app_id: str) -> Application | None:
        """The application with ``app_id``, or None."""
        return self._apps.get(app_id)

    def pipeline_for(self, app_id: str) -> FeaturePipeline:
        """The feature pipeline of ``app_id`` (raises if unknown)."""
        try:
            return self._pipelines[app_id]
        except KeyError:
            if app_id in self._apps:
                raise ConfigurationError(
                    f"application {app_id!r} was rehydrated without a "
                    "pipeline; call attach_pipeline() first"
                ) from None
            raise ConfigurationError(f"unknown application {app_id!r}") from None

    def all_apps(self) -> list[Application]:
        """Every registered application."""
        return list(self._apps.values())

    def apps_in_category(self, category: str) -> list[Application]:
        """Applications whose place belongs to ``category``."""
        return [app for app in self._apps.values() if app.category == category]
