"""SVG figure generation (the Visualization module's "figures").

The paper's server includes "a simple Visualization module, which can
generate figures for feature data in the database". These helpers render
self-contained SVG documents — bar charts for feature data (Figs. 6/10)
and line charts for the scheduling sweeps (Fig. 14) — with no plotting
dependency.
"""

from __future__ import annotations

import html
from typing import Mapping, Sequence

from repro.common.errors import ValidationError

_PALETTE = ("#4878a8", "#e1812c", "#3a923a", "#c03d3e", "#9372b2", "#7f7f7f")


def _svg_document(width: int, height: int, body: list[str], title: str) -> str:
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f"<title>{html.escape(title)}</title>",
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="{width / 2:.0f}" y="18" text-anchor="middle" '
        f'font-family="sans-serif" font-size="14" font-weight="bold">'
        f"{html.escape(title)}</text>",
    ]
    parts.extend(body)
    parts.append("</svg>")
    return "\n".join(parts)


def bar_chart_svg(
    title: str,
    values: Mapping[str, float],
    *,
    width: int = 420,
    height: int = 260,
    unit: str = "",
) -> str:
    """A vertical bar chart of ``label → value`` as an SVG string."""
    if not values:
        raise ValidationError("bar chart needs at least one value")
    margin_left, margin_bottom, margin_top = 50, 50, 32
    plot_width = width - margin_left - 16
    plot_height = height - margin_top - margin_bottom
    top = max(max(values.values()), 0.0)
    bottom = min(min(values.values()), 0.0)
    span = (top - bottom) or 1.0
    baseline_y = margin_top + plot_height * (top / span if span else 1.0)
    count = len(values)
    slot = plot_width / count
    bar_width = slot * 0.6
    body = []
    # y axis labels (min, 0-ish, max)
    for value in {bottom, top}:
        y = margin_top + (top - value) / span * plot_height
        body.append(
            f'<text x="{margin_left - 6}" y="{y + 4:.1f}" text-anchor="end" '
            f'font-family="sans-serif" font-size="10">{value:.3g}</text>'
        )
        body.append(
            f'<line x1="{margin_left}" y1="{y:.1f}" x2="{width - 16}" '
            f'y2="{y:.1f}" stroke="#dddddd" stroke-width="1"/>'
        )
    for index, (label, value) in enumerate(values.items()):
        x = margin_left + index * slot + (slot - bar_width) / 2
        value_y = margin_top + (top - value) / span * plot_height
        bar_top = min(value_y, baseline_y)
        bar_height = max(abs(value_y - baseline_y), 0.5)
        color = _PALETTE[index % len(_PALETTE)]
        body.append(
            f'<rect x="{x:.1f}" y="{bar_top:.1f}" width="{bar_width:.1f}" '
            f'height="{bar_height:.1f}" fill="{color}"/>'
        )
        body.append(
            f'<text x="{x + bar_width / 2:.1f}" y="{bar_top - 4:.1f}" '
            f'text-anchor="middle" font-family="sans-serif" font-size="10">'
            f"{value:.3g}{html.escape(unit)}</text>"
        )
        body.append(
            f'<text x="{x + bar_width / 2:.1f}" y="{height - margin_bottom + 14}" '
            f'text-anchor="middle" font-family="sans-serif" font-size="10">'
            f"{html.escape(label)}</text>"
        )
    return _svg_document(width, height, body, title)


def line_chart_svg(
    title: str,
    series: Mapping[str, Sequence[tuple[float, float]]],
    *,
    width: int = 480,
    height: int = 300,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """A multi-series line chart; each series is [(x, y), …]."""
    if not series or all(len(points) == 0 for points in series.values()):
        raise ValidationError("line chart needs at least one point")
    margin_left, margin_bottom, margin_top, margin_right = 56, 54, 32, 16
    plot_width = width - margin_left - margin_right
    plot_height = height - margin_top - margin_bottom
    xs = [x for points in series.values() for x, _ in points]
    ys = [y for points in series.values() for _, y in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(min(ys), 0.0), max(max(ys), 1e-12)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    def to_px(x: float, y: float) -> tuple[float, float]:
        px = margin_left + (x - x_low) / x_span * plot_width
        py = margin_top + (y_high - y) / y_span * plot_height
        return px, py

    body = [
        f'<line x1="{margin_left}" y1="{margin_top}" x2="{margin_left}" '
        f'y2="{height - margin_bottom}" stroke="black"/>',
        f'<line x1="{margin_left}" y1="{height - margin_bottom}" '
        f'x2="{width - margin_right}" y2="{height - margin_bottom}" stroke="black"/>',
    ]
    for fraction in (0.0, 0.25, 0.5, 0.75, 1.0):
        value = y_low + fraction * y_span
        _, y = to_px(x_low, value)
        body.append(
            f'<text x="{margin_left - 6}" y="{y + 4:.1f}" text-anchor="end" '
            f'font-family="sans-serif" font-size="10">{value:.2f}</text>'
        )
        body.append(
            f'<line x1="{margin_left}" y1="{y:.1f}" '
            f'x2="{width - margin_right}" y2="{y:.1f}" '
            f'stroke="#eeeeee" stroke-width="1"/>'
        )
    for index, (name, points) in enumerate(series.items()):
        color = _PALETTE[index % len(_PALETTE)]
        path = " ".join(
            f"{'M' if i == 0 else 'L'} {to_px(x, y)[0]:.1f} {to_px(x, y)[1]:.1f}"
            for i, (x, y) in enumerate(sorted(points))
        )
        body.append(
            f'<path d="{path}" fill="none" stroke="{color}" stroke-width="2"/>'
        )
        for x, y in points:
            px, py = to_px(x, y)
            body.append(f'<circle cx="{px:.1f}" cy="{py:.1f}" r="3" fill="{color}"/>')
        legend_y = margin_top + 14 * index
        body.append(
            f'<rect x="{width - margin_right - 120}" y="{legend_y}" width="10" '
            f'height="10" fill="{color}"/>'
        )
        body.append(
            f'<text x="{width - margin_right - 106}" y="{legend_y + 9}" '
            f'font-family="sans-serif" font-size="11">{html.escape(name)}</text>'
        )
        # x tick labels from the first series only (shared axes).
        if index == 0:
            for x, _ in points:
                px, _ = to_px(x, 0)
                body.append(
                    f'<text x="{px:.1f}" y="{height - margin_bottom + 14}" '
                    f'text-anchor="middle" font-family="sans-serif" '
                    f'font-size="9">{x:g}</text>'
                )
    if x_label:
        body.append(
            f'<text x="{margin_left + plot_width / 2:.0f}" y="{height - 8}" '
            f'text-anchor="middle" font-family="sans-serif" font-size="11">'
            f"{html.escape(x_label)}</text>"
        )
    if y_label:
        body.append(
            f'<text x="14" y="{margin_top + plot_height / 2:.0f}" '
            f'text-anchor="middle" font-family="sans-serif" font-size="11" '
            f'transform="rotate(-90 14 {margin_top + plot_height / 2:.0f})">'
            f"{html.escape(y_label)}</text>"
        )
    return _svg_document(width, height, body, title)
