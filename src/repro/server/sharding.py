"""Sharded sensing-server fleet: primaries, WAL-fed read-replicas, failover.

The SOR paper deploys "one or multiple sensing servers"; this module
makes *multiple* real. A :class:`ShardCluster` runs N shards, each one:

* a **primary** — an ordinary durable
  :class:`~repro.server.server.SensingServer` whose WAL directory
  doubles as its replication log;
* zero or more **read-replicas** (:class:`ShardReplica`) — each with
  its *own* :class:`~repro.db.database.Database` rebuilt purely from
  shipped WAL records (the primary's log starts with the ``create_table``
  DDL, so a replica bootstraps from nothing). Replicas serve keyless
  ``RANK_QUERY`` traffic from their own
  :class:`~repro.server.ranker_service.RankingCache`.

Reads are **bounded-stale**: a replica lags its primary by whatever is
not yet shipped, but the per-category ``data_version`` rides the same
log, so every RANKING reply carries the exact version it was computed
against — staleness is observable, never silent.

Failover: killing a primary (`kill -9` semantics — handles closed, no
flush) loses nothing that was acked, because acked means "commit record
on disk". :meth:`ShardCluster.promote` has the surviving replica do one
final catch-up read of the dead primary's directory (file-level
shipping needs no cooperating process), refuses if the replica is still
behind the log after that, then **re-attaches durability**
(:func:`~repro.db.wal.attach_durability`: the replica's state becomes a
fresh checkpoint and the next WAL generation opens in the same
directory) before wrapping the database in a fresh ``SensingServer``
under the *same host name* — task-id prefixes, application ownership
rows and idempotent replies all line up, and the promoted primary
commits durably, so it survives being killed again. Promotion then
**re-seeds** the shard (:meth:`ShardCluster.reseed`): a replacement
replica bootstraps from the promotion checkpoint and rejoins the
router's replica set, restoring read fan-out and the next failover's
candidate pool.

Rebalancing: adding a shard re-rings the category space;
:meth:`ShardCluster.rebalance` moves each reassigned category's
applications, ``feature_data`` rows and ``ranking_versions`` row to the
new owner (version numbers are preserved so replica caches can never
serve a stale ranking as fresh). In-flight tasks stay pinned to the old
shard via task-id prefix routing until they complete.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.common.clock import Clock
from repro.common.errors import (
    CodecError,
    ConfigurationError,
    DatabaseError,
    RankingError,
    SimulatedCrashError,
)
from repro.db import Database, DurabilityConfig, eq
from repro.db.replication import (
    ReplicationCursor,
    WalShipper,
    apply_records,
    bootstrap_database,
)
from repro.db.wal import attach_durability
from repro.net.http import HttpRequest, HttpResponse
from repro.net.messages import Envelope, MessageType
from repro.net.resilience import ResilientClient
from repro.net.router import RoutingTable, ShardInfo, ShardRouter
from repro.net.transport import Network
from repro.obs import MetricsRegistry, Tracer, get_metrics, get_tracer
from repro.server.app_manager import Application
from repro.server.concurrency import (
    ConcurrencyConfig,
    ReadWriteLock,
    RequestExecutor,
)
from repro.server.ranker_service import (
    PersonalizableRanker,
    RankingCache,
    profile_from_dict,
)
from repro.server.server import SensingServer


class ShardReplica:
    """A read-replica: follows one primary's WAL, serves rank queries.

    The replica owns an independent database built exclusively from
    shipped records, so it shares no mutable state with its primary —
    killing the primary cannot corrupt a replica mid-read. ``sync()``
    (the apply loop) takes the exclusive side of a readers–writer lock;
    rank queries take the shared side, so queries never observe a
    half-applied batch.
    """

    def __init__(
        self,
        host: str,
        network: Network,
        directory: str | Path,
        clock: Clock,
        *,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        concurrency: ConcurrencyConfig | None = None,
        io_delay_s: float = 0.0,
        ranking_cache_capacity: int = 256,
        bootstrap: bool = False,
    ) -> None:
        self.host = host
        self.network = network
        self.directory = Path(directory)
        self.clock = clock
        self.metrics = metrics if metrics is not None else get_metrics()
        self.tracer = tracer if tracer is not None else get_tracer()
        if io_delay_s < 0:
            raise ConfigurationError("io_delay_s must be non-negative")
        self.io_delay_s = io_delay_s
        self._shipper = WalShipper(self.directory)
        self._cursor = ReplicationCursor()
        self._rwlock = ReadWriteLock()
        # Serializes whole sync() passes: the background pump and a
        # promotion's final catch-up must never ship from the same
        # cursor concurrently (double-apply).
        self._sync_mutex = threading.Lock()
        self._closed = False
        self._cache_capacity = ranking_cache_capacity
        self.database = Database(name=host, metrics=self.metrics)
        self._build_ranker()
        self._executor = (
            RequestExecutor(concurrency, name=host)
            if concurrency is not None
            else None
        )
        self._last_sync = clock.now()
        self._m_requests = self.metrics.counter(
            "sor_shard_replica_requests_total",
            "requests served by read-replicas, by replica and status",
            labels=("replica", "status"),
        )
        self._m_applied = self.metrics.counter(
            "sor_shard_replica_applied_records_total",
            "WAL records applied by replicas",
            labels=("replica",),
        )
        self._m_bootstraps = self.metrics.counter(
            "sor_shard_replica_bootstraps_total",
            "replica databases rebuilt from a shipped checkpoint",
            labels=("replica",),
        )
        self._m_lag_records = self.metrics.gauge(
            "sor_shard_replica_lag_records",
            "committed primary records not yet applied, sampled at sync",
            labels=("replica",),
        )
        self._m_lag_seconds = self.metrics.gauge(
            "sor_shard_replica_lag_seconds",
            "clock seconds since the replica last synced its primary",
            labels=("replica",),
        )
        # A re-seeded replica joins an established primary: start from
        # the newest checkpoint instead of replaying (possibly pruned)
        # history from segment 1.
        self.bootstrap_records = 0
        if bootstrap:
            snapshot, cursor = self._shipper.bootstrap()
            if snapshot is not None:
                self.database = bootstrap_database(snapshot, metrics=self.metrics)
                self._build_ranker()
                self._cursor = cursor
                self._m_bootstraps.inc(replica=self.host)
        # Catch up before taking traffic: the primary's WAL already
        # holds the schema DDL, so a freshly-built replica must never
        # serve a query against an empty, table-less database.
        self.bootstrap_records = self.sync()
        network.register(host, self)

    def _build_ranker(self) -> None:
        self.ranking_cache = RankingCache(
            capacity=self._cache_capacity, metrics=self.metrics
        )
        self.ranker = PersonalizableRanker(
            self.database,
            cache=self.ranking_cache,
            metrics=self.metrics,
            tracer=self.tracer,
        )

    # -- replication ---------------------------------------------------
    def pending(self) -> int:
        """Committed primary records this replica has not yet applied."""
        if self._closed:
            return 0
        return self._shipper.pending(self._cursor)

    def sync(self) -> int:
        """Apply everything the primary has committed; returns the count.

        File-level: works identically whether the primary is alive or
        already killed, which is what promotion's final catch-up needs.
        No-op once closed, so a background pump tick can never mutate a
        database that promotion has already snapshotted.
        """
        with self._sync_mutex:
            if self._closed:
                return 0
            return self._sync_locked()

    def _sync_locked(self) -> int:
        batch = self._shipper.ship(self._cursor)
        self._m_lag_records.set(len(batch.records), replica=self.host)
        with self._rwlock.write():
            if batch.snapshot is not None:
                self.database = bootstrap_database(
                    batch.snapshot, metrics=self.metrics
                )
                self._build_ranker()
                self._m_bootstraps.inc(replica=self.host)
            if batch.records:
                apply_records(self.database, batch.records, source=self.host)
            self._cursor = batch.cursor
        now = self.clock.now()
        self._m_lag_seconds.set(max(0.0, now - self._last_sync), replica=self.host)
        self._last_sync = now
        if batch.records:
            self._m_applied.inc(len(batch.records), replica=self.host)
        self._m_lag_records.set(0, replica=self.host)
        return len(batch.records)

    def lag_seconds(self) -> float:
        """Clock seconds since the last successful sync."""
        return max(0.0, self.clock.now() - self._last_sync)

    # -- endpoint ------------------------------------------------------
    def handle_request(self, request: HttpRequest) -> HttpResponse:
        """Serve one request (RANK_QUERY only; replicas are read-only)."""
        if self._executor is None:
            return self._handle_one(request)
        pending = self._executor.submit(lambda: self._handle_one(request))
        if pending is None:
            self._m_requests.inc(replica=self.host, status="503")
            return HttpResponse(status=503, headers={"Retry-After": "0.05"})
        return pending.result()

    def _handle_one(self, request: HttpRequest) -> HttpResponse:
        if self.io_delay_s:
            time.sleep(self.io_delay_s)
        try:
            envelope = Envelope.from_bytes(request.body)
        except CodecError:
            self._m_requests.inc(replica=self.host, status="400")
            return HttpResponse(status=400)
        if envelope.message_type is not MessageType.RANK_QUERY:
            self._m_requests.inc(replica=self.host, status="405")
            return HttpResponse(status=405)
        try:
            with self._rwlock.read():
                reply = self._rank(envelope)
        except DatabaseError:
            # Not caught up enough to serve (e.g. the category's tables
            # have not been shipped yet): let the router fail over.
            self._m_requests.inc(replica=self.host, status="503")
            return HttpResponse(status=503, headers={"Retry-After": "0.05"})
        self._m_requests.inc(replica=self.host, status="200")
        return HttpResponse(status=200, body=reply.to_bytes())

    def _rank(self, envelope: Envelope) -> Envelope:
        payload = envelope.payload
        category = payload.get("category")
        raw_profiles = payload.get("profiles")
        if not isinstance(category, str) or not isinstance(raw_profiles, list):
            return envelope.reply(
                MessageType.ERROR, {"reason": "malformed rank query"}
            )
        try:
            profiles = [profile_from_dict(entry) for entry in raw_profiles]
            if not profiles:
                raise RankingError("rank query needs at least one profile")
            reports = self.ranker.rank_many(category, profiles)
        except RankingError as exc:
            return envelope.reply(MessageType.ERROR, {"reason": str(exc)})
        return envelope.reply(
            MessageType.RANKING,
            {
                "category": category,
                "data_version": self.ranker.data_version(category),
                "rankings": [
                    {
                        "profile": name,
                        "places": list(report.ranking.items),
                        "weighted_footrule": report.weighted_footrule,
                        "weighted_kemeny": report.weighted_kemeny,
                    }
                    for name, report in reports.items()
                ],
            },
        )

    def close(self) -> None:
        """Unhook from the network and stop the worker pool (idempotent).

        Waits for any in-flight ``sync()`` pass to finish, so after
        ``close()`` returns the database is frozen — safe to hand to a
        promotion's :func:`~repro.db.wal.attach_durability` snapshot.
        """
        with self._sync_mutex:
            self._closed = True
        if self.network.is_registered(self.host):
            self.network.unregister(self.host)
        if self._executor is not None:
            self._executor.close()


@dataclass
class Shard:
    """One shard's runtime pieces."""

    shard_id: str
    directory: Path
    primary: SensingServer
    replicas: list[ShardReplica] = field(default_factory=list)
    # Monotonic replica-host allocator: a re-seeded replacement must
    # never reuse a dead replica's host name (stale circuit-breaker
    # state and old idempotent replies key on the host).
    next_replica_index: int = 0

    @property
    def host(self) -> str:
        return self.shard_id


class ShardCluster:
    """N sharded sensing servers behind one consistent-hash router.

    The cluster is the control plane: it builds shards, keeps the
    router's :class:`~repro.net.router.RoutingTable` in sync with
    membership, pumps replication, and runs failover promotion and
    rebalancing. The data plane is unchanged — phones talk to
    ``cluster.router_host`` with the ordinary envelope protocol.
    """

    ROUTER_HOST = "shard-router"

    def __init__(
        self,
        network: Network,
        clock: Clock,
        base_dir: str | Path,
        *,
        num_shards: int = 2,
        replicas_per_shard: int = 1,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        concurrency: ConcurrencyConfig | None = None,
        replica_concurrency: ConcurrencyConfig | None = None,
        io_delay_s: float = 0.0,
        replica_io_delay_s: float = 0.0,
        fsync: bool = False,
        router_client: ResilientClient | None = None,
        vnodes: int = 64,
    ) -> None:
        if num_shards < 1:
            raise ConfigurationError("num_shards must be at least 1")
        if replicas_per_shard < 0:
            raise ConfigurationError("replicas_per_shard must be >= 0")
        self.network = network
        self.clock = clock
        self.base_dir = Path(base_dir)
        self.metrics = metrics if metrics is not None else get_metrics()
        self.tracer = tracer if tracer is not None else get_tracer()
        self.concurrency = concurrency
        self.replica_concurrency = replica_concurrency
        self.io_delay_s = io_delay_s
        self.replica_io_delay_s = replica_io_delay_s
        self.fsync = fsync
        self.replicas_per_shard = replicas_per_shard
        self.shards: dict[str, Shard] = {}
        self._pipelines: dict[str, Application] = {}
        self._users: list[tuple[str, str, str]] = []
        self._repl_thread: threading.Thread | None = None
        self._repl_stop = threading.Event()
        self._lock = threading.Lock()
        self._m_failovers = self.metrics.counter(
            "sor_shard_failovers_total",
            "replica promotions after a primary death",
        )
        self._m_reseeds = self.metrics.counter(
            "sor_shard_reseeds_total",
            "replacement replicas spawned after promotions, by shard",
            labels=("shard",),
        )
        self._m_reseed_lag = self.metrics.gauge(
            "sor_shard_reseed_lag_records",
            "records the latest re-seeded replica applied past its "
            "bootstrap checkpoint before taking traffic",
            labels=("shard",),
        )
        self._m_reseed_seconds = self.metrics.histogram(
            "sor_shard_reseed_seconds",
            "wall time to build, bootstrap and register a replacement replica",
            buckets=(0.001, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0),
        )
        self._m_catchup = self.metrics.counter(
            "sor_shard_promote_catchup_records_total",
            "records applied by promotion's final file-level catch-up, by shard",
            labels=("shard",),
        )
        self._m_moves = self.metrics.counter(
            "sor_shard_rebalance_moves_total",
            "ownership moves during rebalancing, by kind",
            labels=("kind",),
        )
        self.table = RoutingTable(vnodes=vnodes)
        for index in range(num_shards):
            self._build_shard(f"shard-{index}")
        self.router = ShardRouter(
            self.ROUTER_HOST,
            network,
            self.table,
            client=router_client,
            metrics=self.metrics,
            tracer=self.tracer,
        )

    @property
    def router_host(self) -> str:
        return self.ROUTER_HOST

    # -- membership ----------------------------------------------------
    def _build_shard(self, shard_id: str) -> Shard:
        directory = self.base_dir / shard_id
        primary = SensingServer(
            shard_id,
            self.network,
            self.clock,
            metrics=self.metrics,
            tracer=self.tracer,
            durability=DurabilityConfig(directory=directory, fsync=self.fsync),
            concurrency=self.concurrency,
            io_delay_s=self.io_delay_s,
        )
        shard = Shard(shard_id=shard_id, directory=directory, primary=primary)
        for _ in range(self.replicas_per_shard):
            shard.replicas.append(self._build_replica(shard))
        self.shards[shard_id] = shard
        self.table.add_shard(
            ShardInfo(
                shard_id=shard_id,
                primary=shard_id,
                replicas=tuple(replica.host for replica in shard.replicas),
            )
        )
        return shard

    def _build_replica(self, shard: Shard, *, bootstrap: bool = False) -> ShardReplica:
        index = shard.next_replica_index
        shard.next_replica_index += 1
        return ShardReplica(
            f"{shard.shard_id}-r{index}",
            self.network,
            shard.directory,
            self.clock,
            metrics=self.metrics,
            tracer=self.tracer,
            concurrency=self.replica_concurrency,
            io_delay_s=self.replica_io_delay_s,
            bootstrap=bootstrap,
        )

    def add_shard(self) -> Shard:
        """Grow the fleet by one shard and rebalance category ownership."""
        with self._lock:
            shard_id = f"shard-{len(self.shards)}"
            shard = self._build_shard(shard_id)
            for user_id, name, token in self._users:
                shard.primary.register_user(user_id, name, token)
        self.rebalance()
        return shard

    # -- data-plane administration --------------------------------------
    def register_user(self, user_id: str, name: str, token: str) -> None:
        """Register a user on every shard (user state is replicated)."""
        with self._lock:
            self._users.append((user_id, name, token))
            for shard in self.shards.values():
                shard.primary.register_user(user_id, name, token)

    def create_application(
        self, application: Application, *, pin_to: str | None = None
    ) -> SensingServer:
        """Place an application on the shard owning its category.

        ``pin_to`` pins the category to an explicit shard (directory
        placement) instead of the hash ring — the way an operator
        pre-splits a workload whose category population is known.
        """
        if pin_to is not None:
            self.table.pin_category(application.category, pin_to)
        owner = self.table.category_owner(application.category)
        shard = self.shards[owner]
        shard.primary.create_application(application)
        self.table.learn_app(application.app_id, application.category)
        self._pipelines[application.app_id] = application
        return shard.primary

    def primary_for_category(self, category: str) -> SensingServer:
        """The primary currently owning ``category``."""
        return self.shards[self.table.category_owner(category)].primary

    # -- replication ---------------------------------------------------
    def sync_replicas(self) -> int:
        """One replication pump over every live replica; total applied.

        Iterates over list copies: promotion and re-seeding mutate the
        replica lists from other threads while the pump runs, and a
        just-closed replica's ``sync()`` is a safe no-op.
        """
        applied = 0
        for shard in list(self.shards.values()):
            for replica in list(shard.replicas):
                applied += replica.sync()
        return applied

    def replica_lag_records(self) -> int:
        """Total committed-but-unapplied records across the fleet."""
        return sum(
            replica.pending()
            for shard in list(self.shards.values())
            for replica in list(shard.replicas)
        )

    def start_replication(self, interval_s: float = 0.02) -> None:
        """Pump replication on a background thread until stopped."""
        if self._repl_thread is not None:
            return
        self._repl_stop.clear()

        def pump() -> None:
            while not self._repl_stop.wait(interval_s):
                try:
                    self.sync_replicas()
                except Exception:  # noqa: BLE001 - a dying primary mid-kill
                    continue  # is expected during chaos; next tick retries

        self._repl_thread = threading.Thread(
            target=pump, name="wal-shipping", daemon=True
        )
        self._repl_thread.start()

    def stop_replication(self) -> None:
        """Stop the background replication pump (idempotent)."""
        if self._repl_thread is None:
            return
        self._repl_stop.set()
        self._repl_thread.join()
        self._repl_thread = None

    # -- failover ------------------------------------------------------
    def kill_primary(self, shard_id: str, *, wreck: bool = False) -> None:
        """Hard-kill a shard's primary (``kill -9`` semantics).

        The server is unregistered first and then drained
        (``server.close()`` joins the worker pool), so every request
        that was acked has its commit record on disk before the
        durability handles close — exactly the kill -9 contract.

        ``wreck=True`` leaves the nastiest crash-consistent directory a
        real kill can: the process dies *inside checkpoint compaction*
        (via the armed ``checkpoint.pre_replace`` crash hook — a fresh
        segment is open, the checkpoint temp file never got renamed)
        and the new live segment ends in an uncommitted transaction
        plus a torn frame. Nothing of that wreckage is acked; recovery,
        replication and a later re-attach must all discard it.
        """
        shard = self.shards[shard_id]
        server = shard.primary
        manager = server.database.durability
        if self.network.is_registered(server.host):
            self.network.unregister(server.host)
        server.close()
        if manager is None:
            return
        if wreck and not manager.closed:
            manager.arm("checkpoint.pre_replace")
            try:
                manager.checkpoint()
            except SimulatedCrashError:
                pass
            manager.simulate_partial_transaction(
                [{"op": "insert", "table": "raw_data", "row": {"doomed": True}}]
            )
            manager.simulate_torn_append(
                {"op": "insert", "table": "tasks", "row": {"doomed": True}},
                keep=0.4,
            )
        manager.close()

    def promote(
        self,
        shard_id: str,
        replica_host: str | None = None,
        *,
        reseed: bool = True,
    ) -> SensingServer:
        """Promote a replica to durable primary after the primary's death.

        The replica does one final catch-up read from the dead
        primary's surviving directory (acked == committed to WAL, so
        nothing acked can be missing) and promotion *refuses* if the
        replica is still behind the log after it — promoting a laggy
        replica would silently shadow acked data. Durability is then
        re-attached (:func:`~repro.db.wal.attach_durability`): the
        replica's state becomes a fresh checkpoint in the same
        directory and the next WAL generation opens, so the promoted
        ``SensingServer`` — registered under the *same host name*, with
        task-id prefixes, ownership rows and idempotent replies all
        still valid — commits durably and survives being killed again.
        Unless ``reseed=False``, a replacement replica is spawned from
        that checkpoint before returning.
        """
        shard = self.shards[shard_id]
        if self.network.is_registered(shard.primary.host):
            raise ConfigurationError(
                f"primary {shard.primary.host!r} is still registered; "
                "kill it before promoting"
            )
        if not shard.replicas:
            raise ConfigurationError(f"shard {shard_id!r} has no replica to promote")
        replica = None
        if replica_host is not None:
            for candidate in shard.replicas:
                if candidate.host == replica_host:
                    replica = candidate
                    break
            if replica is None:
                raise ConfigurationError(f"unknown replica {replica_host!r}")
        else:
            replica = shard.replicas[0]
        caught_up = replica.sync()  # final catch-up from the surviving log
        behind = replica.pending()
        if behind:
            raise ConfigurationError(
                f"replica {replica.host!r} is still {behind} committed "
                "records behind its primary's log after the final "
                "catch-up; refusing to promote a laggy replica"
            )
        self._m_catchup.inc(caught_up, shard=shard_id)
        replica.close()  # freezes the database: no pump tick can touch it now
        shard.replicas.remove(replica)
        self.table.set_replicas(
            shard_id, tuple(item.host for item in shard.replicas)
        )
        attach_durability(
            replica.database,
            shard.directory,
            fsync=self.fsync,
            metrics=self.metrics,
        )
        promoted = SensingServer(
            shard_id,
            self.network,
            self.clock,
            metrics=self.metrics,
            tracer=self.tracer,
            database=replica.database,
            concurrency=self.concurrency,
            io_delay_s=self.io_delay_s,
        )
        for application in self._pipelines.values():
            if promoted.apps.get(application.app_id) is not None:
                promoted.apps.attach_pipeline(
                    application.app_id, application.pipeline
                )
        shard.primary = promoted
        self._m_failovers.inc()
        if reseed:
            self.reseed(shard_id)
        return promoted

    def reseed(self, shard_id: str) -> ShardReplica:
        """Spawn a replacement replica from the newest checkpoint.

        The replica bootstraps via
        :meth:`~repro.db.replication.WalShipper.bootstrap` — load the
        promotion checkpoint, then ship only the records past it — and
        registers with the network before this method re-points the
        router's replica set, so the first routed read already finds a
        caught-up endpoint. Safe to run while traffic is flowing; the
        background pump picks the newcomer up on its next tick.
        """
        shard = self.shards[shard_id]
        started = time.perf_counter()
        replica = self._build_replica(shard, bootstrap=True)
        shard.replicas.append(replica)
        self.table.set_replicas(
            shard_id, tuple(item.host for item in shard.replicas)
        )
        self._m_reseeds.inc(shard=shard_id)
        self._m_reseed_lag.set(replica.bootstrap_records, shard=shard_id)
        self._m_reseed_seconds.observe(time.perf_counter() - started)
        return replica

    # -- rebalancing ---------------------------------------------------
    def rebalance(self) -> int:
        """Move categories to their ring owners; returns the move count.

        For every application whose category now hashes to a different
        shard: the application row (and in-memory registration), the
        category's ``feature_data`` rows and its ``ranking_versions``
        row move to the new owner. Version numbers are preserved so a
        replica cache entry keyed on an old version can never be served
        as current. In-flight tasks stay pinned to the old shard via
        task-id prefix routing until they finish.
        """
        moves = 0
        with self._lock:
            for shard in list(self.shards.values()):
                source = shard.primary
                for application in list(source.apps.all_apps()):
                    owner_id = self.table.category_owner(application.category)
                    if owner_id == shard.shard_id:
                        continue
                    target = self.shards[owner_id].primary
                    self._move_application(source, target, application)
                    moves += 1
        return moves

    def _move_application(
        self,
        source: SensingServer,
        target: SensingServer,
        application: Application,
    ) -> None:
        registered = self._pipelines.get(application.app_id, application)
        removed = source.apps.remove(application.app_id)
        if removed is None:
            return
        self._m_moves.inc(kind="application")
        with target.database.transaction():
            target.create_application(registered)
            feature_table = source.database.table("feature_data")
            rows = feature_table.select(eq("category", application.category))
            target_features = target.database.table("feature_data")
            for row in rows:
                moved = dict(row)
                moved.pop("feature_id", None)
                target_features.insert(moved)
                self._m_moves.inc(kind="feature_row")
            versions = source.database.table("ranking_versions")
            version_row = versions.get(application.category)
            if version_row is not None:
                target_versions = target.database.table("ranking_versions")
                existing = target_versions.get(application.category)
                version = int(version_row["data_version"])
                if existing is None:
                    target_versions.insert(
                        {
                            "category": application.category,
                            "data_version": version,
                        }
                    )
                else:
                    target_versions.update(
                        eq("category", application.category),
                        {
                            "data_version": max(
                                version, int(existing["data_version"])
                            )
                        },
                    )
                self._m_moves.inc(kind="version")
        with source.database.transaction():
            feature_table = source.database.table("feature_data")
            feature_table.delete(eq("category", application.category))

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Tear the whole fleet down (idempotent)."""
        self.stop_replication()
        if self.network.is_registered(self.ROUTER_HOST):
            self.network.unregister(self.ROUTER_HOST)
        for shard in self.shards.values():
            for replica in shard.replicas:
                replica.close()
            server = shard.primary
            if self.network.is_registered(server.host):
                self.network.unregister(server.host)
            server.close()
            if server.database.durability is not None:
                server.database.durability.close()
