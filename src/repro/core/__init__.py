"""The paper's algorithmic contributions.

* :mod:`repro.core.scheduling` — the online sensing-coverage scheduling
  algorithm (Section III),
* :mod:`repro.core.ranking` — the personalizable ranking algorithm
  (Section IV),
* :mod:`repro.core.features` — feature extraction from raw sensor data
  (Section IV-A and the field-test feature definitions of Section V).
"""
