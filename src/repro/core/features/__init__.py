"""Feature extraction from raw sensor data (paper Section IV-A and V).

Raw data arrive as 3-tuples ``(t, Δt, d)`` — a timestamp, a short
sampling window of a few seconds, and the set of readings taken within
it ("SOR takes multiple (instead of one) readings within [t, t+Δt] to
ensure high sensing quality"). Feature values are statistics over those
bursts; the paper's field tests define:

* temperature / humidity / brightness / noise / Wi-Fi — the mean of all
  readings,
* roughness of road surface — the mean over bursts of the standard
  deviation of accelerometer readings within each burst,
* altitude change — the standard deviation over bursts of each burst's
  mean altitude,
* curvature — estimated from GPS locations (we use mean discrete Menger
  curvature over sliding point triples; the paper's method [17] is not
  reproducible from its citation).
"""

from repro.core.features.extractors import (
    AltitudeChangeExtractor,
    CurvatureExtractor,
    FeatureExtractor,
    MeanExtractor,
    RoughnessExtractor,
)
from repro.core.features.pipeline import FeaturePipeline, FeatureSpec, build_feature_matrix
from repro.core.features.types import GpsFix, ReadingBurst

__all__ = [
    "AltitudeChangeExtractor",
    "CurvatureExtractor",
    "FeatureExtractor",
    "FeaturePipeline",
    "FeatureSpec",
    "GpsFix",
    "MeanExtractor",
    "ReadingBurst",
    "RoughnessExtractor",
    "build_feature_matrix",
]
