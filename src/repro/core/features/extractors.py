"""Feature extractors: bursts of raw readings → one feature value."""

from __future__ import annotations

import math
from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from repro.common.errors import ValidationError
from repro.common.geo import LatLon, project_local_m
from repro.core.features.types import GpsFix, ReadingBurst


@runtime_checkable
class FeatureExtractor(Protocol):
    """Turns the bursts collected for one place into a feature value."""

    def extract(self, bursts: Sequence[ReadingBurst]) -> float:
        """Compute the feature; raises ValidationError on empty input."""
        ...


def _require_bursts(bursts: Sequence[ReadingBurst]) -> None:
    if len(bursts) == 0:
        raise ValidationError("feature extraction needs at least one burst")


class MeanExtractor:
    """Mean of all scalar readings across all bursts.

    Used for temperature, humidity, brightness, background noise and
    Wi-Fi signal strength in the paper's field tests.
    """

    def extract(self, bursts: Sequence[ReadingBurst]) -> float:
        """Mean of every scalar reading across all bursts."""
        _require_bursts(bursts)
        values = [float(value) for burst in bursts for value in burst.values]
        return float(np.mean(values))


class RoughnessExtractor:
    """Mean over bursts of the within-burst accelerometer deviation.

    The paper: "an average of the standard deviations of all
    accelerometer's readings within Δt". Readings are (x, y, z) tuples;
    we take the standard deviation of the magnitude within each burst
    (gravity contributes a constant offset that the deviation removes).
    """

    def extract(self, bursts: Sequence[ReadingBurst]) -> float:
        """Mean over bursts of the within-burst magnitude deviation."""
        _require_bursts(bursts)
        deviations = []
        for burst in bursts:
            magnitudes = [
                math.sqrt(float(x) ** 2 + float(y) ** 2 + float(z) ** 2)
                for x, y, z in burst.values
            ]
            deviations.append(float(np.std(magnitudes)))
        return float(np.mean(deviations))


class AltitudeChangeExtractor:
    """Std over bursts of each burst's mean altitude.

    The paper: "the standard deviation of averages of all altitude
    sensor readings within Δt" — a flat trail yields ≈ 0, a hilly one a
    large value. Accepts bursts of scalar altitudes or of GPS fixes.
    """

    def extract(self, bursts: Sequence[ReadingBurst]) -> float:
        """Standard deviation over bursts of each burst's mean altitude."""
        _require_bursts(bursts)
        means = []
        for burst in bursts:
            altitudes = [
                value.altitude_m if isinstance(value, GpsFix) else float(value)
                for value in burst.values
            ]
            means.append(float(np.mean(altitudes)))
        return float(np.std(means))


class CurvatureExtractor:
    """Mean discrete Menger curvature of the GPS traces, in 1/km.

    Processing per phone (bursts are grouped by their ``source`` so one
    walker's trajectory is never mixed with another's):

    1. order all fixes by time and smooth with a short moving average
       (standard GPS preprocessing: averaging n fixes shrinks the fix
       error by √n),
    2. thin the trace so consecutive points are at least
       ``min_spacing_m`` apart (residual jitter between near-identical
       points would otherwise dominate the estimate),
    3. for every sliding triple whose consecutive gaps are both at most
       ``max_gap_m``, compute the Menger curvature
       ``κ = 4·Area / (|ab|·|bc|·|ca|)`` (inverse circumradius);
       gap-limited triples avoid aliasing across long pauses between
       scheduled bursts.

    The final value is the triple-count-weighted mean over phones,
    scaled to 1/km. The paper computes curvature "based on GPS locations
    using the method presented in [17]"; that citation does not describe
    a curvature method, so this standard estimator stands in — any
    monotone curvature estimate preserves the induced rankings.
    """

    def __init__(
        self,
        min_spacing_m: float = 10.0,
        *,
        max_gap_m: float = 60.0,
        smooth_window: int = 5,
    ) -> None:
        if min_spacing_m <= 0:
            raise ValidationError("min_spacing_m must be positive")
        if max_gap_m < min_spacing_m:
            raise ValidationError("max_gap_m must be >= min_spacing_m")
        if smooth_window < 1:
            raise ValidationError("smooth_window must be >= 1")
        self.min_spacing_m = min_spacing_m
        self.max_gap_m = max_gap_m
        self.smooth_window = smooth_window

    def extract(self, bursts: Sequence[ReadingBurst]) -> float:
        """Triple-count-weighted mean Menger curvature over phones, 1/km."""
        _require_bursts(bursts)
        by_source: dict[str, list[ReadingBurst]] = {}
        for burst in bursts:
            by_source.setdefault(burst.source, []).append(burst)
        total_weighted = 0.0
        total_triples = 0
        for source_bursts in by_source.values():
            curvatures = self._trace_curvatures(source_bursts)
            total_weighted += sum(curvatures)
            total_triples += len(curvatures)
        if total_triples == 0:
            return 0.0
        return total_weighted / total_triples * 1000.0  # 1/m → 1/km

    def _trace_curvatures(self, bursts: Sequence[ReadingBurst]) -> list[float]:
        ordered = sorted(bursts, key=lambda burst: burst.timestamp)
        fixes: list[GpsFix] = []
        for burst in ordered:
            for value in burst.values:
                if not isinstance(value, GpsFix):
                    raise ValidationError("curvature needs GpsFix readings")
                fixes.append(value)
        if len(fixes) < 3:
            return []
        origin = LatLon(fixes[0].latitude, fixes[0].longitude)
        points = [
            project_local_m(LatLon(fix.latitude, fix.longitude), origin)
            for fix in fixes
        ]
        points = self._smooth(points)
        thinned = [points[0]]
        for point in points[1:]:
            last = thinned[-1]
            if math.hypot(point[0] - last[0], point[1] - last[1]) >= self.min_spacing_m:
                thinned.append(point)
        curvatures = []
        for index in range(len(thinned) - 2):
            a, b, c = thinned[index : index + 3]
            if (
                math.hypot(b[0] - a[0], b[1] - a[1]) > self.max_gap_m
                or math.hypot(c[0] - b[0], c[1] - b[1]) > self.max_gap_m
            ):
                continue
            curvatures.append(self._menger(a, b, c))
        return curvatures

    def _smooth(self, points: list[tuple[float, float]]) -> list[tuple[float, float]]:
        if self.smooth_window <= 1 or len(points) < self.smooth_window:
            return points
        half = self.smooth_window // 2
        smoothed = []
        for index in range(len(points)):
            lo = max(0, index - half)
            hi = min(len(points), index + half + 1)
            xs = [point[0] for point in points[lo:hi]]
            ys = [point[1] for point in points[lo:hi]]
            smoothed.append((sum(xs) / len(xs), sum(ys) / len(ys)))
        return smoothed

    @staticmethod
    def _menger(
        a: tuple[float, float], b: tuple[float, float], c: tuple[float, float]
    ) -> float:
        ab = math.hypot(b[0] - a[0], b[1] - a[1])
        bc = math.hypot(c[0] - b[0], c[1] - b[1])
        ca = math.hypot(a[0] - c[0], a[1] - c[1])
        if ab == 0 or bc == 0 or ca == 0:
            return 0.0
        cross = (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0])
        area2 = abs(cross)  # twice the triangle area
        return 2.0 * area2 / (ab * bc * ca)
