"""Raw-data containers for feature extraction."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.common.errors import ValidationError


@dataclass(frozen=True)
class GpsFix:
    """One GPS sample: position plus altitude."""

    latitude: float
    longitude: float
    altitude_m: float = 0.0


@dataclass(frozen=True)
class ReadingBurst:
    """The paper's ``(t, Δt, d)`` 3-tuple.

    ``values`` holds the readings taken within ``[t, t + Δt]``. Scalar
    sensors store floats; the accelerometer stores (x, y, z) tuples; GPS
    stores :class:`GpsFix` objects. ``source`` identifies the phone that
    took the burst — trajectory features (curvature) must not mix fixes
    from different walkers.
    """

    timestamp: float
    duration_s: float
    values: tuple
    source: str = ""

    def __post_init__(self) -> None:
        if self.duration_s < 0:
            raise ValidationError("burst duration must be non-negative")
        if len(self.values) == 0:
            raise ValidationError("burst must contain at least one reading")

    @staticmethod
    def of(
        timestamp: float, duration_s: float, values: Sequence, source: str = ""
    ) -> "ReadingBurst":
        """Convenience constructor accepting any sequence."""
        return ReadingBurst(
            timestamp=timestamp,
            duration_s=duration_s,
            values=tuple(values),
            source=source,
        )
