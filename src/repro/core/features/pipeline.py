"""Feature pipeline: raw bursts per sensor → feature vector → H matrix."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence

import numpy as np

from repro.common.errors import ValidationError
from repro.core.features.extractors import FeatureExtractor
from repro.core.features.types import ReadingBurst


@dataclass(frozen=True)
class FeatureSpec:
    """One humanly understandable feature and how to compute it.

    ``sensor_type`` names which sensor's bursts feed the extractor
    (e.g. ``"temperature"``, ``"accelerometer"``, ``"gps"``).
    """

    name: str
    sensor_type: str
    extractor: FeatureExtractor

    def __post_init__(self) -> None:
        if not self.name or not self.sensor_type:
            raise ValidationError("feature name and sensor type are required")


class FeaturePipeline:
    """Computes every configured feature for a place's collected data."""

    def __init__(self, specs: Sequence[FeatureSpec]) -> None:
        if not specs:
            raise ValidationError("pipeline needs at least one feature spec")
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValidationError("duplicate feature names in pipeline")
        self.specs = list(specs)

    @property
    def feature_names(self) -> list[str]:
        return [spec.name for spec in self.specs]

    @property
    def required_sensors(self) -> set[str]:
        return {spec.sensor_type for spec in self.specs}

    def compute(
        self, bursts_by_sensor: Mapping[str, Sequence[ReadingBurst]]
    ) -> dict[str, float]:
        """Feature name → value for one place's raw data.

        Raises :class:`ValidationError` when any feature's sensor has no
        data; use :meth:`compute_available` to tolerate gaps.
        """
        values: dict[str, float] = {}
        for spec in self.specs:
            bursts = bursts_by_sensor.get(spec.sensor_type)
            if not bursts:
                raise ValidationError(
                    f"no {spec.sensor_type!r} data available for feature "
                    f"{spec.name!r}"
                )
            values[spec.name] = spec.extractor.extract(bursts)
        return values

    def compute_available(
        self, bursts_by_sensor: Mapping[str, Sequence[ReadingBurst]]
    ) -> tuple[dict[str, float], list[str]]:
        """Compute every feature whose sensor has data.

        Returns ``(values, missing_feature_names)``. Gaps happen in real
        deployments — every participant may have denied a sensor, or a
        sensor may have timed out on every phone — and must not prevent
        ranking on the features that do exist.
        """
        values: dict[str, float] = {}
        missing: list[str] = []
        for spec in self.specs:
            bursts = bursts_by_sensor.get(spec.sensor_type)
            if not bursts:
                missing.append(spec.name)
            else:
                values[spec.name] = spec.extractor.extract(bursts)
        return values, missing


def build_feature_matrix(
    feature_values: Mapping[Hashable, Mapping[str, float]],
    feature_names: Sequence[str],
) -> tuple[np.ndarray, list[Hashable]]:
    """Assemble the paper's H matrix (N places × M features).

    ``feature_values`` maps place id → {feature name → value}. Returns
    the matrix and the place order (insertion order of the mapping).
    """
    if not feature_values:
        raise ValidationError("need at least one place")
    place_ids = list(feature_values)
    matrix = np.empty((len(place_ids), len(feature_names)))
    for row, place_id in enumerate(place_ids):
        values = feature_values[place_id]
        for column, feature in enumerate(feature_names):
            if feature not in values:
                raise ValidationError(
                    f"place {place_id!r} is missing feature {feature!r}"
                )
            matrix[row, column] = float(values[feature])
    return matrix, place_ids
