"""User preference profiles (the paper's U and W vectors).

A user states, per feature, the value they prefer and a weight in
``{0, 1, 2, 3, 4, 5}`` ("0" = doesn't care, "5" = really cares) —
exactly the hiker/customer profiles of Figures 7 and 11. Features that
are always better larger (Wi-Fi strength) or smaller (noise) use the
``MAX``/``MIN`` sentinels; the paper configures "a very large (small)
default value" for these, which orders places identically to resolving
the sentinel against the observed column extremum, as we do.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass
from typing import Mapping

from repro.common.errors import RankingError


class _Sentinel(enum.Enum):
    MAX = "max"
    MIN = "min"


MAX = _Sentinel.MAX
MIN = _Sentinel.MIN

PreferredValue = float | _Sentinel

MAX_WEIGHT = 5


@dataclass(frozen=True)
class FeaturePreference:
    """One feature's preferred value and emphasis weight."""

    preferred: PreferredValue
    weight: int

    def __post_init__(self) -> None:
        if not isinstance(self.weight, int) or not 0 <= self.weight <= MAX_WEIGHT:
            raise RankingError(
                f"weight must be an integer in [0, {MAX_WEIGHT}], got {self.weight!r}"
            )
        if not isinstance(self.preferred, _Sentinel) and not isinstance(
            self.preferred, (int, float)
        ):
            raise RankingError(f"preferred value {self.preferred!r} is not numeric")

    def resolve(self, column_min: float, column_max: float) -> float:
        """The concrete preferred value given the observed feature range."""
        if self.preferred is MAX:
            return column_max
        if self.preferred is MIN:
            return column_min
        return float(self.preferred)


class PreferenceProfile:
    """A named user's preferences over a feature set.

    >>> alice = PreferenceProfile("Alice", {
    ...     "roughness": FeaturePreference(MAX, 5),
    ...     "temperature": FeaturePreference(73.0, 2),
    ... })
    >>> alice.weight("roughness")
    5
    """

    def __init__(
        self, name: str, preferences: Mapping[str, FeaturePreference]
    ) -> None:
        if not preferences:
            raise RankingError("preference profile must cover at least one feature")
        self.name = name
        self._preferences = dict(preferences)

    @property
    def feature_names(self) -> list[str]:
        return list(self._preferences)

    def preference(self, feature: str) -> FeaturePreference:
        """The stated preference for ``feature`` (raises if absent)."""
        try:
            return self._preferences[feature]
        except KeyError:
            raise RankingError(
                f"profile {self.name!r} has no preference for feature {feature!r}"
            ) from None

    def weight(self, feature: str) -> int:
        """The emphasis weight (0-5) for ``feature``."""
        return self.preference(feature).weight

    def effective_weight(self, feature: str) -> int:
        """The weight for ``feature``, with uncovered features as 0.

        The paper's scale makes 0 mean "doesn't care"; a feature the
        user never mentioned carries exactly that meaning, so ranking
        paths use this instead of :meth:`weight` wherever the feature
        set comes from the sensed data rather than from the profile.
        """
        preference = self._preferences.get(feature)
        return preference.weight if preference is not None else 0

    def covers(self, features: list[str]) -> bool:
        """Whether the profile states a preference for every feature."""
        return all(feature in self._preferences for feature in features)

    def fingerprint(self) -> str:
        """A stable content hash of the profile's preferences.

        Computed over the sorted ``(feature, preferred, weight)``
        triples — two profiles with equal preferences fingerprint
        identically regardless of name or insertion order, so the
        ranking cache can key on it.
        """
        digest = hashlib.sha256()
        for feature in sorted(self._preferences):
            preference = self._preferences[feature]
            preferred = preference.preferred
            token = (
                preferred.value
                if isinstance(preferred, _Sentinel)
                else repr(float(preferred))
            )
            digest.update(
                f"{feature}\x00{token}\x00{preference.weight}\x1f".encode()
            )
        return digest.hexdigest()[:32]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PreferenceProfile({self.name!r}, {self._preferences!r})"
