"""Ranking distances: Kemeny (Kendall tau) and Spearman's footrule.

Definitions follow the paper's Section IV-B: the Kemeny distance counts
pairwise order violations between two rankings (Definition 2); the
footrule distance sums absolute rank displacements (equation (9)) and
satisfies ``d_K ≤ d_f ≤ 2·d_K`` (Diaconis–Graham, equation (10)).
Weighted variants against a collection of individual rankings implement
equations (7) and (11).
"""

from __future__ import annotations

from typing import Sequence

from repro.common.errors import RankingError
from repro.core.ranking.types import Ranking


def kemeny_distance(first: Ranking, second: Ranking) -> int:
    """Number of item pairs the two rankings order oppositely.

    The paper's double sum (equation (5)) counts each violated pair
    twice — once as (i, i′) and once as (i′, i) — but its worked example
    (d_K = 2 for two violations) counts unordered pairs, so we count
    unordered pairs.
    """
    first.require_same_items(second)
    items = first.items
    violations = 0
    for index_a in range(len(items)):
        for index_b in range(index_a + 1, len(items)):
            item_a, item_b = items[index_a], items[index_b]
            first_order = first.position(item_a) - first.position(item_b)
            second_order = second.position(item_a) - second.position(item_b)
            if first_order * second_order < 0:
                violations += 1
    return violations


def footrule_distance(first: Ranking, second: Ranking) -> int:
    """Spearman's footrule ``Σ_i |π(i, R1) − π(i, R2)|``."""
    first.require_same_items(second)
    return sum(
        abs(first.position(item) - second.position(item)) for item in first.items
    )


def _check_collection(
    ranking: Ranking, collection: Sequence[Ranking], weights: Sequence[float]
) -> None:
    if len(collection) != len(weights):
        raise RankingError(
            f"{len(collection)} rankings but {len(weights)} weights"
        )
    if any(weight < 0 for weight in weights):
        raise RankingError("weights must be non-negative")
    for individual in collection:
        ranking.require_same_items(individual)


def weighted_kemeny_distance(
    ranking: Ranking, collection: Sequence[Ranking], weights: Sequence[float]
) -> float:
    """κ_K(R, Ω) = Σ_j w_j · d_K(R, R_j) (equation (7))."""
    _check_collection(ranking, collection, weights)
    return sum(
        weight * kemeny_distance(ranking, individual)
        for individual, weight in zip(collection, weights)
    )


def weighted_footrule_distance(
    ranking: Ranking, collection: Sequence[Ranking], weights: Sequence[float]
) -> float:
    """κ_f(R, Ω) = Σ_j w_j · d_f(R, R_j) (equation (11))."""
    _check_collection(ranking, collection, weights)
    return sum(
        weight * footrule_distance(ranking, individual)
        for individual, weight in zip(collection, weights)
    )
