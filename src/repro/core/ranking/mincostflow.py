"""Minimum-cost flow (successive shortest paths with potentials).

The paper solves its footrule aggregation on an auxiliary flow graph
"by a linear programming based algorithm" whose constraint matrix is
totally unimodular, guaranteeing an integral optimum. We implement the
combinatorial equivalent: successive shortest augmenting paths with
Johnson potentials (Dijkstra), which yields the same integral min-cost
flow in polynomial time.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.common.errors import RankingError
from repro.obs import MetricsRegistry, get_metrics


@dataclass
class _Edge:
    target: int
    capacity: int
    cost: float
    flow: int = 0


class MinCostFlow:
    """A min-cost flow network over integer node ids.

    Supports non-negative edge costs (all SOR graphs satisfy this).
    """

    def __init__(
        self, num_nodes: int, *, metrics: MetricsRegistry | None = None
    ) -> None:
        if num_nodes <= 0:
            raise RankingError("network needs at least one node")
        self.num_nodes = num_nodes
        self._edges: list[_Edge] = []
        self._adjacency: list[list[int]] = [[] for _ in range(num_nodes)]
        self.metrics = metrics if metrics is not None else get_metrics()
        self._m_iterations = self.metrics.counter(
            "sor_mincostflow_iterations_total",
            "shortest-path augmentation iterations (Dijkstra runs)",
        )
        self._m_units = self.metrics.counter(
            "sor_mincostflow_units_routed_total",
            "flow units routed by MinCostFlow.solve",
        )

    def add_edge(self, source: int, target: int, capacity: int, cost: float) -> int:
        """Add a directed edge; returns its id (for flow inspection)."""
        if not (0 <= source < self.num_nodes and 0 <= target < self.num_nodes):
            raise RankingError("edge endpoint out of range")
        if capacity < 0:
            raise RankingError("edge capacity must be non-negative")
        if cost < 0:
            raise RankingError("this solver requires non-negative edge costs")
        edge_id = len(self._edges)
        self._edges.append(_Edge(target=target, capacity=capacity, cost=cost))
        self._edges.append(_Edge(target=source, capacity=0, cost=-cost))
        self._adjacency[source].append(edge_id)
        self._adjacency[target].append(edge_id + 1)
        return edge_id

    def flow_on(self, edge_id: int) -> int:
        """Flow currently routed on edge ``edge_id``."""
        return self._edges[edge_id].flow

    def solve(self, source: int, sink: int, amount: int) -> float:
        """Route ``amount`` units from source to sink at minimum cost.

        Returns the total cost. Raises :class:`RankingError` if the
        requested amount cannot be routed.
        """
        if source == sink:
            raise RankingError("source and sink must differ")
        total_cost = 0.0
        routed = 0
        iterations = 0
        potentials = [0.0] * self.num_nodes
        while routed < amount:
            distances, parents = self._dijkstra(source, potentials)
            iterations += 1
            if distances[sink] == float("inf"):
                self._m_iterations.inc(iterations)
                raise RankingError(
                    f"network supports only {routed} of {amount} units"
                )
            for node in range(self.num_nodes):
                if distances[node] < float("inf"):
                    potentials[node] += distances[node]
            # Find bottleneck along the augmenting path.
            bottleneck = amount - routed
            node = sink
            while node != source:
                edge = self._edges[parents[node]]
                bottleneck = min(bottleneck, edge.capacity - edge.flow)
                node = self._edges[parents[node] ^ 1].target
            # Augment.
            node = sink
            while node != source:
                edge_id = parents[node]
                self._edges[edge_id].flow += bottleneck
                self._edges[edge_id ^ 1].flow -= bottleneck
                total_cost += bottleneck * self._edges[edge_id].cost
                node = self._edges[edge_id ^ 1].target
            routed += bottleneck
        self._m_iterations.inc(iterations)
        self._m_units.inc(routed)
        return total_cost

    def _dijkstra(
        self, source: int, potentials: list[float]
    ) -> tuple[list[float], list[int]]:
        distances = [float("inf")] * self.num_nodes
        parents = [-1] * self.num_nodes
        distances[source] = 0.0
        heap: list[tuple[float, int]] = [(0.0, source)]
        while heap:
            distance, node = heapq.heappop(heap)
            if distance > distances[node]:
                continue
            for edge_id in self._adjacency[node]:
                edge = self._edges[edge_id]
                if edge.capacity - edge.flow <= 0:
                    continue
                reduced = edge.cost + potentials[node] - potentials[edge.target]
                candidate = distance + reduced
                if candidate < distances[edge.target] - 1e-12:
                    distances[edge.target] = candidate
                    parents[edge.target] = edge_id
                    heapq.heappush(heap, (candidate, edge.target))
        return distances, parents
