"""The Ranking type: an ordered list of distinct items."""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator

from repro.common.errors import RankingError


class Ranking:
    """An ordering of items, best first.

    The paper's index function ``π(i, R)`` is :meth:`position` and is
    **1-based** (rank 1 is the top item), matching Section IV-B.
    """

    def __init__(self, items: Iterable[Hashable]) -> None:
        self._items = tuple(items)
        if len(set(self._items)) != len(self._items):
            raise RankingError("ranking contains duplicate items")
        if not self._items:
            raise RankingError("ranking must contain at least one item")
        self._positions = {
            item: position for position, item in enumerate(self._items, start=1)
        }

    @property
    def items(self) -> tuple[Hashable, ...]:
        return self._items

    def position(self, item: Hashable) -> int:
        """π(item, self): 1-based rank of ``item``."""
        try:
            return self._positions[item]
        except KeyError:
            raise RankingError(f"item {item!r} is not in this ranking") from None

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._items)

    def __getitem__(self, index: int) -> Hashable:
        return self._items[index]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Ranking) and self._items == other._items

    def __hash__(self) -> int:
        return hash(self._items)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Ranking({list(self._items)!r})"

    def same_items(self, other: "Ranking") -> bool:
        """Whether both rankings order the same item set."""
        return set(self._items) == set(other.items)

    def require_same_items(self, other: "Ranking") -> None:
        """Raise RankingError unless both rankings share one item set."""
        if not self.same_items(other):
            raise RankingError("rankings are over different item sets")
