"""Hybrid subjective + objective ranking.

The paper's stated goal is "not to replace the current
ranking/recommendation systems that are based on subjective user ratings
but to enhance them … to provide more comprehensive and objective
rankings" (Section I). This module implements that integration: a
subjective source (e.g. Yelp-style star averages) becomes one more
individual ranking in the weighted footrule aggregation, alongside the
per-feature objective rankings.

Subjective ratings arrive as ``place_id → mean stars``; ties and missing
places are handled explicitly. The user controls the blend with a single
``subjective_weight`` on the same 0–5 scale as feature weights.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence

from repro.common.errors import RankingError
from repro.core.ranking.aggregate import aggregate_footrule
from repro.core.ranking.types import Ranking


def subjective_ranking(
    ratings: Mapping[Hashable, float], place_ids: Sequence[Hashable]
) -> Ranking:
    """Order places by descending subjective rating.

    Every place being ranked must have a rating (a recommendation system
    without a rating for a place cannot rank it); ties keep the order of
    ``place_ids`` so results are deterministic.
    """
    missing = [place for place in place_ids if place not in ratings]
    if missing:
        raise RankingError(f"missing subjective ratings for {missing}")
    # Index map instead of place_ids.index() in the key: the latter is a
    # linear scan per comparison (O(N²) overall) on the hot hybrid path.
    order_index = {place: index for index, place in enumerate(place_ids)}
    ordered = sorted(
        place_ids, key=lambda place: (-float(ratings[place]), order_index[place])
    )
    return Ranking(ordered)


def aggregate_hybrid(
    objective_rankings: Sequence[Ranking],
    objective_weights: Sequence[float],
    ratings: Mapping[Hashable, float],
    *,
    subjective_weight: int = 3,
) -> Ranking:
    """Blend objective individual rankings with a subjective source.

    ``subjective_weight`` uses the paper's 0–5 emphasis scale; 0 reduces
    to the purely objective aggregation, large values let the subjective
    consensus dominate.
    """
    if not objective_rankings:
        raise RankingError("need at least one objective ranking")
    if not isinstance(subjective_weight, int) or not 0 <= subjective_weight <= 5:
        raise RankingError(
            f"subjective_weight must be an integer in [0, 5], "
            f"got {subjective_weight!r}"
        )
    place_ids = list(objective_rankings[0].items)
    collection = list(objective_rankings)
    weights = list(objective_weights)
    if subjective_weight > 0:
        collection.append(subjective_ranking(ratings, place_ids))
        weights.append(subjective_weight)
    return aggregate_footrule(collection, weights)
