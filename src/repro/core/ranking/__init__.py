"""Personalizable ranking (paper Section IV).

Pipeline:

1. Feature matrix ``H`` (N places × M features) plus a user's preferred
   values ``U`` → preference-distance matrix ``Γ`` with
   ``γ_ij = |h_ij − u_j|`` (:func:`preference_distance_matrix`),
2. per-feature *individual rankings* ``R_j`` by sorting each Γ column
   ascending (:func:`individual_rankings`),
3. aggregation: find the ranking minimizing the weighted Spearman
   footrule distance ``κ_f(R, Ω) = Σ_j w_j · d_f(R, R_j)`` by reduction
   to min-cost bipartite perfect matching on a place × rank flow graph
   (:func:`aggregate_footrule`). Because ``d_K ≤ d_f ≤ 2·d_K``
   (Diaconis–Graham), the footrule optimum 2-approximates the NP-hard
   weighted Kemeny optimum.

Baselines and references: exact weighted Kemeny by exhaustive search
(:func:`brute_force_kemeny`, small N), Borda count
(:func:`borda_count`), and a Kemeny-improving local-search refinement
(:func:`refine_by_adjacent_swaps`).
"""

from repro.core.ranking.aggregate import (
    aggregate_footrule,
    borda_count,
    brute_force_kemeny,
    footrule_cost_matrix,
    refine_by_adjacent_swaps,
)
from repro.core.ranking.hybrid import aggregate_hybrid, subjective_ranking
from repro.core.ranking.distances import (
    footrule_distance,
    kemeny_distance,
    weighted_footrule_distance,
    weighted_kemeny_distance,
)
from repro.core.ranking.individual import (
    individual_rankings,
    preference_distance_matrix,
    require_finite_features,
)
from repro.core.ranking.mincostflow import MinCostFlow
from repro.core.ranking.preferences import (
    MAX,
    MIN,
    FeaturePreference,
    PreferenceProfile,
)
from repro.core.ranking.types import Ranking

__all__ = [
    "MAX",
    "MIN",
    "FeaturePreference",
    "MinCostFlow",
    "PreferenceProfile",
    "Ranking",
    "aggregate_footrule",
    "aggregate_hybrid",
    "borda_count",
    "brute_force_kemeny",
    "footrule_cost_matrix",
    "footrule_distance",
    "individual_rankings",
    "kemeny_distance",
    "preference_distance_matrix",
    "refine_by_adjacent_swaps",
    "require_finite_features",
    "subjective_ranking",
    "weighted_footrule_distance",
    "weighted_kemeny_distance",
]
