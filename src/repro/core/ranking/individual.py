"""Steps 1–2 of Algorithm 2: Γ matrix and per-feature rankings."""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np

from repro.common.errors import RankingError
from repro.core.ranking.preferences import PreferenceProfile
from repro.core.ranking.types import Ranking


def require_finite_features(
    matrix: np.ndarray,
    feature_names: Sequence[str] | None = None,
    place_ids: Sequence[Hashable] | None = None,
) -> None:
    """Raise :class:`RankingError` if ``matrix`` holds any NaN/inf cell.

    A NaN feature value poisons the column min/max used to resolve
    MAX/MIN preference sentinels, and argsort silently places NaNs last
    — producing a garbage-but-plausible ranking. Fail loudly instead,
    naming the offending place and feature when their labels are known.
    """
    finite = np.isfinite(matrix)
    if finite.all():
        return
    row, column = (int(index) for index in np.argwhere(~finite)[0])
    place = place_ids[row] if place_ids is not None else f"row {row}"
    feature = (
        feature_names[column] if feature_names is not None else f"column {column}"
    )
    raise RankingError(
        f"non-finite feature value {float(matrix[row, column])!r} for place "
        f"{place!r}, feature {feature!r}"
    )


def preference_distance_matrix(
    feature_matrix: np.ndarray,
    feature_names: Sequence[str],
    profile: PreferenceProfile,
    *,
    place_ids: Sequence[Hashable] | None = None,
) -> np.ndarray:
    """Step 1: ``γ_ij = |h_ij − u_j|`` with sentinels resolved per column.

    ``feature_matrix`` is N places × M features; every cell must be
    finite (NaN/inf raise :class:`RankingError`, naming the place when
    ``place_ids`` is given).
    """
    matrix = np.asarray(feature_matrix, dtype=float)
    if matrix.ndim != 2:
        raise RankingError("feature matrix must be 2-dimensional")
    if matrix.shape[1] != len(feature_names):
        raise RankingError(
            f"feature matrix has {matrix.shape[1]} columns but "
            f"{len(feature_names)} feature names given"
        )
    require_finite_features(matrix, feature_names, place_ids)
    gamma = np.empty_like(matrix)
    for column, feature in enumerate(feature_names):
        values = matrix[:, column]
        preferred = profile.preference(feature).resolve(
            float(values.min()), float(values.max())
        )
        gamma[:, column] = np.abs(values - preferred)
    return gamma


def individual_rankings(
    gamma: np.ndarray,
    place_ids: Sequence[Hashable],
) -> list[Ranking]:
    """Step 2: sort places per feature by ascending preference distance.

    Ties are broken by place order (stable sort), so results are
    deterministic for identical inputs. Non-finite distances raise
    :class:`RankingError` (argsort would quietly rank them last).
    """
    matrix = np.asarray(gamma, dtype=float)
    if matrix.shape[0] != len(place_ids):
        raise RankingError(
            f"gamma has {matrix.shape[0]} rows but {len(place_ids)} place ids"
        )
    require_finite_features(matrix, place_ids=place_ids)
    rankings = []
    for column in range(matrix.shape[1]):
        order = np.argsort(matrix[:, column], kind="stable")
        rankings.append(Ranking(place_ids[index] for index in order))
    return rankings
