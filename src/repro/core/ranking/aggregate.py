"""Step 3 of Algorithm 2: rank aggregation.

The footrule-optimal aggregation is a min-cost perfect matching between
places and ranks: assigning place i to final rank r costs
``Σ_j w_j · |π(i, R_j) − r|`` (the paper's edge cost on its auxiliary
flow graph). We build exactly that graph — virtual source → places →
ranks → virtual sink, all capacities 1 — and solve it with our
min-cost-flow solver. The result minimizes the weighted footrule
distance κ_f and therefore 2-approximates the weighted Kemeny optimum.

Also here: exhaustive weighted-Kemeny search (reference for tests),
Borda count (a cheap baseline for the ablation bench), and an
adjacent-swap local search that can only improve the Kemeny objective
of any starting ranking.
"""

from __future__ import annotations

import itertools
from typing import Hashable, Sequence

import numpy as np

from repro.common.errors import RankingError
from repro.core.ranking.distances import (
    weighted_footrule_distance,
    weighted_kemeny_distance,
)
from repro.core.ranking.mincostflow import MinCostFlow
from repro.core.ranking.types import Ranking
from repro.obs import MetricsRegistry, get_metrics

#: Buckets for the total footrule cost of one aggregation — spans the
#: tiny test instances (< 1) up to paper-scale weighted collections.
_FOOTRULE_COST_BUCKETS = (
    0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0, 5000.0,
)


def _check_inputs(collection: Sequence[Ranking], weights: Sequence[float]) -> None:
    if not collection:
        raise RankingError("need at least one individual ranking")
    if len(collection) != len(weights):
        raise RankingError(
            f"{len(collection)} rankings but {len(weights)} weights"
        )
    if any(weight < 0 for weight in weights):
        raise RankingError("weights must be non-negative")
    first = collection[0]
    for other in collection[1:]:
        first.require_same_items(other)


def _position_matrix(
    collection: Sequence[Ranking],
) -> tuple[np.ndarray, tuple[Hashable, ...]]:
    """``P[j, i] = π(item_i, R_j)`` and the shared item order."""
    items = collection[0].items
    positions = np.array(
        [[ranking.position(item) for item in items] for ranking in collection],
        dtype=float,
    )
    return positions, items


def footrule_cost_matrix(
    collection: Sequence[Ranking], weights: Sequence[float]
) -> tuple[np.ndarray, tuple[Hashable, ...]]:
    """Cost[i][r] = Σ_j w_j · |π(item_i, R_j) − (r+1)| and the item order.

    One broadcasted ``w_j · |P[j, i] − r|`` tensor reduced over the
    ranking axis with :func:`np.add.reduce`, whose slice-by-slice
    accumulation order matches the scalar reference's ``total += …``
    loop — the two are bitwise identical (pinned by the differential
    suite), like the scheduling backends.
    """
    _check_inputs(collection, weights)
    positions, items = _position_matrix(collection)
    count = len(items)
    ranks = np.arange(1, count + 1, dtype=float)
    weight_vector = np.asarray(weights, dtype=float)
    # terms[j, i, r] = w_j · |π(item_i, R_j) − r|
    terms = weight_vector[:, None, None] * np.abs(
        positions[:, :, None] - ranks[None, None, :]
    )
    return np.add.reduce(terms, axis=0), items


def footrule_cost_matrix_reference(
    collection: Sequence[Ranking], weights: Sequence[float]
) -> tuple[np.ndarray, tuple[Hashable, ...]]:
    """The O(N²·J) scalar spec of :func:`footrule_cost_matrix`.

    Kept as the oracle for the differential test; the vectorized path
    must reproduce it bitwise.
    """
    _check_inputs(collection, weights)
    positions, items = _position_matrix(collection)
    count = len(items)
    weight_vector = [float(weight) for weight in weights]
    cost = np.zeros((count, count))
    for item_index in range(count):
        for rank_index in range(count):
            total = 0.0
            for ranking_index, weight in enumerate(weight_vector):
                total += weight * abs(
                    positions[ranking_index, item_index] - float(rank_index + 1)
                )
            cost[item_index, rank_index] = total
    return cost, items


def aggregate_footrule(
    collection: Sequence[Ranking],
    weights: Sequence[float],
    *,
    metrics: MetricsRegistry | None = None,
) -> Ranking:
    """The footrule-optimal aggregated ranking via min-cost flow.

    Ties between equally good assignments resolve deterministically
    (the flow augments ranks in item order over a fixed graph).
    """
    registry = metrics if metrics is not None else get_metrics()
    cost, items = footrule_cost_matrix(collection, weights)
    count = len(items)
    # Node layout: 0 = source, 1..N = places, N+1..2N = ranks, 2N+1 = sink.
    network = MinCostFlow(2 * count + 2, metrics=registry)
    source, sink = 0, 2 * count + 1
    edge_ids: dict[tuple[int, int], int] = {}
    for item_index in range(count):
        network.add_edge(source, 1 + item_index, 1, 0.0)
    for item_index in range(count):
        for rank_index in range(count):
            edge_ids[(item_index, rank_index)] = network.add_edge(
                1 + item_index,
                1 + count + rank_index,
                1,
                float(cost[item_index, rank_index]),
            )
    for rank_index in range(count):
        network.add_edge(1 + count + rank_index, sink, 1, 0.0)
    footrule_cost = network.solve(source, sink, count)
    registry.counter(
        "sor_ranking_aggregations_total",
        "footrule aggregations solved via min-cost flow",
    ).inc()
    registry.gauge(
        "sor_ranking_matching_size",
        "items matched to ranks in the most recent aggregation",
    ).set(count)
    registry.histogram(
        "sor_ranking_footrule_cost",
        "total weighted footrule cost of each aggregation",
        buckets=_FOOTRULE_COST_BUCKETS,
    ).observe(footrule_cost)
    slots: list[Hashable | None] = [None] * count
    for (item_index, rank_index), edge_id in edge_ids.items():
        if network.flow_on(edge_id) > 0:
            slots[rank_index] = items[item_index]
    if any(slot is None for slot in slots):
        raise RankingError("flow did not produce a perfect matching")
    return Ranking(slots)  # type: ignore[arg-type]


def brute_force_kemeny(
    collection: Sequence[Ranking], weights: Sequence[float], *, max_items: int = 8
) -> Ranking:
    """Exact weighted-Kemeny-optimal ranking by exhaustive permutation.

    Only for small item sets; used as the ground truth in tests and the
    aggregation-quality ablation.
    """
    _check_inputs(collection, weights)
    items = collection[0].items
    if len(items) > max_items:
        raise RankingError(
            f"brute force limited to {max_items} items, got {len(items)}"
        )
    best_ranking: Ranking | None = None
    best_value = float("inf")
    for permutation in itertools.permutations(items):
        candidate = Ranking(permutation)
        value = weighted_kemeny_distance(candidate, collection, weights)
        if value < best_value - 1e-12:
            best_value = value
            best_ranking = candidate
    assert best_ranking is not None
    return best_ranking


def borda_count(collection: Sequence[Ranking], weights: Sequence[float]) -> Ranking:
    """Weighted Borda count: order by weighted mean position.

    A popular cheap aggregation heuristic; included as the baseline the
    ablation bench compares the flow-based aggregation against.
    """
    _check_inputs(collection, weights)
    items = collection[0].items
    scores = {
        item: sum(
            weight * ranking.position(item)
            for ranking, weight in zip(collection, weights)
        )
        for item in items
    }
    # Stable: ties keep the item order of the first individual ranking.
    ordered = sorted(items, key=lambda item: scores[item])
    return Ranking(ordered)


def refine_by_adjacent_swaps(
    start: Ranking, collection: Sequence[Ranking], weights: Sequence[float]
) -> Ranking:
    """Local search: swap adjacent items while κ_K strictly improves.

    Starting from the footrule solution this can only lower the weighted
    Kemeny distance, tightening the 2-approximation in practice (this is
    the classic "local Kemenization" post-processing step).
    """
    _check_inputs(collection, weights)
    start.require_same_items(collection[0])
    current = list(start.items)
    current_value = weighted_kemeny_distance(Ranking(current), collection, weights)
    improved = True
    while improved:
        improved = False
        for index in range(len(current) - 1):
            candidate = list(current)
            candidate[index], candidate[index + 1] = (
                candidate[index + 1],
                candidate[index],
            )
            value = weighted_kemeny_distance(Ranking(candidate), collection, weights)
            if value < current_value - 1e-12:
                current = candidate
                current_value = value
                improved = True
    return Ranking(current)


def aggregation_quality(
    ranking: Ranking, collection: Sequence[Ranking], weights: Sequence[float]
) -> dict[str, float]:
    """Both objective values of a candidate aggregation (for reports)."""
    return {
        "weighted_kemeny": weighted_kemeny_distance(ranking, collection, weights),
        "weighted_footrule": weighted_footrule_distance(ranking, collection, weights),
    }
