"""Sensing-coverage scheduling (paper Section III).

The problem: a scheduling period ``[tS, tE]`` is divided into ``N``
equally spaced time instants. Each participating mobile user ``k`` is
present during ``[tS_k, tE_k]`` and willing to sense at most ``N^B_k``
times. A measurement taken at instant ``t_i`` covers instant ``t_j``
with probability ``p(t_i, t_j)`` given by a bell-shaped kernel; a set of
measurements covers ``t_j`` with ``1 - Π(1 - p(t_i, t_j))``. Choose who
senses when so total coverage ``Σ_j p(t_j, Ψ)`` is maximized.

The feasible sets form a partition matroid over (user, instant) pairs
(each user contributes at most their budget), the objective is monotone
submodular, and the greedy algorithm is a 1/2-approximation
[Fisher–Nemhauser–Wolsey via Gargano–Hammar, the paper's ref 10].

A faithfulness note: the paper states the matroid over subsets of the
instant set ``T`` directly (its Λ), which is only a matroid when user
windows do not overlap; over (user, instant) pairs the budget constraint
is a genuine partition matroid for any windows, and the paper's greedy
Algorithm 1 is exactly greedy on that ground set (picking a time instant
implicitly picks a user with remaining budget to take it). We implement
the pair ground set and expose the instant-set view through
:class:`Schedule`.
"""

from repro.core.scheduling.baseline import PeriodicBaselineScheduler
from repro.core.scheduling.coverage import (
    CoverageKernel,
    ExponentialKernel,
    GaussianKernel,
    TriangularKernel,
)
from repro.core.scheduling.evaluate import average_coverage, evaluate_instants
from repro.core.scheduling.greedy import (
    GREEDY_MODES,
    GreedyScheduler,
    argmax_tied_low,
    brute_force_optimal,
    stochastic_sample_size,
)
from repro.core.scheduling.matroid import BudgetPartitionMatroid, Matroid
from repro.core.scheduling.multikernel import (
    FeatureKernel,
    MultiKernelGreedyScheduler,
    MultiKernelObjective,
)
from repro.core.scheduling.objective import (
    BACKENDS,
    DEFAULT_BACKEND,
    DEFAULT_REPRESENTATION,
    REPRESENTATIONS,
    CoverageObjective,
    KernelMatrices,
    clear_kernel_matrix_cache,
    coverage_of_instants,
    kernel_matrices,
    kernel_matrix_cache_bytes,
    make_objective,
)
from repro.core.scheduling.reference import (
    ReferenceCoverageObjective,
    reference_coverage_of_instants,
    validate_kernel_weights,
)
from repro.core.scheduling.peruser import PerUserGreedyScheduler, per_user_sum_value
from repro.core.scheduling.problem import (
    MobileUser,
    Schedule,
    SchedulingPeriod,
    SchedulingProblem,
)

__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "DEFAULT_REPRESENTATION",
    "GREEDY_MODES",
    "REPRESENTATIONS",
    "BudgetPartitionMatroid",
    "CoverageKernel",
    "CoverageObjective",
    "ExponentialKernel",
    "FeatureKernel",
    "GaussianKernel",
    "GreedyScheduler",
    "KernelMatrices",
    "Matroid",
    "MobileUser",
    "MultiKernelGreedyScheduler",
    "MultiKernelObjective",
    "PerUserGreedyScheduler",
    "PeriodicBaselineScheduler",
    "ReferenceCoverageObjective",
    "Schedule",
    "SchedulingPeriod",
    "SchedulingProblem",
    "TriangularKernel",
    "argmax_tied_low",
    "average_coverage",
    "brute_force_optimal",
    "clear_kernel_matrix_cache",
    "coverage_of_instants",
    "evaluate_instants",
    "kernel_matrices",
    "kernel_matrix_cache_bytes",
    "make_objective",
    "per_user_sum_value",
    "reference_coverage_of_instants",
    "stochastic_sample_size",
    "validate_kernel_weights",
]
