"""The greedy scheduler (paper Algorithm 1) and a brute-force reference.

Algorithm 1: repeatedly add the time instant with the maximum incremental
coverage, as long as some user with remaining budget can take it; stop
when no user can be scheduled further. Because the objective is monotone
submodular and the constraint a (partition) matroid, greedy achieves at
least half the optimum [paper ref 10].

Two execution strategies produce **identical** schedules:

* ``lazy=False`` — the paper's O(N²) loop: recompute every instant's
  gain each iteration and take the argmax,
* ``lazy=True`` (default) — accelerated evaluation. On the reference
  backend this is the classic lazy max-heap: keep stale gains and only
  re-evaluate the top, valid because marginal gains only decrease as
  the solution grows (submodularity). On the numpy backend the
  objective *maintains* its gains array incrementally
  (``maintains_gains``), so re-evaluation is free and the heap is pure
  overhead — the accelerated path is a dense masked argmax per pick
  over the maintained array.

All variants read the same maintained/recomputed gain values and break
exact ties toward the lower instant index, so their outputs match
bitwise within a backend.

Both strategies run on either coverage backend (``backend="numpy"`` —
the vectorized default — or ``"reference"``, the scalar specification;
see docs/SCHEDULING.md). The differential tests pin the two backends to
identical schedules.

User assignment: when an instant is selected, it is given to the
feasible user (window contains the instant, budget remaining, instant
not already assigned to them) with the most remaining budget, breaking
ties toward earlier arrival then user order. This spreads load across
users — the paper's fairness goal ("prevent certain mobile users from
being abused").
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass

import numpy as np

from repro.common.errors import SchedulingError
from repro.core.scheduling.matroid import BudgetPartitionMatroid
from repro.core.scheduling.objective import (
    DEFAULT_BACKEND,
    CoverageObjective,
    ReferenceCoverageObjective,
    coverage_of_instants,
    make_objective,
)
from repro.core.scheduling.problem import Schedule, SchedulingProblem
from repro.obs import MetricsRegistry, get_metrics

AnyCoverageObjective = CoverageObjective | ReferenceCoverageObjective

#: Sentinel key for infeasible users in the `_pick_user` argmin.
_INFEASIBLE_KEY = np.iinfo(np.int64).max


@dataclass
class _PickState:
    """Per-solve user-selection state, maintained by ``_commit``.

    ``window_mask[j, k]`` — instant ``j`` lies in user ``k``'s presence
    window (static); ``user_key[k] = arrival_rank[k] - remaining[k]·U``
    (the integer encoding of the (-remaining, arrival, index) selection
    key); ``budget_ok[k]`` — user ``k`` still has budget.
    """

    window_mask: np.ndarray
    user_key: np.ndarray
    budget_ok: np.ndarray


def argmax_tied_low(values: np.ndarray) -> int:
    """Index of the maximum, breaking exact ties toward the lowest index.

    The explicit tie-break contract every scheduling loop uses: it makes
    re-runs, the lazy/naive variants and the numpy/reference backends
    agree on which of several equally good instants is picked. (This is
    what ``np.argmax`` does — first occurrence — but the contract is
    load-bearing for the differential tests, so it lives behind a name
    with a regression test rather than an implementation detail.)
    """
    return int(np.argmax(values))


class GreedyScheduler:
    """Greedy maximization of coverage over the budget partition matroid.

    ``min_gain`` stops the loop once the best marginal coverage falls
    below it: scheduling a measurement that adds (numerically) nothing
    would only burn a phone's budget and battery. Set it to 0 to run the
    matroid to a basis like the paper's literal while-condition.
    """

    def __init__(
        self,
        *,
        lazy: bool = True,
        min_gain: float = 1e-12,
        backend: str = DEFAULT_BACKEND,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.lazy = lazy
        self.min_gain = min_gain
        self.backend = backend
        self.metrics = metrics if metrics is not None else get_metrics()
        # Evaluation counts are accumulated locally inside the loops and
        # reported once per solve, so instrumentation stays off the
        # per-iteration hot path.
        self._m_evaluations = self.metrics.counter(
            "sor_greedy_evaluations_total",
            "marginal-gain evaluations performed by GreedyScheduler.solve",
            labels=("strategy",),
        )
        self._m_selected = self.metrics.counter(
            "sor_greedy_instants_selected_total",
            "instants committed to schedules by GreedyScheduler.solve",
        )
        self._m_coverage = self.metrics.gauge(
            "sor_greedy_coverage",
            "average coverage achieved by the most recent solve",
        )

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def solve(self, problem: SchedulingProblem) -> Schedule:
        """Compute a schedule for every user of ``problem``."""
        objective = make_objective(problem.period, problem.kernel, self.backend)
        num_users = len(problem.users)
        remaining = np.array(
            [user.budget for user in problem.users], dtype=np.int64
        )
        # Per-user window bounds and arrivals as arrays: _pick_user is a
        # handful of vector ops instead of a Python loop over users.
        user_lo = np.empty(num_users, dtype=np.int64)
        user_hi = np.empty(num_users, dtype=np.int64)
        for user_index in range(num_users):
            user_lo[user_index], user_hi[user_index] = problem.user_window(
                user_index
            )
        # Encode the user-selection key (-remaining, arrival, index) into
        # one integer per user: arrival_rank orders (arrival, index)
        # pairs, and remaining shifts by num_users per unit, so an
        # argmin over ``arrival_rank - remaining * num_users`` picks the
        # same user as the lexicographic minimum. The key array is
        # maintained incrementally by _commit (+num_users per pick), and
        # window membership is precomputed per instant, leaving
        # _pick_user a mask, a where and an argmin.
        arrivals = np.array([user.arrival for user in problem.users])
        arrival_order = np.lexsort((np.arange(num_users), arrivals))
        arrival_rank = np.empty(num_users, dtype=np.int64)
        arrival_rank[arrival_order] = np.arange(num_users)
        window_mask = np.zeros(
            (problem.period.num_instants, num_users), dtype=bool
        )
        for user_index in range(num_users):
            window_mask[user_lo[user_index] : user_hi[user_index], user_index] = True
        pick_state = _PickState(
            window_mask=window_mask,
            user_key=arrival_rank - remaining * num_users,
            budget_ok=remaining > 0,
        )
        # available[j] = number of users that could still take instant j.
        available = np.zeros(problem.period.num_instants, dtype=np.int64)
        for user_index in range(num_users):
            if remaining[user_index] > 0:
                available[user_lo[user_index] : user_hi[user_index]] += 1
        assigned: dict[int, set[int]] = {
            user_index: set() for user_index in range(num_users)
        }
        if self.lazy and not getattr(objective, "maintains_gains", False):
            evaluations = self._run_lazy(
                problem, objective, pick_state, remaining, available, assigned
            )
        else:
            evaluations = self._run_argmax(
                problem,
                objective,
                pick_state,
                remaining,
                available,
                assigned,
                dense=self.lazy,
            )
        schedule = Schedule(
            problem=problem,
            assignments={
                problem.users[user_index].user_id: sorted(instants)
                for user_index, instants in assigned.items()
            },
            objective_value=objective.value(),
        )
        schedule.validate()
        self._m_evaluations.inc(
            evaluations, strategy="lazy" if self.lazy else "naive"
        )
        self._m_selected.inc(sum(len(instants) for instants in assigned.values()))
        self._m_coverage.set(schedule.average_coverage)
        return schedule

    def matroid_for(self, problem: SchedulingProblem) -> BudgetPartitionMatroid:
        """The partition matroid over (user, instant) pairs for ``problem``."""
        return BudgetPartitionMatroid(
            capacities={
                user_index: user.budget
                for user_index, user in enumerate(problem.users)
            },
            part_of=lambda element: element[0],
        )

    # ------------------------------------------------------------------
    # user selection
    # ------------------------------------------------------------------
    @staticmethod
    def _pick_user(
        pick_state: _PickState,
        instant_index: int,
        assigned: dict[int, set[int]],
        pooled: set[int],
    ) -> int | None:
        """The feasible user with the most remaining budget, or None.

        Feasible: window contains the instant, budget remaining, instant
        not already assigned to them. Ties break toward earlier arrival
        then user order — min of the key (-remaining, arrival, index),
        encoded as the single maintained integer ``user_key``
        (``arrival_rank < U``, so any budget difference dominates any
        rank difference) and resolved with one argmin.
        """
        feasible = pick_state.window_mask[instant_index] & pick_state.budget_ok
        if instant_index in pooled:
            # Only instants already in the pooled set can be held by a
            # user; checking membership per feasible user is the rare
            # path (re-picking an already-chosen instant).
            for user_index in np.flatnonzero(feasible):
                if instant_index in assigned[int(user_index)]:
                    feasible[user_index] = False
        key = np.where(feasible, pick_state.user_key, _INFEASIBLE_KEY)
        winner = int(np.argmin(key))
        if not feasible[winner]:
            return None
        return winner

    def _commit(
        self,
        problem: SchedulingProblem,
        objective: AnyCoverageObjective,
        pick_state: _PickState,
        instant_index: int,
        user_index: int,
        remaining: np.ndarray,
        available: np.ndarray,
        assigned: dict[int, set[int]],
        pooled: set[int],
    ) -> bool:
        """Commit a pick; True iff ``available`` changed (user exhausted)."""
        objective.add(instant_index)
        assigned[user_index].add(instant_index)
        pooled.add(instant_index)
        remaining[user_index] -= 1
        pick_state.user_key[user_index] += pick_state.budget_ok.shape[0]
        if remaining[user_index] == 0:
            pick_state.budget_ok[user_index] = False
            lo, hi = problem.user_window(user_index)
            available[lo:hi] -= 1
            return True
        return False

    # ------------------------------------------------------------------
    # argmax loop (paper-literal, and the dense maintained-gains path)
    # ------------------------------------------------------------------
    def _run_argmax(
        self,
        problem: SchedulingProblem,
        objective: AnyCoverageObjective,
        pick_state: _PickState,
        remaining: np.ndarray,
        available: np.ndarray,
        assigned: dict[int, set[int]],
        *,
        dense: bool,
    ) -> int:
        """Masked argmax per pick; returns the number of gain evaluations.

        ``dense=False`` is the paper-literal loop: every instant's gain
        is (re)computed each iteration via ``gains_all`` and counted as
        an evaluation. ``dense=True`` reads the objective's maintained
        gains array in place — nothing is re-evaluated, so only the one
        committed read per pick is counted.
        """
        evaluations = 0
        pooled: set[int] = set()
        # ``available`` only changes when a user's budget empties
        # (_commit reports it), so the feasibility mask is refreshed on
        # that signal instead of being recomputed every pick.
        feasible_mask = available > 0
        while True:
            if dense:
                gains = objective.current_gains
                evaluations += 1
            else:
                gains = objective.gains_all()
                evaluations += problem.period.num_instants
            masked = np.where(feasible_mask, gains, -np.inf)
            best = argmax_tied_low(masked)
            if masked[best] < self.min_gain:
                return evaluations
            user_index = self._pick_user(pick_state, best, assigned, pooled)
            if user_index is not None:
                if self._commit(
                    problem,
                    objective,
                    pick_state,
                    best,
                    user_index,
                    remaining,
                    available,
                    assigned,
                    pooled,
                ):
                    feasible_mask = available > 0
                continue
            # The top instant's holders are exhausted — walk candidates
            # best-first until one has a user that can actually take it.
            # The stable argsort keeps exact ties in ascending-index
            # order, extending the same lowest-index tie-break to the
            # fallback candidates.
            order = np.argsort(-masked, kind="stable")
            committed = False
            for candidate in order:
                if not feasible_mask[candidate]:
                    break  # -inf region reached; nothing feasible left
                if masked[candidate] < self.min_gain:
                    return evaluations
                user_index = self._pick_user(
                    pick_state, int(candidate), assigned, pooled
                )
                if user_index is not None:
                    if self._commit(
                        problem,
                        objective,
                        pick_state,
                        int(candidate),
                        user_index,
                        remaining,
                        available,
                        assigned,
                        pooled,
                    ):
                        feasible_mask = available > 0
                    committed = True
                    break
            if not committed:
                return evaluations

    # ------------------------------------------------------------------
    # lazy-heap loop
    # ------------------------------------------------------------------
    def _run_lazy(
        self,
        problem: SchedulingProblem,
        objective: AnyCoverageObjective,
        pick_state: _PickState,
        remaining: np.ndarray,
        available: np.ndarray,
        assigned: dict[int, set[int]],
    ) -> int:
        """Lazy-heap loop; returns the number of gain (re-)evaluations."""
        num_instants = problem.period.num_instants
        pooled: set[int] = set()
        gains = objective.gains_all()
        evaluations = num_instants  # the initial full sweep
        # Heap entries: (-gain, instant). Stale entries are re-evaluated
        # on pop; submodularity guarantees true gains never exceed stale
        # ones, so the first up-to-date top is the argmax. Tie-break on
        # instant index matches np.argmax in the naive loop.
        heap: list[tuple[float, int]] = [
            (-gains[instant], instant)
            for instant in range(num_instants)
            if available[instant] > 0
        ]
        heapq.heapify(heap)
        budget_left = int(remaining.sum())
        while budget_left > 0 and heap:
            negative_gain, instant_index = heapq.heappop(heap)
            if available[instant_index] <= 0:
                continue
            current_gain = objective.gain(instant_index)
            evaluations += 1
            if heap:
                next_key, next_index = heap[0]
                if -current_gain > next_key:
                    # Stale and no longer the best — push back and retry.
                    # Submodularity guarantees fresh gains never exceed
                    # stale keys, so the first up-to-date top is the max.
                    heapq.heappush(heap, (-current_gain, instant_index))
                    continue
                if -current_gain == next_key and next_index < instant_index:
                    # Exact tie: defer to the lower index, matching the
                    # naive variant's stable argsort tie-break.
                    heapq.heappush(heap, (-current_gain, instant_index))
                    continue
            if current_gain < self.min_gain:
                return evaluations
            user_index = self._pick_user(
                pick_state, instant_index, assigned, pooled
            )
            if user_index is None:
                # Someone covers this instant but every holder already has
                # it; it cannot be scheduled again, drop it permanently
                # (pooled gain of a chosen instant is 0 anyway).
                continue
            self._commit(
                problem,
                objective,
                pick_state,
                instant_index,
                user_index,
                remaining,
                available,
                assigned,
                pooled,
            )
            budget_left -= 1
        return evaluations


def brute_force_optimal(
    problem: SchedulingProblem, *, backend: str = DEFAULT_BACKEND
) -> tuple[float, Schedule]:
    """Exact optimum by exhaustive search (tiny instances only).

    Enumerates pooled instant sets together with a feasibility check via
    b-matching (greedy works here because the constraint is a partition
    matroid per user over disjoint slots — we verify assignability with
    Hall-style bipartite matching).
    """
    num_instants = problem.period.num_instants
    total_budget = problem.total_budget()
    if num_instants > 16:
        raise SchedulingError("brute force limited to at most 16 instants")

    def assignable(instants: tuple[int, ...]) -> bool:
        # Bipartite matching instants → users (each user up to budget).
        # Small sizes: simple augmenting-path matching on expanded slots.
        slots: list[int] = []  # slot -> user index
        for user_index, user in enumerate(problem.users):
            slots.extend([user_index] * user.budget)
        slot_of: list[int | None] = [None] * len(slots)

        def augment(instant: int, seen: set[int]) -> bool:
            for slot_index, slot_user in enumerate(slots):
                if slot_index in seen:
                    continue
                if not problem.user_can_sense_at(slot_user, instant):
                    continue
                seen.add(slot_index)
                if slot_of[slot_index] is None or augment(slot_of[slot_index], seen):
                    slot_of[slot_index] = instant
                    return True
            return False

        return all(augment(instant, set()) for instant in instants)

    best_value = -1.0
    best_set: tuple[int, ...] = ()
    all_instants = range(num_instants)
    for size in range(0, min(total_budget, num_instants) + 1):
        for candidate in itertools.combinations(all_instants, size):
            if not assignable(candidate):
                continue
            value = coverage_of_instants(
                problem.period, problem.kernel, set(candidate), backend
            )
            if value > best_value + 1e-12:
                best_value = value
                best_set = candidate
    # Rebuild one witness assignment for the best set.
    schedule = Schedule(problem=problem, objective_value=best_value)
    remaining = [user.budget for user in problem.users]
    assignments: dict[str, list[int]] = {user.user_id: [] for user in problem.users}
    for instant in best_set:
        for user_index, user in enumerate(problem.users):
            if remaining[user_index] > 0 and problem.user_can_sense_at(
                user_index, instant
            ):
                assignments[user.user_id].append(instant)
                remaining[user_index] -= 1
                break
    schedule.assignments = {
        user_id: sorted(instants) for user_id, instants in assignments.items()
    }
    return best_value, schedule
