"""The greedy scheduler (paper Algorithm 1) and a brute-force reference.

Algorithm 1: repeatedly add the time instant with the maximum incremental
coverage, as long as some user with remaining budget can take it; stop
when no user can be scheduled further. Because the objective is monotone
submodular and the constraint a (partition) matroid, greedy achieves at
least half the optimum [paper ref 10].

Three execution modes; the first two produce **identical** schedules:

* ``mode="argmax"`` (``lazy=False``) — the paper's O(N²) loop:
  recompute every instant's gain each iteration and take the argmax,
* ``mode="lazy"`` (``lazy=True``, default) — accelerated evaluation.
  On the reference backend this is the classic lazy max-heap: keep
  stale gains and only re-evaluate the top, valid because marginal
  gains only decrease as the solution grows (submodularity). On the
  numpy backend the objective *maintains* its gains array incrementally
  (``maintains_gains``), so re-evaluation is free and the heap is pure
  overhead — the accelerated path is a dense masked argmax per pick
  over the maintained array.
* ``mode="stochastic"`` — stochastic greedy (Mirzasoleiman et al.'s
  "lazier than lazy greedy", applied to sensor scheduling by Hashemi
  et al., arXiv:1709.08823): each pick draws
  ``s = ⌈(|T|/B)·ln(1/ε)⌉`` candidates uniformly from the feasible
  instants with an injected seeded rng and takes the best sampled
  gain — O(s) gain reads per pick instead of O(|T|), keeping the
  ``(1 − 1/e − ε)``-of-optimal guarantee *in expectation*. Exact under
  a fixed seed (the scaling bench and the hypothesis suite pin both
  determinism and value-within-ε), but NOT schedule-identical to the
  exact modes — use it when the horizon is too long for a dense sweep
  per pick (≳10⁴ instants; see docs/SCHEDULING.md). A dry sample
  (every sampled gain below ``min_gain``) falls back to one exact
  masked sweep, so the loop terminates exactly when exact greedy
  would and never stops early on an unlucky draw.

The exact variants read the same maintained/recomputed gain values and
break exact ties toward the lower instant index, so their outputs match
bitwise within and across backends. The stochastic mode is exactly
deterministic under a fixed seed *within* a backend, but its schedules
are not guaranteed identical across backends: the numpy backend scores
sampled candidates with one BLAS dot per window (accumulation order
differs from the fold tree by ~1 ulp — see ``CoverageObjective.
gains_at``) and breaks exact ties toward the first-drawn candidate,
while the reference backend walks a sorted, deduplicated sample with
fold-order gains.

Both strategies run on either coverage backend (``backend="numpy"`` —
the vectorized default — or ``"reference"``, the scalar specification;
see docs/SCHEDULING.md). The differential tests pin the two backends to
identical schedules.

User assignment: when an instant is selected, it is given to the
feasible user (window contains the instant, budget remaining, instant
not already assigned to them) with the most remaining budget, breaking
ties toward earlier arrival then user order. This spreads load across
users — the paper's fairness goal ("prevent certain mobile users from
being abused").
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass

import numpy as np

from repro.common.errors import SchedulingError
from repro.core.scheduling.matroid import BudgetPartitionMatroid
from repro.core.scheduling.objective import (
    DEFAULT_BACKEND,
    CoverageObjective,
    ReferenceCoverageObjective,
    coverage_of_instants,
    make_objective,
)
from repro.core.scheduling.problem import Schedule, SchedulingProblem
from repro.obs import MetricsRegistry, get_metrics

AnyCoverageObjective = CoverageObjective | ReferenceCoverageObjective

#: The selectable greedy execution modes.
GREEDY_MODES = ("lazy", "argmax", "stochastic")

#: Sentinel key for infeasible users in the `_pick_user` argmin.
_INFEASIBLE_KEY = np.iinfo(np.int64).max


def stochastic_sample_size(
    num_candidates: int, total_budget: int, epsilon: float
) -> int:
    """Per-pick sample size ``⌈(N/B)·ln(1/ε)⌉``, clamped to [1, N].

    The stochastic-greedy bound: drawing this many uniform candidates
    per pick keeps the expected value within ``(1 − 1/e − ε)`` of
    optimal (Mirzasoleiman et al. 2015; Hashemi et al.,
    arXiv:1709.08823, for the scheduling setting). A non-positive
    budget degenerates to the full candidate count.
    """
    if num_candidates <= 0:
        return 0
    if total_budget <= 0:
        return num_candidates
    size = math.ceil(
        (num_candidates / total_budget) * math.log(1.0 / epsilon)
    )
    return int(max(1, min(num_candidates, size)))


@dataclass
class _PickState:
    """Per-solve user-selection state, maintained by ``_commit``.

    ``window_mask[j, k]`` — instant ``j`` lies in user ``k``'s presence
    window (static); ``user_key[k] = arrival_rank[k] - remaining[k]·U``
    (the integer encoding of the (-remaining, arrival, index) selection
    key); ``budget_ok[k]`` — user ``k`` still has budget.
    """

    window_mask: np.ndarray
    user_key: np.ndarray
    budget_ok: np.ndarray


def argmax_tied_low(values: np.ndarray) -> int:
    """Index of the maximum, breaking exact ties toward the lowest index.

    The explicit tie-break contract every scheduling loop uses: it makes
    re-runs, the lazy/naive variants and the numpy/reference backends
    agree on which of several equally good instants is picked. (This is
    what ``np.argmax`` does — first occurrence — but the contract is
    load-bearing for the differential tests, so it lives behind a name
    with a regression test rather than an implementation detail.)
    """
    return int(np.asarray(values).argmax())


class GreedyScheduler:
    """Greedy maximization of coverage over the budget partition matroid.

    ``min_gain`` stops the loop once the best marginal coverage falls
    below it: scheduling a measurement that adds (numerically) nothing
    would only burn a phone's budget and battery. Set it to 0 to run the
    matroid to a basis like the paper's literal while-condition.

    ``mode`` selects the execution strategy (``"lazy"``, ``"argmax"``
    or ``"stochastic"``; see the module docstring) and wins over the
    older ``lazy`` boolean when both are given. The stochastic mode
    samples with ``rng`` if injected, else a fresh
    ``np.random.default_rng(seed)`` per solve — so a scheduler object
    re-solved with the same seed is exactly deterministic, while an
    injected generator advances across solves under the caller's
    control. ``sample_epsilon`` is the ε of the sample-size formula
    (smaller ε → larger samples → tighter guarantee).

    ``representation`` threads through to the numpy objective's
    kernel-matrix layout (banded by default; dense only for the
    differential suite).
    """

    def __init__(
        self,
        *,
        lazy: bool = True,
        min_gain: float = 1e-12,
        backend: str = DEFAULT_BACKEND,
        metrics: MetricsRegistry | None = None,
        mode: str | None = None,
        sample_epsilon: float = 0.1,
        seed: int = 2014,
        rng: np.random.Generator | None = None,
        representation: str | None = None,
    ) -> None:
        if mode is None:
            mode = "lazy" if lazy else "argmax"
        if mode not in GREEDY_MODES:
            raise SchedulingError(
                f"unknown greedy mode {mode!r}; expected one of {GREEDY_MODES}"
            )
        if not 0.0 < sample_epsilon < 1.0:
            raise SchedulingError(
                f"sample_epsilon must be in (0, 1), got {sample_epsilon!r}"
            )
        self.mode = mode
        #: Back-compat view of ``mode``: every non-argmax mode uses
        #: accelerated evaluation.
        self.lazy = mode != "argmax"
        self.min_gain = min_gain
        self.backend = backend
        self.sample_epsilon = sample_epsilon
        self.seed = seed
        self.rng = rng
        self.representation = representation
        self.metrics = metrics if metrics is not None else get_metrics()
        # Evaluation counts are accumulated locally inside the loops and
        # reported once per solve, so instrumentation stays off the
        # per-iteration hot path.
        self._m_evaluations = self.metrics.counter(
            "sor_greedy_evaluations_total",
            "marginal-gain evaluations performed by GreedyScheduler.solve",
            labels=("strategy",),
        )
        self._m_selected = self.metrics.counter(
            "sor_greedy_instants_selected_total",
            "instants committed to schedules by GreedyScheduler.solve",
        )
        self._m_coverage = self.metrics.gauge(
            "sor_greedy_coverage",
            "average coverage achieved by the most recent solve",
        )
        self._m_samples = self.metrics.counter(
            "sor_greedy_stochastic_samples_total",
            "candidate draws made by the stochastic greedy sampler",
        )
        self._m_fallbacks = self.metrics.counter(
            "sor_greedy_stochastic_fallbacks_total",
            "dry stochastic samples resolved by an exact masked sweep",
        )

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def solve(self, problem: SchedulingProblem) -> Schedule:
        """Compute a schedule for every user of ``problem``."""
        objective_kwargs = (
            {"representation": self.representation}
            if self.representation is not None
            else {}
        )
        if self.mode == "stochastic":
            # The sampling loop only scores O((N/B)·log(1/ε)) candidates
            # per pick via the batched ``gains_at``, so the numpy
            # backend's per-add full-band gains maintenance would be
            # pure overhead — turn it off.
            objective_kwargs["maintain_gains"] = False
        objective = make_objective(
            problem.period, problem.kernel, self.backend, **objective_kwargs
        )
        num_users = len(problem.users)
        remaining = np.array(
            [user.budget for user in problem.users], dtype=np.int64
        )
        # Per-user window bounds and arrivals as arrays: _pick_user is a
        # handful of vector ops instead of a Python loop over users.
        user_lo = np.empty(num_users, dtype=np.int64)
        user_hi = np.empty(num_users, dtype=np.int64)
        for user_index in range(num_users):
            user_lo[user_index], user_hi[user_index] = problem.user_window(
                user_index
            )
        # Encode the user-selection key (-remaining, arrival, index) into
        # one integer per user: arrival_rank orders (arrival, index)
        # pairs, and remaining shifts by num_users per unit, so an
        # argmin over ``arrival_rank - remaining * num_users`` picks the
        # same user as the lexicographic minimum. The key array is
        # maintained incrementally by _commit (+num_users per pick), and
        # window membership is precomputed per instant, leaving
        # _pick_user a mask, a where and an argmin.
        arrivals = np.array([user.arrival for user in problem.users])
        arrival_order = np.lexsort((np.arange(num_users), arrivals))
        arrival_rank = np.empty(num_users, dtype=np.int64)
        arrival_rank[arrival_order] = np.arange(num_users)
        window_mask = np.zeros(
            (problem.period.num_instants, num_users), dtype=bool
        )
        for user_index in range(num_users):
            window_mask[user_lo[user_index] : user_hi[user_index], user_index] = True
        pick_state = _PickState(
            window_mask=window_mask,
            user_key=arrival_rank - remaining * num_users,
            budget_ok=remaining > 0,
        )
        # available[j] = number of users that could still take instant j.
        available = np.zeros(problem.period.num_instants, dtype=np.int64)
        for user_index in range(num_users):
            if remaining[user_index] > 0:
                available[user_lo[user_index] : user_hi[user_index]] += 1
        assigned: dict[int, set[int]] = {
            user_index: set() for user_index in range(num_users)
        }
        if self.mode == "stochastic":
            rng = (
                self.rng
                if self.rng is not None
                else np.random.default_rng(self.seed)
            )
            evaluations = self._run_stochastic(
                problem, objective, pick_state, remaining, available, assigned,
                rng,
            )
        elif self.lazy and not getattr(objective, "maintains_gains", False):
            evaluations = self._run_lazy(
                problem, objective, pick_state, remaining, available, assigned
            )
        else:
            evaluations = self._run_argmax(
                problem,
                objective,
                pick_state,
                remaining,
                available,
                assigned,
                dense=self.lazy,
            )
        schedule = Schedule(
            problem=problem,
            assignments={
                problem.users[user_index].user_id: sorted(instants)
                for user_index, instants in assigned.items()
            },
            objective_value=objective.value(),
        )
        schedule.validate()
        strategy = {"lazy": "lazy", "argmax": "naive"}.get(self.mode, self.mode)
        self._m_evaluations.inc(evaluations, strategy=strategy)
        self._m_selected.inc(sum(len(instants) for instants in assigned.values()))
        self._m_coverage.set(schedule.average_coverage)
        return schedule

    def matroid_for(self, problem: SchedulingProblem) -> BudgetPartitionMatroid:
        """The partition matroid over (user, instant) pairs for ``problem``."""
        return BudgetPartitionMatroid(
            capacities={
                user_index: user.budget
                for user_index, user in enumerate(problem.users)
            },
            part_of=lambda element: element[0],
        )

    # ------------------------------------------------------------------
    # user selection
    # ------------------------------------------------------------------
    @staticmethod
    def _pick_user(
        pick_state: _PickState,
        instant_index: int,
        assigned: dict[int, set[int]],
        pooled: set[int],
    ) -> int | None:
        """The feasible user with the most remaining budget, or None.

        Feasible: window contains the instant, budget remaining, instant
        not already assigned to them. Ties break toward earlier arrival
        then user order — min of the key (-remaining, arrival, index),
        encoded as the single maintained integer ``user_key``
        (``arrival_rank < U``, so any budget difference dominates any
        rank difference) and resolved with one argmin.
        """
        feasible = pick_state.window_mask[instant_index] & pick_state.budget_ok
        if instant_index in pooled:
            # Only instants already in the pooled set can be held by a
            # user; checking membership per feasible user is the rare
            # path (re-picking an already-chosen instant).
            for user_index in np.flatnonzero(feasible):
                if instant_index in assigned[int(user_index)]:
                    feasible[user_index] = False
        key = np.where(feasible, pick_state.user_key, _INFEASIBLE_KEY)
        winner = int(np.argmin(key))
        if not feasible[winner]:
            return None
        return winner

    def _commit(
        self,
        problem: SchedulingProblem,
        objective: AnyCoverageObjective,
        pick_state: _PickState,
        instant_index: int,
        user_index: int,
        remaining: np.ndarray,
        available: np.ndarray,
        assigned: dict[int, set[int]],
        pooled: set[int],
    ) -> bool:
        """Commit a pick; True iff ``available`` changed (user exhausted)."""
        objective.add(instant_index)
        assigned[user_index].add(instant_index)
        pooled.add(instant_index)
        remaining[user_index] -= 1
        pick_state.user_key[user_index] += pick_state.budget_ok.shape[0]
        if remaining[user_index] == 0:
            pick_state.budget_ok[user_index] = False
            lo, hi = problem.user_window(user_index)
            available[lo:hi] -= 1
            return True
        return False

    # ------------------------------------------------------------------
    # argmax loop (paper-literal, and the dense maintained-gains path)
    # ------------------------------------------------------------------
    def _run_argmax(
        self,
        problem: SchedulingProblem,
        objective: AnyCoverageObjective,
        pick_state: _PickState,
        remaining: np.ndarray,
        available: np.ndarray,
        assigned: dict[int, set[int]],
        *,
        dense: bool,
    ) -> int:
        """Masked argmax per pick; returns the number of gain evaluations.

        ``dense=False`` is the paper-literal loop: every instant's gain
        is (re)computed each iteration via ``gains_all`` and counted as
        an evaluation. ``dense=True`` reads the objective's maintained
        gains array in place — nothing is re-evaluated, so only the one
        committed read per pick is counted.
        """
        evaluations = 0
        pooled: set[int] = set()
        # ``available`` only changes when a user's budget empties
        # (_commit reports it), so the feasibility mask is refreshed on
        # that signal instead of being recomputed every pick.
        feasible_mask = available > 0
        while True:
            if dense:
                gains = objective.current_gains
                evaluations += 1
            else:
                gains = objective.gains_all()
                evaluations += problem.period.num_instants
            masked = np.where(feasible_mask, gains, -np.inf)
            best = argmax_tied_low(masked)
            if masked[best] < self.min_gain:
                return evaluations
            user_index = self._pick_user(pick_state, best, assigned, pooled)
            if user_index is not None:
                if self._commit(
                    problem,
                    objective,
                    pick_state,
                    best,
                    user_index,
                    remaining,
                    available,
                    assigned,
                    pooled,
                ):
                    feasible_mask = available > 0
                continue
            # The top instant's holders are exhausted — walk candidates
            # best-first until one has a user that can actually take it.
            # The stable argsort keeps exact ties in ascending-index
            # order, extending the same lowest-index tie-break to the
            # fallback candidates.
            order = np.argsort(-masked, kind="stable")
            committed = False
            for candidate in order:
                if not feasible_mask[candidate]:
                    break  # -inf region reached; nothing feasible left
                if masked[candidate] < self.min_gain:
                    return evaluations
                user_index = self._pick_user(
                    pick_state, int(candidate), assigned, pooled
                )
                if user_index is not None:
                    if self._commit(
                        problem,
                        objective,
                        pick_state,
                        int(candidate),
                        user_index,
                        remaining,
                        available,
                        assigned,
                        pooled,
                    ):
                        feasible_mask = available > 0
                    committed = True
                    break
            if not committed:
                return evaluations

    # ------------------------------------------------------------------
    # stochastic-sampling loop
    # ------------------------------------------------------------------
    def _run_stochastic(
        self,
        problem: SchedulingProblem,
        objective: AnyCoverageObjective,
        pick_state: _PickState,
        remaining: np.ndarray,
        available: np.ndarray,
        assigned: dict[int, set[int]],
        rng: np.random.Generator,
    ) -> int:
        """Stochastic-greedy loop; returns the number of gain evaluations.

        Per pick: draw ``s = ⌈(N/B)·ln(1/ε)⌉`` uniform candidates from
        the feasible instants (with replacement — the coupon-style bound
        ``P(sample misses the top set) ≤ (1 − k/N)^s`` holds verbatim,
        and an O(s) draw keeps the pick cost independent of the
        horizon), score them in one batched ``gains_at`` call (numpy
        backend) or one ``objective.gain`` call per distinct candidate
        (reference), and commit the best sampled gain to the user with
        the most remaining budget. Only when that single best candidate
        has no free user does the pick fall back to a best-first walk
        over the rest of the sample. A dry sample — nothing drawn
        clears ``min_gain`` or has a free user — falls back to one
        exact masked sweep: stop if the true best is below ``min_gain``
        (exact greedy would stop here too), else commit it. The
        fallback preserves termination and can only raise the achieved
        value, so the ``(1 − 1/e − ε)`` expectation bound is untouched.
        """
        num_instants = problem.period.num_instants
        maintained = getattr(objective, "maintains_gains", False)
        # The numpy backend scores an arbitrary candidate set in one
        # banded matvec (duplicates from the with-replacement draw are
        # scored twice — cheaper than deduplicating); the reference
        # backend pays a scalar ``gain()`` per candidate, so that path
        # deduplicates first.
        gains_at = getattr(objective, "gains_at", None)
        pooled: set[int] = set()
        evaluations = 0
        samples_drawn = 0
        fallbacks = 0
        budget_left = int(remaining.sum())
        sample_size = stochastic_sample_size(
            num_instants, budget_left, self.sample_epsilon
        )
        feasible_mask = available > 0
        feasible_indices = np.flatnonzero(feasible_mask)
        # Draws are taken in chunks of up to 32 picks: one
        # ``rng.integers`` call per chunk instead of per pick (the
        # generator's per-call overhead is comparable to the whole rest
        # of a pick). The feasible pool only shrinks when a user's
        # budget empties, so a chunk stays valid until the next refresh;
        # unconsumed rows are then discarded (the schedule remains a
        # deterministic function of the seed — only the mapping from
        # stream to picks changes).
        draw_chunk: np.ndarray | None = None
        draw_row = 0
        while budget_left > 0 and feasible_indices.size:
            if draw_chunk is None or draw_row >= draw_chunk.shape[0]:
                draw_chunk = rng.integers(
                    0,
                    feasible_indices.size,
                    size=(
                        max(1, min(32, budget_left)),
                        min(sample_size, int(feasible_indices.size)),
                    ),
                )
                draw_row = 0
            draws = draw_chunk[draw_row]
            draw_row += 1
            candidates = feasible_indices[draws]
            if gains_at is not None:
                gains = gains_at(candidates)
            else:
                # np.unique also sorts ascending, giving this path a
                # lowest-index tie-break under argmax_tied_low.
                candidates = np.unique(candidates)
                if maintained:
                    gains = objective.current_gains[candidates]
                else:
                    gains = np.array(
                        [objective.gain(int(c)) for c in candidates]
                    )
            samples_drawn += int(draws.size)
            evaluations += int(candidates.size)
            committed = False
            refresh = False
            # argmax_tied_low inlined (first occurrence = first drawn).
            best = int(gains.argmax())
            if gains[best] >= self.min_gain:
                user_index = self._pick_user(
                    pick_state, int(candidates[best]), assigned, pooled
                )
                if user_index is not None:
                    refresh = self._commit(
                        problem,
                        objective,
                        pick_state,
                        int(candidates[best]),
                        user_index,
                        remaining,
                        available,
                        assigned,
                        pooled,
                    )
                    budget_left -= 1
                    committed = True
                else:
                    # Rare: the sampled best has no free user — walk the
                    # rest of the sample best-first before giving up.
                    for position in np.argsort(-gains, kind="stable"):
                        if gains[position] < self.min_gain:
                            break
                        candidate = int(candidates[position])
                        user_index = self._pick_user(
                            pick_state, candidate, assigned, pooled
                        )
                        if user_index is None:
                            continue
                        refresh = self._commit(
                            problem,
                            objective,
                            pick_state,
                            candidate,
                            user_index,
                            remaining,
                            available,
                            assigned,
                            pooled,
                        )
                        budget_left -= 1
                        committed = True
                        break
            if not committed:
                fallbacks += 1
                if maintained:
                    gains_full = objective.current_gains
                    evaluations += 1
                else:
                    # One exact sweep (the numpy backend recomputes the
                    # whole band; the reference walks every instant).
                    gains_full = objective.gains_all()
                    evaluations += num_instants
                masked = np.where(feasible_mask, gains_full, -np.inf)
                for candidate in np.argsort(-masked, kind="stable"):
                    if (
                        not feasible_mask[candidate]
                        or masked[candidate] < self.min_gain
                    ):
                        break
                    user_index = self._pick_user(
                        pick_state, int(candidate), assigned, pooled
                    )
                    if user_index is not None:
                        refresh = self._commit(
                            problem,
                            objective,
                            pick_state,
                            int(candidate),
                            user_index,
                            remaining,
                            available,
                            assigned,
                            pooled,
                        )
                        budget_left -= 1
                        committed = True
                        break
                if not committed:
                    break  # nothing feasible clears min_gain anywhere
            if refresh:
                feasible_mask = available > 0
                feasible_indices = np.flatnonzero(feasible_mask)
                draw_chunk = None
        if samples_drawn:
            self._m_samples.inc(samples_drawn)
        if fallbacks:
            self._m_fallbacks.inc(fallbacks)
        return evaluations

    # ------------------------------------------------------------------
    # lazy-heap loop
    # ------------------------------------------------------------------
    def _run_lazy(
        self,
        problem: SchedulingProblem,
        objective: AnyCoverageObjective,
        pick_state: _PickState,
        remaining: np.ndarray,
        available: np.ndarray,
        assigned: dict[int, set[int]],
    ) -> int:
        """Lazy-heap loop; returns the number of gain (re-)evaluations."""
        num_instants = problem.period.num_instants
        pooled: set[int] = set()
        gains = objective.gains_all()
        evaluations = num_instants  # the initial full sweep
        # Heap entries: (-gain, instant). Stale entries are re-evaluated
        # on pop; submodularity guarantees true gains never exceed stale
        # ones, so the first up-to-date top is the argmax. Tie-break on
        # instant index matches np.argmax in the naive loop.
        heap: list[tuple[float, int]] = [
            (-gains[instant], instant)
            for instant in range(num_instants)
            if available[instant] > 0
        ]
        heapq.heapify(heap)
        budget_left = int(remaining.sum())
        while budget_left > 0 and heap:
            negative_gain, instant_index = heapq.heappop(heap)
            if available[instant_index] <= 0:
                continue
            current_gain = objective.gain(instant_index)
            evaluations += 1
            if heap:
                next_key, next_index = heap[0]
                if -current_gain > next_key:
                    # Stale and no longer the best — push back and retry.
                    # Submodularity guarantees fresh gains never exceed
                    # stale keys, so the first up-to-date top is the max.
                    heapq.heappush(heap, (-current_gain, instant_index))
                    continue
                if -current_gain == next_key and next_index < instant_index:
                    # Exact tie: defer to the lower index, matching the
                    # naive variant's stable argsort tie-break.
                    heapq.heappush(heap, (-current_gain, instant_index))
                    continue
            if current_gain < self.min_gain:
                return evaluations
            user_index = self._pick_user(
                pick_state, instant_index, assigned, pooled
            )
            if user_index is None:
                # Someone covers this instant but every holder already has
                # it; it cannot be scheduled again, drop it permanently
                # (pooled gain of a chosen instant is 0 anyway).
                continue
            self._commit(
                problem,
                objective,
                pick_state,
                instant_index,
                user_index,
                remaining,
                available,
                assigned,
                pooled,
            )
            budget_left -= 1
        return evaluations


def brute_force_optimal(
    problem: SchedulingProblem, *, backend: str = DEFAULT_BACKEND
) -> tuple[float, Schedule]:
    """Exact optimum by exhaustive search (tiny instances only).

    Enumerates pooled instant sets together with a feasibility check via
    b-matching (greedy works here because the constraint is a partition
    matroid per user over disjoint slots — we verify assignability with
    Hall-style bipartite matching).
    """
    num_instants = problem.period.num_instants
    total_budget = problem.total_budget()
    if num_instants > 16:
        raise SchedulingError("brute force limited to at most 16 instants")

    def assignable(instants: tuple[int, ...]) -> bool:
        # Bipartite matching instants → users (each user up to budget).
        # Small sizes: simple augmenting-path matching on expanded slots.
        slots: list[int] = []  # slot -> user index
        for user_index, user in enumerate(problem.users):
            slots.extend([user_index] * user.budget)
        slot_of: list[int | None] = [None] * len(slots)

        def augment(instant: int, seen: set[int]) -> bool:
            for slot_index, slot_user in enumerate(slots):
                if slot_index in seen:
                    continue
                if not problem.user_can_sense_at(slot_user, instant):
                    continue
                seen.add(slot_index)
                if slot_of[slot_index] is None or augment(slot_of[slot_index], seen):
                    slot_of[slot_index] = instant
                    return True
            return False

        return all(augment(instant, set()) for instant in instants)

    best_value = -1.0
    best_set: tuple[int, ...] = ()
    all_instants = range(num_instants)
    for size in range(0, min(total_budget, num_instants) + 1):
        for candidate in itertools.combinations(all_instants, size):
            if not assignable(candidate):
                continue
            value = coverage_of_instants(
                problem.period, problem.kernel, set(candidate), backend
            )
            if value > best_value + 1e-12:
                best_value = value
                best_set = candidate
    # Rebuild one witness assignment for the best set.
    schedule = Schedule(problem=problem, objective_value=best_value)
    remaining = [user.budget for user in problem.users]
    assignments: dict[str, list[int]] = {user.user_id: [] for user in problem.users}
    for instant in best_set:
        for user_index, user in enumerate(problem.users):
            if remaining[user_index] > 0 and problem.user_can_sense_at(
                user_index, instant
            ):
                assignments[user.user_id].append(instant)
                remaining[user_index] -= 1
                break
    schedule.assignments = {
        user_id: sorted(instants) for user_id, instants in assignments.items()
    }
    return best_value, schedule
