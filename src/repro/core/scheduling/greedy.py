"""The greedy scheduler (paper Algorithm 1) and a brute-force reference.

Algorithm 1: repeatedly add the time instant with the maximum incremental
coverage, as long as some user with remaining budget can take it; stop
when no user can be scheduled further. Because the objective is monotone
submodular and the constraint a (partition) matroid, greedy achieves at
least half the optimum [paper ref 10].

Two execution strategies produce **identical** schedules:

* ``lazy=False`` — the paper's O(N²) loop: recompute every instant's
  gain each iteration and take the argmax,
* ``lazy=True`` (default) — lazy evaluation: keep stale gains in a
  max-heap and only re-evaluate the top; valid because marginal gains
  only decrease as the solution grows (submodularity). Both variants
  compute gains with the same code path and break exact ties toward the
  lower instant index, so their outputs match bitwise.

User assignment: when an instant is selected, it is given to the
feasible user (window contains the instant, budget remaining, instant
not already assigned to them) with the most remaining budget, breaking
ties toward earlier arrival then user order. This spreads load across
users — the paper's fairness goal ("prevent certain mobile users from
being abused").
"""

from __future__ import annotations

import heapq
import itertools
import numpy as np

from repro.common.errors import SchedulingError
from repro.core.scheduling.matroid import BudgetPartitionMatroid
from repro.core.scheduling.objective import CoverageObjective, coverage_of_instants
from repro.core.scheduling.problem import Schedule, SchedulingProblem
from repro.obs import MetricsRegistry, get_metrics


class GreedyScheduler:
    """Greedy maximization of coverage over the budget partition matroid.

    ``min_gain`` stops the loop once the best marginal coverage falls
    below it: scheduling a measurement that adds (numerically) nothing
    would only burn a phone's budget and battery. Set it to 0 to run the
    matroid to a basis like the paper's literal while-condition.
    """

    def __init__(
        self,
        *,
        lazy: bool = True,
        min_gain: float = 1e-12,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.lazy = lazy
        self.min_gain = min_gain
        self.metrics = metrics if metrics is not None else get_metrics()
        # Evaluation counts are accumulated locally inside the loops and
        # reported once per solve, so instrumentation stays off the
        # per-iteration hot path.
        self._m_evaluations = self.metrics.counter(
            "sor_greedy_evaluations_total",
            "marginal-gain evaluations performed by GreedyScheduler.solve",
            labels=("strategy",),
        )
        self._m_selected = self.metrics.counter(
            "sor_greedy_instants_selected_total",
            "instants committed to schedules by GreedyScheduler.solve",
        )
        self._m_coverage = self.metrics.gauge(
            "sor_greedy_coverage",
            "average coverage achieved by the most recent solve",
        )

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def solve(self, problem: SchedulingProblem) -> Schedule:
        """Compute a schedule for every user of ``problem``."""
        objective = CoverageObjective(problem.period, problem.kernel)
        remaining = [user.budget for user in problem.users]
        # available[j] = number of users that could still take instant j.
        available = np.zeros(problem.period.num_instants, dtype=np.int64)
        for user_index in range(len(problem.users)):
            if remaining[user_index] > 0:
                lo, hi = problem.user_window(user_index)
                available[lo:hi] += 1
        assigned: dict[int, set[int]] = {
            user_index: set() for user_index in range(len(problem.users))
        }
        if self.lazy:
            evaluations = self._run_lazy(
                problem, objective, remaining, available, assigned
            )
        else:
            evaluations = self._run_naive(
                problem, objective, remaining, available, assigned
            )
        schedule = Schedule(
            problem=problem,
            assignments={
                problem.users[user_index].user_id: sorted(instants)
                for user_index, instants in assigned.items()
            },
            objective_value=objective.value(),
        )
        schedule.validate()
        self._m_evaluations.inc(
            evaluations, strategy="lazy" if self.lazy else "naive"
        )
        self._m_selected.inc(sum(len(instants) for instants in assigned.values()))
        self._m_coverage.set(schedule.average_coverage)
        return schedule

    def matroid_for(self, problem: SchedulingProblem) -> BudgetPartitionMatroid:
        """The partition matroid over (user, instant) pairs for ``problem``."""
        return BudgetPartitionMatroid(
            capacities={
                user_index: user.budget
                for user_index, user in enumerate(problem.users)
            },
            part_of=lambda element: element[0],
        )

    # ------------------------------------------------------------------
    # user selection
    # ------------------------------------------------------------------
    @staticmethod
    def _pick_user(
        problem: SchedulingProblem,
        instant_index: int,
        remaining: list[int],
        assigned: dict[int, set[int]],
    ) -> int | None:
        """The feasible user with the most remaining budget, or None."""
        best: int | None = None
        for user_index, user in enumerate(problem.users):
            if remaining[user_index] <= 0:
                continue
            if not problem.user_can_sense_at(user_index, instant_index):
                continue
            if instant_index in assigned[user_index]:
                continue
            if best is None:
                best = user_index
                continue
            current_key = (
                -remaining[user_index],
                problem.users[user_index].arrival,
                user_index,
            )
            best_key = (-remaining[best], problem.users[best].arrival, best)
            if current_key < best_key:
                best = user_index
        return best

    def _commit(
        self,
        problem: SchedulingProblem,
        objective: CoverageObjective,
        instant_index: int,
        user_index: int,
        remaining: list[int],
        available: np.ndarray,
        assigned: dict[int, set[int]],
    ) -> None:
        objective.add(instant_index)
        assigned[user_index].add(instant_index)
        remaining[user_index] -= 1
        if remaining[user_index] == 0:
            lo, hi = problem.user_window(user_index)
            available[lo:hi] -= 1

    # ------------------------------------------------------------------
    # naive (paper-literal) loop
    # ------------------------------------------------------------------
    def _run_naive(
        self,
        problem: SchedulingProblem,
        objective: CoverageObjective,
        remaining: list[int],
        available: np.ndarray,
        assigned: dict[int, set[int]],
    ) -> int:
        """Paper-literal loop; returns the number of gain evaluations."""
        evaluations = 0
        while True:
            gains = objective.gains_all()
            evaluations += problem.period.num_instants
            feasible_mask = available > 0
            if not feasible_mask.any():
                return evaluations
            masked = np.where(feasible_mask, gains, -np.inf)
            # Walk candidates best-first until one has a user that can
            # actually take it (a user may already hold the top instant).
            order = np.argsort(-masked, kind="stable")
            committed = False
            for candidate in order:
                if not feasible_mask[candidate]:
                    break  # -inf region reached; nothing feasible left
                if masked[candidate] < self.min_gain:
                    return evaluations
                user_index = self._pick_user(
                    problem, int(candidate), remaining, assigned
                )
                if user_index is not None:
                    self._commit(
                        problem,
                        objective,
                        int(candidate),
                        user_index,
                        remaining,
                        available,
                        assigned,
                    )
                    committed = True
                    break
            if not committed:
                return evaluations

    # ------------------------------------------------------------------
    # lazy-heap loop
    # ------------------------------------------------------------------
    def _run_lazy(
        self,
        problem: SchedulingProblem,
        objective: CoverageObjective,
        remaining: list[int],
        available: np.ndarray,
        assigned: dict[int, set[int]],
    ) -> int:
        """Lazy-heap loop; returns the number of gain (re-)evaluations."""
        num_instants = problem.period.num_instants
        gains = objective.gains_all()
        evaluations = num_instants  # the initial full sweep
        # Heap entries: (-gain, instant). Stale entries are re-evaluated
        # on pop; submodularity guarantees true gains never exceed stale
        # ones, so the first up-to-date top is the argmax. Tie-break on
        # instant index matches np.argmax in the naive loop.
        heap: list[tuple[float, int]] = [
            (-gains[instant], instant)
            for instant in range(num_instants)
            if available[instant] > 0
        ]
        heapq.heapify(heap)
        budget_left = sum(remaining)
        while budget_left > 0 and heap:
            negative_gain, instant_index = heapq.heappop(heap)
            if available[instant_index] <= 0:
                continue
            current_gain = objective.gain(instant_index)
            evaluations += 1
            if heap:
                next_key, next_index = heap[0]
                if -current_gain > next_key:
                    # Stale and no longer the best — push back and retry.
                    # Submodularity guarantees fresh gains never exceed
                    # stale keys, so the first up-to-date top is the max.
                    heapq.heappush(heap, (-current_gain, instant_index))
                    continue
                if -current_gain == next_key and next_index < instant_index:
                    # Exact tie: defer to the lower index, matching the
                    # naive variant's stable argsort tie-break.
                    heapq.heappush(heap, (-current_gain, instant_index))
                    continue
            if current_gain < self.min_gain:
                return evaluations
            user_index = self._pick_user(problem, instant_index, remaining, assigned)
            if user_index is None:
                # Someone covers this instant but every holder already has
                # it; it cannot be scheduled again, drop it permanently
                # (pooled gain of a chosen instant is 0 anyway).
                continue
            self._commit(
                problem, objective, instant_index, user_index, remaining, available, assigned
            )
            budget_left -= 1
        return evaluations


def brute_force_optimal(problem: SchedulingProblem) -> tuple[float, Schedule]:
    """Exact optimum by exhaustive search (tiny instances only).

    Enumerates pooled instant sets together with a feasibility check via
    b-matching (greedy works here because the constraint is a partition
    matroid per user over disjoint slots — we verify assignability with
    Hall-style bipartite matching).
    """
    num_instants = problem.period.num_instants
    total_budget = problem.total_budget()
    if num_instants > 16:
        raise SchedulingError("brute force limited to at most 16 instants")

    def assignable(instants: tuple[int, ...]) -> bool:
        # Bipartite matching instants → users (each user up to budget).
        # Small sizes: simple augmenting-path matching on expanded slots.
        slots: list[int] = []  # slot -> user index
        for user_index, user in enumerate(problem.users):
            slots.extend([user_index] * user.budget)
        slot_of: list[int | None] = [None] * len(slots)

        def augment(instant: int, seen: set[int]) -> bool:
            for slot_index, slot_user in enumerate(slots):
                if slot_index in seen:
                    continue
                if not problem.user_can_sense_at(slot_user, instant):
                    continue
                seen.add(slot_index)
                if slot_of[slot_index] is None or augment(slot_of[slot_index], seen):
                    slot_of[slot_index] = instant
                    return True
            return False

        return all(augment(instant, set()) for instant in instants)

    best_value = -1.0
    best_set: tuple[int, ...] = ()
    all_instants = range(num_instants)
    for size in range(0, min(total_budget, num_instants) + 1):
        for candidate in itertools.combinations(all_instants, size):
            if not assignable(candidate):
                continue
            value = coverage_of_instants(problem.period, problem.kernel, set(candidate))
            if value > best_value + 1e-12:
                best_value = value
                best_set = candidate
    # Rebuild one witness assignment for the best set.
    schedule = Schedule(problem=problem, objective_value=best_value)
    remaining = [user.budget for user in problem.users]
    assignments: dict[str, list[int]] = {user.user_id: [] for user in problem.users}
    for instant in best_set:
        for user_index, user in enumerate(problem.users):
            if remaining[user_index] > 0 and problem.user_can_sense_at(
                user_index, instant
            ):
                assignments[user.user_id].append(instant)
                remaining[user_index] -= 1
                break
    schedule.assignments = {
        user_id: sorted(instants) for user_id, instants in assignments.items()
    }
    return best_value, schedule
