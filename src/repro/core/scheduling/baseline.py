"""The paper's baseline scheduler (Section V-C).

"A simple scheduling algorithm served as the baseline: a mobile phone
starts to sense every 10 s since its arrival for N^B_k times." Readings
therefore cluster right after each user's arrival instead of spreading
over the period — which is exactly why the greedy scheduler beats it.
"""

from __future__ import annotations

from repro.common.validation import require_positive
from repro.core.scheduling.objective import DEFAULT_BACKEND, coverage_of_instants
from repro.core.scheduling.problem import Schedule, SchedulingProblem


class PeriodicBaselineScheduler:
    """Sense every ``interval_s`` seconds from arrival, budget times."""

    def __init__(
        self,
        interval_s: float = 10.0,
        *,
        clip_to_departure: bool = True,
        backend: str = DEFAULT_BACKEND,
    ) -> None:
        self.interval_s = require_positive(interval_s, "interval_s")
        self.clip_to_departure = clip_to_departure
        self.backend = backend

    def solve(self, problem: SchedulingProblem) -> Schedule:
        """Build the periodic schedule and evaluate its pooled coverage."""
        period = problem.period
        assignments: dict[str, list[int]] = {}
        for user_index, user in enumerate(problem.users):
            limit = min(user.departure, period.end) if self.clip_to_departure else period.end
            indices: list[int] = []
            seen: set[int] = set()
            for shot in range(user.budget):
                timestamp = user.arrival + shot * self.interval_s
                if timestamp > limit:
                    break
                instant_index = period.nearest_instant(timestamp)
                if not problem.user_can_sense_at(user_index, instant_index):
                    continue
                if instant_index in seen:
                    continue
                seen.add(instant_index)
                indices.append(instant_index)
            assignments[user.user_id] = sorted(indices)
        pooled = {index for indices in assignments.values() for index in indices}
        schedule = Schedule(
            problem=problem,
            assignments=assignments,
            objective_value=coverage_of_instants(
                period, problem.kernel, pooled, self.backend
            ),
        )
        schedule.validate()
        return schedule
