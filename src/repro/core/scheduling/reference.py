"""The scalar reference implementation of the coverage objective.

This module is the *specification*: a deliberately plain, loop-by-loop
transcription of the paper's equations (1) and (4) with no numpy in the
hot path. The vectorized backend in
:mod:`repro.core.scheduling.objective` is pinned to this code by the
differential tests (``tests/core/test_differential_scheduling.py``):
coverage values must agree to 1e-9 and greedy schedules must be
identical. Keep this implementation boring — its only jobs are to be
obviously correct and to stay importable as ``backend="reference"``.

Per instant ``j`` it maintains the survival product
``s_j = Π_{t_i∈Ψ}(1 - p_ij)`` directly (no log-space), truncating the
kernel at its support window exactly like the vectorized backend so the
two compute the same mathematical function.
"""

from __future__ import annotations

import math

import numpy as np

from repro.common.errors import KernelValidationError, SchedulingError
from repro.core.scheduling.coverage import CoverageKernel
from repro.core.scheduling.problem import SchedulingPeriod


def validate_kernel_weights(
    weights, kernel: CoverageKernel, spacing: float
) -> None:
    """Reject kernel probabilities the survival state cannot represent.

    ``weights[d]`` is the kernel's probability at distance ``d·spacing``.
    The diagonal (d = 0) may be exactly 1 — a measurement fully covers
    its own instant and the log-space state carries the resulting −inf
    deliberately. Off the diagonal a probability of 1 would make
    ``log1p(-p) = -inf`` too, silently zeroing every survival product it
    touches, so both backends require p ∈ [0, 1) there (and p ∈ [0, 1]
    at d = 0). NaN and out-of-range values raise
    :class:`~repro.common.errors.KernelValidationError` naming the
    kernel and the offending distance.
    """
    for distance_index, weight in enumerate(weights):
        weight = float(weight)
        in_range = (
            0.0 <= weight <= 1.0
            if distance_index == 0
            else 0.0 <= weight < 1.0
        )
        if not in_range:  # NaN compares False, so it lands here too
            raise KernelValidationError(
                f"kernel {kernel!r} returned probability {weight!r} at "
                f"distance {distance_index * spacing:g}s; coverage "
                f"probabilities must lie in [0, 1) off the diagonal "
                f"(and in [0, 1] at distance 0)"
            )


def fold_tree_sum(terms: list[float]) -> float:
    """Sum ``terms`` with the backend-contract reduction tree.

    Folds the tail half onto the head half (``terms[i] += terms[i +
    rest]`` with ``rest = n - n//2``) until one value remains. The tree
    depends only on ``len(terms)``, and both backends use it to reduce
    the per-distance gain terms: the scalar reference folds a Python
    list, the vectorized backend folds array rows — element for element
    the same float additions in the same order, which makes the two
    backends' marginal gains bitwise identical (the schedule-identity
    differential tests rest on this). Mutates ``terms``.
    """
    count = len(terms)
    while count > 1:
        half = count // 2
        rest = count - half
        for index in range(half):
            terms[index] += terms[index + rest]
        count = rest
    return terms[0]


class ReferenceCoverageObjective:
    """Pure-Python incremental pooled-coverage objective.

    Same interface as the vectorized
    :class:`~repro.core.scheduling.objective.CoverageObjective`: the
    greedy schedulers are written against this protocol and accept
    either backend.
    """

    backend = "reference"
    #: Gains are recomputed on demand — schedulers keep the lazy heap.
    maintains_gains = False

    def __init__(self, period: SchedulingPeriod, kernel: CoverageKernel) -> None:
        self.period = period
        self.kernel = kernel
        spacing = period.spacing
        window = int(math.ceil(kernel.support() / spacing))
        window = min(window, period.num_instants - 1)
        self.window = window
        # weights[d] = p(d · spacing), truncated at the support window —
        # identical truncation to the vectorized kernel matrix.
        self.weights = [kernel.probability(d * spacing) for d in range(window + 1)]
        validate_kernel_weights(self.weights, kernel, spacing)
        self.survival = [1.0] * period.num_instants
        self._chosen: set[int] = set()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def chosen(self) -> frozenset[int]:
        return frozenset(self._chosen)

    def value(self) -> float:
        """Current objective ``Σ_j (1 - s_j)``."""
        total = 0.0
        for survival in self.survival:
            total += 1.0 - survival
        return total

    def average_coverage(self) -> float:
        """Objective divided by N (the paper's reported metric)."""
        return self.value() / self.period.num_instants

    def coverage_profile(self) -> np.ndarray:
        """Per-instant coverage probabilities ``1 - s_j``."""
        return np.array([1.0 - survival for survival in self.survival])

    def gain(self, instant_index: int) -> float:
        """Marginal gain of adding ``instant_index`` to the current set.

        ``w_0·s_j + fold_d[w_d·(s_{j-d} + s_{j+d})]``: the support
        window is walked outward by distance, the two instants at each
        distance are paired as ``w_d · (s_left + s_right)``
        (out-of-range sides contribute exactly 0.0), and the distance
        terms are reduced with :func:`fold_tree_sum`. Pairing first
        makes mirror-symmetric survival profiles give bitwise-equal
        mirrored gains (float addition is commutative in rounding); the
        fixed fold tree makes this the exact per-element operation
        sequence of the vectorized backend's maintained gains — the
        properties the cross-backend schedule-identity tests lean on.
        """
        if instant_index in self._chosen:
            return 0.0
        num_instants = self.period.num_instants
        survival = self.survival
        weights = self.weights
        total = survival[instant_index] * weights[0]
        if self.window:
            terms = []
            for distance in range(1, self.window + 1):
                left = instant_index - distance
                right = instant_index + distance
                left_survival = survival[left] if left >= 0 else 0.0
                right_survival = survival[right] if right < num_instants else 0.0
                terms.append(weights[distance] * (left_survival + right_survival))
            total += fold_tree_sum(terms)
        return total

    def gains_all(self) -> np.ndarray:
        """Marginal gains of every instant (instant-by-instant)."""
        return np.array([self.gain(j) for j in range(self.period.num_instants)])

    def gains_fast(self) -> np.ndarray:
        """Same as :meth:`gains_all` — the reference has no faster path."""
        return self.gains_all()

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def add(self, instant_index: int) -> float:
        """Add an instant; returns its realized marginal gain."""
        if not 0 <= instant_index < self.period.num_instants:
            raise SchedulingError(f"instant index {instant_index} out of range")
        gain = self.gain(instant_index)
        if instant_index in self._chosen:
            return 0.0
        lo = max(0, instant_index - self.window)
        hi = min(self.period.num_instants, instant_index + self.window + 1)
        for j in range(lo, hi):
            self.survival[j] *= 1.0 - self.weights[abs(j - instant_index)]
        self._chosen.add(instant_index)
        return gain

    def affected_range(self, instant_index: int) -> tuple[int, int]:
        """Instants whose *gain* changes when ``instant_index`` is added."""
        lo = max(0, instant_index - 2 * self.window)
        hi = min(self.period.num_instants, instant_index + 2 * self.window + 1)
        return lo, hi


def reference_coverage_of_instants(
    period: SchedulingPeriod, kernel: CoverageKernel, instants: set[int] | list[int]
) -> float:
    """One-shot objective value of a pooled instant set (scalar path)."""
    objective = ReferenceCoverageObjective(period, kernel)
    for instant_index in sorted(set(instants)):
        objective.add(instant_index)
    return objective.value()
