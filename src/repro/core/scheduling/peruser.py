"""The per-user-sum objective (the paper's equation (2)) — an
alternative reading of the scheduling problem.

The paper first writes the objective as ``Σ_j Σ_k p(t_j, Φ_k)``
(equation (2)): each user's schedule covers instants *independently* and
coverages add across users. Its reformulation (4) then pools all
measurements into one set Ψ, where a second user measuring an
already-covered instant adds (almost) nothing. The two differ exactly
when users overlap in time.

Equation (2) is separable: the total is maximized by optimizing each
user's own coverage independently, which this scheduler does (greedy per
user over their window — optimal-per-user up to the usual greedy bound,
identical machinery to the pooled case). The simulation numbers the
paper reports (average coverage ≤ 1, "almost 100% with 55 users") only
make sense under the pooled objective, which is why
:class:`~repro.core.scheduling.greedy.GreedyScheduler` is the default;
this module exists to quantify the difference (see
``benchmarks/bench_ablation_objective.py``).
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import SchedulingError
from repro.core.scheduling.greedy import (
    GREEDY_MODES,
    argmax_tied_low,
    stochastic_sample_size,
)
from repro.core.scheduling.objective import DEFAULT_BACKEND, make_objective
from repro.core.scheduling.problem import Schedule, SchedulingProblem


def per_user_sum_value(schedule: Schedule, *, backend: str = DEFAULT_BACKEND) -> float:
    """Evaluate a schedule under equation (2): Σ_k f(Φ_k)."""
    problem = schedule.problem
    total = 0.0
    for user in problem.users:
        objective = make_objective(problem.period, problem.kernel, backend)
        for instant in schedule.assignments.get(user.user_id, []):
            objective.add(instant)
        total += objective.value()
    return total


class PerUserGreedyScheduler:
    """Greedy for the separable equation-(2) objective.

    Each user maximizes their own coverage in isolation: spread your own
    budget over your own window, ignoring everyone else. Overlapping
    users therefore pick the *same* well-spread instants instead of
    interleaving — the behaviour the pooled objective avoids.
    """

    def __init__(
        self,
        *,
        min_gain: float = 1e-12,
        backend: str = DEFAULT_BACKEND,
        mode: str = "argmax",
        sample_epsilon: float = 0.1,
        seed: int = 2014,
        representation: str | None = None,
    ) -> None:
        if mode not in GREEDY_MODES:
            raise SchedulingError(
                f"unknown greedy mode {mode!r}; expected one of {GREEDY_MODES}"
            )
        self.min_gain = min_gain
        self.backend = backend
        self.mode = mode
        self.sample_epsilon = sample_epsilon
        self.seed = seed
        self.representation = representation

    def solve(self, problem: SchedulingProblem) -> Schedule:
        """Schedule every user independently; returns the combined plan.

        ``objective_value`` on the result is the equation-(2) total. In
        ``mode="stochastic"`` each pick samples candidates from the
        user's window (seeded rng, one stream shared across users) and
        falls back to the exact window sweep on a dry sample.
        """
        stochastic = self.mode == "stochastic"
        rng = np.random.default_rng(self.seed) if stochastic else None
        objective_kwargs = (
            {"representation": self.representation}
            if self.representation is not None
            else {}
        )
        assignments: dict[str, list[int]] = {}
        total = 0.0
        for user_index, user in enumerate(problem.users):
            lo, hi = problem.user_window(user_index)
            objective = make_objective(
                problem.period, problem.kernel, self.backend, **objective_kwargs
            )
            sample_size = stochastic_sample_size(
                hi - lo, user.budget, self.sample_epsilon
            )
            chosen: list[int] = []
            for _ in range(user.budget):
                if hi <= lo:
                    break
                gains = objective.gains_fast()[lo:hi]
                for instant in chosen:
                    gains[instant - lo] = -np.inf
                if stochastic:
                    draws = rng.integers(0, hi - lo, size=sample_size)
                    positions = np.unique(draws)
                    sampled = gains[positions]
                    best = int(positions[argmax_tied_low(sampled)])
                    if gains[best] < self.min_gain:
                        # Dry sample — decide with the exact window sweep.
                        best = argmax_tied_low(gains)
                else:
                    best = argmax_tied_low(gains)
                if gains[best] < self.min_gain:
                    break
                objective.add(lo + best)
                chosen.append(lo + best)
            assignments[user.user_id] = sorted(chosen)
            total += objective.value()
        schedule = Schedule(
            problem=problem, assignments=assignments, objective_value=total
        )
        schedule.validate()
        return schedule
