"""Coverage kernels: the probability a measurement at t_i covers t_j.

The paper uses "a bell-shaped Gaussian distribution N(μ, σ)" with μ = 0:
a measurement at ``t_i`` covers ``t_j`` with a probability that equals 1
at zero distance and decays bell-shaped with ``|t_i - t_j|``. A large σ
models slowly changing features (temperature, humidity); a small σ fast
ones (acceleration, orientation). The paper notes "our algorithm is
general enough such that other distribution models can also be applied",
so the kernel is a pluggable protocol and two alternatives are provided.
"""

from __future__ import annotations

import math
from typing import Protocol, runtime_checkable

from repro.common.validation import require_positive


@runtime_checkable
class CoverageKernel(Protocol):
    """Maps a time distance (seconds, ≥ 0) to a coverage probability."""

    def probability(self, distance: float) -> float:
        """Coverage probability at ``distance``; must be 1 at 0 and non-increasing."""
        ...

    def support(self) -> float:
        """A distance beyond which the probability is negligible (< 1e-9).

        Used to bound the sparse window the objective maintains; kernels
        with unbounded support return the distance where they fall below
        1e-9.
        """
        ...

    def cache_key(self) -> tuple:
        """A hashable identity for the kernel-matrix cache.

        Two kernels with equal keys must map every distance to the same
        probability; the vectorized objective keys its precomputed
        |T|×|T| matrices on ``(cache_key, num_instants, spacing)``.
        """
        ...


class GaussianKernel:
    """``p(d) = exp(-d² / 2σ²)`` — the paper's default."""

    def __init__(self, sigma: float) -> None:
        self.sigma = require_positive(sigma, "sigma")

    def probability(self, distance: float) -> float:
        """exp(-d^2 / 2 sigma^2)."""
        return math.exp(-(distance * distance) / (2.0 * self.sigma * self.sigma))

    def support(self) -> float:
        # exp(-d²/2σ²) < 1e-9  ⇔  d > σ·sqrt(2·ln 1e9)
        """Distance beyond which the probability drops under 1e-9."""
        return self.sigma * math.sqrt(2.0 * math.log(1e9))

    def cache_key(self) -> tuple:
        """σ-keyed identity for the kernel-matrix cache."""
        return ("gaussian", self.sigma)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GaussianKernel(sigma={self.sigma})"


class TriangularKernel:
    """``p(d) = max(0, 1 - d/width)`` — compact support, linear decay."""

    def __init__(self, width: float) -> None:
        self.width = require_positive(width, "width")

    def probability(self, distance: float) -> float:
        """max(0, 1 - d/width)."""
        return max(0.0, 1.0 - distance / self.width)

    def support(self) -> float:
        """The kernel width (exact support)."""
        return self.width

    def cache_key(self) -> tuple:
        """Width-keyed identity for the kernel-matrix cache."""
        return ("triangular", self.width)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TriangularKernel(width={self.width})"


class ExponentialKernel:
    """``p(d) = exp(-d/scale)`` — heavier tail than Gaussian."""

    def __init__(self, scale: float) -> None:
        self.scale = require_positive(scale, "scale")

    def probability(self, distance: float) -> float:
        """exp(-d / scale)."""
        return math.exp(-distance / self.scale)

    def support(self) -> float:
        """Distance beyond which the probability drops under 1e-9."""
        return self.scale * math.log(1e9)

    def cache_key(self) -> tuple:
        """Scale-keyed identity for the kernel-matrix cache."""
        return ("exponential", self.scale)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ExponentialKernel(scale={self.scale})"
