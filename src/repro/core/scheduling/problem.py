"""Problem and solution data types for sensing scheduling."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import SchedulingError, ValidationError
from repro.common.validation import require, require_non_empty, require_positive
from repro.core.scheduling.coverage import CoverageKernel, GaussianKernel


@dataclass(frozen=True)
class SchedulingPeriod:
    """The period ``[start, end]`` divided into ``num_instants`` instants.

    Instants are placed at ``start + i·spacing`` for ``i = 0..N-1`` with
    ``spacing = (end - start) / num_instants`` — the paper's 3-hour
    period with 1080 instants yields the 10 s spacing its simulation
    uses.
    """

    start: float
    end: float
    num_instants: int

    def __post_init__(self) -> None:
        require(self.end > self.start, "period end must be after start")
        require_positive(self.num_instants, "num_instants")

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def spacing(self) -> float:
        return self.duration / self.num_instants

    def instants(self) -> np.ndarray:
        """The instant timestamps as a float array of length N."""
        return self.start + np.arange(self.num_instants) * self.spacing

    def instant_time(self, index: int) -> float:
        """Timestamp of instant ``index``."""
        if not 0 <= index < self.num_instants:
            raise ValidationError(f"instant index {index} out of range")
        return self.start + index * self.spacing

    def nearest_instant(self, timestamp: float) -> int:
        """Index of the instant closest to ``timestamp`` (clamped)."""
        raw = round((timestamp - self.start) / self.spacing)
        return int(min(max(raw, 0), self.num_instants - 1))

    def window_indices(self, window_start: float, window_end: float) -> tuple[int, int]:
        """Half-open instant index range ``[lo, hi)`` inside a time window."""
        if window_end < window_start:
            raise ValidationError("window end before start")
        lo = int(np.ceil((max(window_start, self.start) - self.start) / self.spacing))
        hi = int(np.floor((min(window_end, self.end) - self.start) / self.spacing)) + 1
        lo = max(lo, 0)
        hi = min(hi, self.num_instants)
        return lo, max(hi, lo)


@dataclass(frozen=True)
class MobileUser:
    """A participating mobile user: presence window plus sensing budget."""

    user_id: str
    arrival: float
    departure: float
    budget: int

    def __post_init__(self) -> None:
        require_non_empty(self.user_id, "user_id")
        require(self.departure >= self.arrival, "departure before arrival")
        require(self.budget >= 0, "budget must be non-negative")


class SchedulingProblem:
    """A full scheduling instance: period, users and coverage kernel."""

    def __init__(
        self,
        period: SchedulingPeriod,
        users: list[MobileUser],
        kernel: CoverageKernel | None = None,
    ) -> None:
        require_non_empty(users, "users")
        ids = [user.user_id for user in users]
        if len(set(ids)) != len(ids):
            raise ValidationError("duplicate user ids in scheduling problem")
        self.period = period
        self.users = list(users)
        self.kernel = kernel if kernel is not None else GaussianKernel(sigma=10.0)
        self._windows = [
            period.window_indices(user.arrival, user.departure) for user in users
        ]

    def user_window(self, user_index: int) -> tuple[int, int]:
        """Half-open instant index range user ``user_index`` can sense in."""
        return self._windows[user_index]

    def user_can_sense_at(self, user_index: int, instant_index: int) -> bool:
        """Whether the user's presence window contains the instant."""
        lo, hi = self._windows[user_index]
        return lo <= instant_index < hi

    def total_budget(self) -> int:
        """Sum of every user's sensing budget."""
        return sum(user.budget for user in self.users)

    def ground_set(self) -> list[tuple[int, int]]:
        """All feasible (user_index, instant_index) pairs."""
        pairs = []
        for user_index, (lo, hi) in enumerate(self._windows):
            pairs.extend(
                (user_index, instant_index) for instant_index in range(lo, hi)
            )
        return pairs


@dataclass
class Schedule:
    """A solution: who senses at which instants.

    ``assignments`` maps user_id → sorted instant indices. The pooled
    instant set (the paper's Ψ) and objective value are derived fields
    filled by the scheduler.
    """

    problem: SchedulingProblem
    assignments: dict[str, list[int]] = field(default_factory=dict)
    objective_value: float = 0.0

    @property
    def pooled_instants(self) -> list[int]:
        """The union Ψ of all users' scheduled instants, sorted."""
        pooled: set[int] = set()
        for indices in self.assignments.values():
            pooled.update(indices)
        return sorted(pooled)

    @property
    def average_coverage(self) -> float:
        """Objective divided by N — the paper's headline metric."""
        return self.objective_value / self.problem.period.num_instants

    def times_for(self, user_id: str) -> list[float]:
        """The actual timestamps user ``user_id`` should sense at."""
        return [
            self.problem.period.instant_time(index)
            for index in self.assignments.get(user_id, [])
        ]

    def validate(self) -> None:
        """Check budget and window feasibility; raises on violation."""
        by_id = {user.user_id: index for index, user in enumerate(self.problem.users)}
        for user_id, indices in self.assignments.items():
            if user_id not in by_id:
                raise SchedulingError(f"schedule references unknown user {user_id!r}")
            user_index = by_id[user_id]
            user = self.problem.users[user_index]
            if len(indices) > user.budget:
                raise SchedulingError(
                    f"user {user_id!r} scheduled {len(indices)} times, "
                    f"budget {user.budget}"
                )
            if len(set(indices)) != len(indices):
                raise SchedulingError(f"user {user_id!r} has duplicate instants")
            for instant_index in indices:
                if not self.problem.user_can_sense_at(user_index, instant_index):
                    raise SchedulingError(
                        f"user {user_id!r} scheduled outside presence window "
                        f"(instant {instant_index})"
                    )
