"""Multi-feature coverage: one schedule serving several kernels.

The paper assigns "a large σ … for those sensing features whose readings
do not change drastically over time (such as temperature, humidity) …
a small σ … for those whose readings may change quickly (such as
acceleration, orientation)" — but its formulation optimizes a single
kernel per application. When one application senses several features in
the same burst (as SOR's scripts do), the natural objective is the
weighted sum of per-feature coverages:

    f(Ψ) = Σ_f w_f · Σ_j p_f(t_j, Ψ)

Each term is monotone submodular, and non-negative weighted sums of
monotone submodular functions are monotone submodular, so the greedy
1/2-approximation carries over unchanged. This module provides that
objective with the same incremental interface as
:class:`~repro.core.scheduling.objective.CoverageObjective`, plus a
scheduler wrapper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import SchedulingError, ValidationError
from repro.core.scheduling.coverage import CoverageKernel
from repro.core.scheduling.greedy import (
    GREEDY_MODES,
    argmax_tied_low,
    stochastic_sample_size,
)
from repro.core.scheduling.objective import DEFAULT_BACKEND, make_objective
from repro.core.scheduling.problem import Schedule, SchedulingPeriod, SchedulingProblem


@dataclass(frozen=True)
class FeatureKernel:
    """One sensed feature's kernel and its importance weight."""

    name: str
    kernel: CoverageKernel
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("feature name is required")
        if self.weight < 0:
            raise ValidationError("feature weight must be non-negative")


class MultiKernelObjective:
    """Weighted sum of per-feature coverage objectives."""

    def __init__(
        self,
        period: SchedulingPeriod,
        features: list[FeatureKernel],
        *,
        backend: str = DEFAULT_BACKEND,
        representation: str | None = None,
    ) -> None:
        if not features:
            raise ValidationError("need at least one feature kernel")
        names = [feature.name for feature in features]
        if len(set(names)) != len(names):
            raise ValidationError("duplicate feature names")
        self.period = period
        self.features = list(features)
        self.backend = backend
        objective_kwargs = (
            {"representation": representation} if representation is not None else {}
        )
        self._objectives = [
            make_objective(period, feature.kernel, backend, **objective_kwargs)
            for feature in features
        ]

    @property
    def chosen(self) -> frozenset[int]:
        return self._objectives[0].chosen

    def value(self) -> float:
        """Current blended objective value."""
        return sum(
            feature.weight * objective.value()
            for feature, objective in zip(self.features, self._objectives)
        )

    def per_feature_coverage(self) -> dict[str, float]:
        """Average coverage each feature ends up with."""
        return {
            feature.name: objective.average_coverage()
            for feature, objective in zip(self.features, self._objectives)
        }

    def gain(self, instant_index: int) -> float:
        """Weighted marginal gain of adding ``instant_index``."""
        return sum(
            feature.weight * objective.gain(instant_index)
            for feature, objective in zip(self.features, self._objectives)
        )

    def gains_fast(self) -> np.ndarray:
        """Vectorized weighted marginal gains for every instant."""
        total = np.zeros(self.period.num_instants)
        for feature, objective in zip(self.features, self._objectives):
            if feature.weight > 0:
                total += feature.weight * objective.gains_fast()
        return total

    def add(self, instant_index: int) -> float:
        """Add an instant to every feature objective; returns its gain."""
        gain = self.gain(instant_index)
        for objective in self._objectives:
            objective.add(instant_index)
        return gain


class MultiKernelGreedyScheduler:
    """Greedy over the blended objective (same matroid constraint)."""

    def __init__(
        self,
        features: list[FeatureKernel],
        *,
        min_gain: float = 1e-12,
        backend: str = DEFAULT_BACKEND,
        mode: str = "argmax",
        sample_epsilon: float = 0.1,
        seed: int = 2014,
        representation: str | None = None,
    ) -> None:
        if not features:
            raise ValidationError("need at least one feature kernel")
        if mode not in GREEDY_MODES:
            raise SchedulingError(
                f"unknown greedy mode {mode!r}; expected one of {GREEDY_MODES}"
            )
        self.features = list(features)
        self.min_gain = min_gain
        self.backend = backend
        self.mode = mode
        self.sample_epsilon = sample_epsilon
        self.seed = seed
        self.representation = representation

    def solve(self, problem: SchedulingProblem) -> Schedule:
        """Schedule ``problem``'s users against the blended objective.

        ``problem.kernel`` is ignored — coverage comes from the feature
        kernels this scheduler was built with. In ``mode="stochastic"``
        each pick evaluates the blended gain only at a seeded sample of
        the still-available instants, with the exact full sweep as the
        dry-sample fallback.
        """
        stochastic = self.mode == "stochastic"
        rng = np.random.default_rng(self.seed) if stochastic else None
        objective = MultiKernelObjective(
            problem.period,
            self.features,
            backend=self.backend,
            representation=self.representation,
        )
        remaining = [user.budget for user in problem.users]
        available = np.zeros(problem.period.num_instants, dtype=np.int64)
        for user_index in range(len(problem.users)):
            if remaining[user_index] > 0:
                lo, hi = problem.user_window(user_index)
                available[lo:hi] += 1
        assigned: dict[int, set[int]] = {
            user_index: set() for user_index in range(len(problem.users))
        }
        sample_size = stochastic_sample_size(
            problem.period.num_instants,
            problem.total_budget(),
            self.sample_epsilon,
        )
        while available.max(initial=0) > 0:
            best: int | None = None
            if stochastic:
                feasible = np.flatnonzero(available > 0)
                draws = rng.integers(
                    0, feasible.size, size=min(sample_size, int(feasible.size))
                )
                candidates = np.unique(feasible[draws])
                gains = np.array(
                    [objective.gain(int(c)) for c in candidates]
                )
                pick = argmax_tied_low(gains)
                if gains[pick] >= self.min_gain:
                    best = int(candidates[pick])
            if best is None:
                # argmax mode, or a dry stochastic sample: exact sweep.
                gains = objective.gains_fast()
                masked = np.where(available > 0, gains, -np.inf)
                best = argmax_tied_low(masked)
                if masked[best] < self.min_gain:
                    break
            user_index = self._pick_user(problem, best, remaining, assigned)
            if user_index is None:
                # Everyone covering the best instant holds it already;
                # zero it out and continue with the next best.
                available[best] = 0
                continue
            objective.add(best)
            assigned[user_index].add(best)
            remaining[user_index] -= 1
            if remaining[user_index] == 0:
                lo, hi = problem.user_window(user_index)
                available[lo:hi] -= 1
        schedule = Schedule(
            problem=problem,
            assignments={
                problem.users[user_index].user_id: sorted(instants)
                for user_index, instants in assigned.items()
            },
            objective_value=objective.value(),
        )
        schedule.validate()
        self.last_per_feature_coverage = objective.per_feature_coverage()
        return schedule

    @staticmethod
    def _pick_user(
        problem: SchedulingProblem,
        instant_index: int,
        remaining: list[int],
        assigned: dict[int, set[int]],
    ) -> int | None:
        best: int | None = None
        for user_index in range(len(problem.users)):
            if remaining[user_index] <= 0:
                continue
            if not problem.user_can_sense_at(user_index, instant_index):
                continue
            if instant_index in assigned[user_index]:
                continue
            if best is None or (
                (-remaining[user_index], problem.users[user_index].arrival, user_index)
                < (-remaining[best], problem.users[best].arrival, best)
            ):
                best = user_index
        return best
