"""The submodular coverage objective — vectorized numpy backend.

``f(Ψ) = Σ_j p(t_j, Ψ)`` with ``p(t_j, Ψ) = 1 - Π_{t_i∈Ψ}(1 - p_ij)``
(paper equations (1) and (4)). Two backends implement the same
incremental interface:

* ``"numpy"`` (this module, :class:`CoverageObjective`) — the hot path.
  It precomputes the |T|×|T| kernel matrix ``P[i,j] = p(|i-j|·Δ)`` once
  per (kernel, horizon) in a σ-keyed cache, and maintains two coverage
  representations side by side. The *gain path* keeps the survival
  products ``s_j = Π_{i∈Ψ}(1 - p_ij)`` directly, updated by windowed
  elementwise multiplies — bitwise identical to the scalar reference's
  products, which is what keeps the two backends' exact-tie structure
  (and therefore their greedy schedules) in lockstep. The *value path*
  keeps ``ℓ_j = Σ_{i∈Ψ} log1p(-p_ij)`` so :meth:`CoverageObjective.value`
  evaluates ``Σ_j (1 - exp(ℓ_j))`` in log-space. Adding a measurement
  is two windowed vector updates plus a banded recompute of the
  *maintained marginal-gains array* over the (at most) ``4w+1``
  instants whose gain changed — every operation O(window), none O(|T|).
  Reading a marginal gain is then O(1), which is what makes the greedy
  schedulers fast: they stop re-evaluating gains entirely.
* ``"reference"`` (:mod:`repro.core.scheduling.reference`) — the
  scalar specification the numpy backend is differentially tested
  against (values to 1e-9, identical greedy schedules).

The maintained gains are *recomputed* (not delta-updated) over the
affected band using a per-element operation sequence that never varies
with the slice — outward by distance, pairing ``w_d · (s_{j-d} +
s_{j+d})``. Recomputation keeps untouched plateau stretches bitwise
equal to freshly computed ones (a delta update would smear rounding
noise over them and break exact ties); the distance pairing makes
mirror-symmetric survival profiles produce bitwise-equal mirrored
gains; a slice-independent reduction tree makes translated copies of
the same survival pattern produce bitwise-equal gains. These
properties are what let the lowest-index argmax land on the same
instant as the reference backend, which pairs its scalar accumulation
the same way.

Both backends truncate the kernel at its support window (p < 1e-9 ≡ 0),
so they compute the same mathematical function and differ only in
floating-point rounding. The log-space error bound: each ``log1p``/
``exp`` pair is accurate to ~2 ulp, the row-sum over |Ψ| picks adds
|Ψ|·ulp of relative error to ℓ_j, so ``|s_j^numpy - s_j^ref| ≲
(|Ψ|+4)·ε·s_j`` with ε = 2⁻⁵² — summed over |T| instants the objective
values agree to ~|T|·|Ψ|·ε ≈ 1e-9 at far beyond paper scale (|T| =
1080, |Ψ| ≈ 700 gives ~4e-10).
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.common.errors import SchedulingError
from repro.core.scheduling.coverage import CoverageKernel
from repro.core.scheduling.problem import SchedulingPeriod
from repro.core.scheduling.reference import (
    ReferenceCoverageObjective,
    reference_coverage_of_instants,
)
from repro.obs import get_metrics

#: The selectable scheduling-core backends.
BACKENDS = ("numpy", "reference")
DEFAULT_BACKEND = "numpy"


# ----------------------------------------------------------------------
# kernel-matrix cache
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class KernelMatrices:
    """Precomputed per-(kernel, horizon) arrays shared across objectives.

    ``probability`` is the |T|×|T| coverage matrix (Toeplitz: row i is
    the kernel weights centred on i, zero outside the support window);
    ``complement`` is ``1 - probability`` (the survival-product update
    rows — the same ``1 - w_d`` values the scalar reference multiplies
    by, so the two backends' survival products are bitwise identical);
    ``log_complement`` is ``log1p(-probability)`` (the log-space add
    rows, −inf on the diagonal where p = 1). Frozen: objectives must
    treat the arrays as read-only because they are shared via the cache.
    """

    window: int
    weights: np.ndarray
    probability: np.ndarray
    complement: np.ndarray
    log_complement: np.ndarray


_MATRIX_CACHE: OrderedDict[tuple, KernelMatrices] = OrderedDict()
_MATRIX_CACHE_CAPACITY = 16


def _build_matrices(period: SchedulingPeriod, kernel: CoverageKernel) -> KernelMatrices:
    num_instants = period.num_instants
    spacing = period.spacing
    window = int(math.ceil(kernel.support() / spacing))
    window = min(window, num_instants - 1)
    weights = np.array(
        [kernel.probability(d * spacing) for d in range(window + 1)]
    )
    padded = np.zeros(num_instants)
    padded[: window + 1] = weights
    offsets = np.abs(
        np.arange(num_instants)[:, None] - np.arange(num_instants)[None, :]
    )
    probability = padded[offsets]
    complement = 1.0 - probability
    with np.errstate(divide="ignore"):
        log_complement = np.log1p(-probability)
    probability.setflags(write=False)
    complement.setflags(write=False)
    log_complement.setflags(write=False)
    weights.setflags(write=False)
    return KernelMatrices(
        window=window,
        weights=weights,
        probability=probability,
        complement=complement,
        log_complement=log_complement,
    )


def kernel_matrices(period: SchedulingPeriod, kernel: CoverageKernel) -> KernelMatrices:
    """The cached |T|×|T| kernel matrices for a (kernel, horizon) pair.

    Keyed on ``(kernel.cache_key(), num_instants, spacing)``; kernels
    without a ``cache_key`` are built fresh every time (correct, just
    uncached). The cache is a small LRU so σ-sweeps don't grow memory
    without bound.
    """
    metrics = get_metrics()
    key_fn = getattr(kernel, "cache_key", None)
    key = (
        (key_fn(), period.num_instants, period.spacing)
        if callable(key_fn)
        else None
    )
    if key is not None:
        cached = _MATRIX_CACHE.get(key)
        if cached is not None:
            _MATRIX_CACHE.move_to_end(key)
            metrics.counter(
                "sor_kernel_matrix_cache_hits_total",
                "kernel-matrix cache hits",
            ).inc()
            return cached
    built = _build_matrices(period, kernel)
    metrics.counter(
        "sor_kernel_matrix_builds_total",
        "|T|x|T| kernel matrices computed (cache misses + uncacheable)",
    ).inc()
    if key is not None:
        _MATRIX_CACHE[key] = built
        while len(_MATRIX_CACHE) > _MATRIX_CACHE_CAPACITY:
            _MATRIX_CACHE.popitem(last=False)
    return built


def clear_kernel_matrix_cache() -> None:
    """Drop every cached kernel matrix (tests and memory pressure)."""
    _MATRIX_CACHE.clear()


# ----------------------------------------------------------------------
# vectorized objective
# ----------------------------------------------------------------------
class CoverageObjective:
    """Incremental pooled-coverage objective, numpy backend.

    The pooled (set) semantics match the paper's reformulation (4): a
    second measurement at an instant already in the set contributes
    nothing (Ψ is a set of time instants).

    Maintains the full marginal-gains array alongside the survival
    products: :meth:`add` recomputes the band of gains its pick
    perturbed (O(window²) element ops, a handful of vector calls) and
    :meth:`gain` is an O(1) array read. See the module docstring for
    why the band is *recomputed* in the initial sweep's exact operation
    order rather than delta-updated — the tie discipline the
    cross-backend differential tests pin down depends on it.
    """

    backend = "numpy"
    #: Gains are maintained incrementally; schedulers use this to pick
    #: the dense argmax loop over the lazy heap (re-evaluation is free).
    maintains_gains = True

    def __init__(self, period: SchedulingPeriod, kernel: CoverageKernel) -> None:
        self.period = period
        self.kernel = kernel
        matrices = kernel_matrices(period, kernel)
        self.window = matrices.window
        self.weights = matrices.weights
        self._probability = matrices.probability
        self._complement = matrices.complement
        self._log_complement = matrices.log_complement
        num_instants = period.num_instants
        self._log_survival = np.zeros(num_instants)
        # Survival products live inside a zero-padded buffer so the
        # banded gains recompute can shift by ±d without bounds checks:
        # the padding contributes exact 0.0 terms, which never perturb a
        # float sum. ``survival`` is a live view of the centre, and is
        # maintained *multiplicatively* — elementwise vector multiplies
        # round exactly like the scalar reference's, so the two
        # backends' survival products (and hence their exact-tie
        # structure) are bitwise identical given the same picks.
        self._padded_survival = np.zeros(num_instants + 2 * self.window)
        self._padded_survival[self.window : self.window + num_instants] = 1.0
        self.survival = self._padded_survival[
            self.window : self.window + num_instants
        ]
        self._chosen: set[int] = set()
        self._chosen_mask = np.zeros(num_instants, dtype=bool)
        # Shift views into the padded buffer, built once: row k of
        # ``shifts`` sees survival shifted by offset (k - window), so a
        # recompute slices columns instead of re-deriving strides.
        shifts = np.lib.stride_tricks.sliding_window_view(
            self._padded_survival, num_instants
        )
        self._shift_center = shifts[self.window]
        self._shift_left = shifts[self.window - 1 :: -1] if self.window else None
        self._shift_right = shifts[self.window + 1 :] if self.window else None
        self._gains = np.empty(num_instants)
        # The recompute walks the band in column blocks so its scratch
        # rows stay cache-resident across the add/multiply/fold passes
        # (one (window × band) buffer streamed ~5× per pick is memory
        # traffic, not compute). Columns are independent in every pass —
        # the fold tree runs over rows — so blocking never changes a
        # single float operation. Block width targets ~128 KiB of
        # scratch; the buffer is allocated once, so the hot path
        # allocates nothing.
        if self.window:
            self._block_columns = max(64, 16384 // self.window)
            self._terms_buffer = np.empty((self.window, self._block_columns))
        else:
            self._block_columns = num_instants
            self._terms_buffer = None
        self._recompute_gains(0, num_instants)

    def _recompute_gains(self, lo: int, hi: int) -> None:
        """Recompute the maintained gains over instants ``[lo, hi)``.

        ``gain(j) = w_0·s_j + fold_d[w_d·(s_{j-d} + s_{j+d})]`` — the
        summation order is part of the backend contract (see
        :func:`fold_tree_sum` in the reference module): the neighbour
        pair at each distance is added first, and the distance terms
        are folded with the tail-onto-head halving tree. Per element
        this is the exact operation sequence of the scalar reference
        ``gain``, so with bitwise-identical survival the two backends'
        gains are bitwise identical — including every exact tie, which
        is what the greedy lowest-index tie-break needs to produce
        identical schedules. The tree depends only on the window, never
        on the slice bounds, so a recompute also reproduces untouched
        plateau values bitwise.
        """
        if not self.window:
            segment = self._gains[lo:hi]
            np.multiply(self._shift_center[lo:hi], self.weights[0], out=segment)
            np.copyto(segment, 0.0, where=self._chosen_mask[lo:hi])
            return
        column_weights = self.weights[1:, np.newaxis]
        for block_lo in range(lo, hi, self._block_columns):
            block_hi = min(hi, block_lo + self._block_columns)
            segment = self._gains[block_lo:block_hi]
            np.multiply(
                self._shift_center[block_lo:block_hi], self.weights[0], out=segment
            )
            # Row d-1 pairs the two neighbours at distance d; then fold
            # rows tail-onto-head (``terms[i] += terms[i + rest]``) —
            # O(log window) vector ops, head/tail slices never overlap.
            # The scratch buffer keeps this allocation-free; `out=`
            # changes nothing about the operation order.
            terms = self._terms_buffer[:, : block_hi - block_lo]
            np.add(
                self._shift_left[:, block_lo:block_hi],
                self._shift_right[:, block_lo:block_hi],
                out=terms,
            )
            np.multiply(terms, column_weights, out=terms)
            count = self.window
            while count > 1:
                half = count // 2
                rest = count - half
                terms[:half] += terms[rest:count]
                count = rest
            segment += terms[0]
            np.copyto(segment, 0.0, where=self._chosen_mask[block_lo:block_hi])

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def chosen(self) -> frozenset[int]:
        return frozenset(self._chosen)

    def value(self) -> float:
        """Current objective ``Σ_j (1 - s_j)`` via the log-space state.

        ``s_j = exp(ℓ_j)`` with ``ℓ_j = Σ_{i∈Ψ} log1p(-p_ij)`` — the
        accumulation whose error bound the module docstring derives.
        The differential tests check it against the reference backend's
        plain products to 1e-9.
        """
        return float(
            self.period.num_instants - np.exp(self._log_survival).sum()
        )

    def average_coverage(self) -> float:
        """Objective divided by N (the paper's reported metric)."""
        return self.value() / self.period.num_instants

    def coverage_profile(self) -> np.ndarray:
        """Per-instant coverage probabilities ``1 - s_j``."""
        return 1.0 - self.survival

    @property
    def current_gains(self) -> np.ndarray:
        """The live maintained marginal-gains array (treat as read-only).

        Chosen instants are held at exactly 0.0. Schedulers read this
        directly — copy before mutating.
        """
        return self._gains

    def gain(self, instant_index: int) -> float:
        """Marginal gain of adding ``instant_index``: an O(1) array read."""
        if instant_index in self._chosen:
            return 0.0
        return float(self._gains[instant_index])

    def gains_all(self) -> np.ndarray:
        """Marginal gains of every instant (a copy of the maintained array).

        Bitwise identical to per-instant :meth:`gain` reads by
        construction, so the lazy/naive greedy variants resolve exact
        ties the same way.
        """
        return self._gains.copy()

    def gains_fast(self) -> np.ndarray:
        """Same values as :meth:`gains_all` — kept as the historical name
        for the vectorized path; both are now O(|T|) copies of the
        maintained array."""
        return self._gains.copy()

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def add(self, instant_index: int) -> float:
        """Add an instant; returns its realized marginal gain.

        Two windowed vector updates — the survival products
        ``s *= 1 - P[i]`` (the gain path, bitwise-pinned to the
        reference backend) and the log-space state ``ℓ += log1p(-P[i])``
        (the value path) — followed by the banded recompute of the
        maintained gains over :meth:`affected_range`. Rows are zero
        outside the support window, so untouched instants keep s = 1
        and ℓ = 0 exactly. Everything is O(window), independent of both
        the horizon length and how many picks came before.
        """
        if not 0 <= instant_index < self.period.num_instants:
            raise SchedulingError(f"instant index {instant_index} out of range")
        if instant_index in self._chosen:
            return 0.0
        gain = float(self._gains[instant_index])
        lo = max(0, instant_index - self.window)
        hi = min(self.period.num_instants, instant_index + self.window + 1)
        self.survival[lo:hi] *= self._complement[instant_index, lo:hi]
        self._log_survival[lo:hi] += self._log_complement[instant_index, lo:hi]
        self._chosen.add(instant_index)
        self._chosen_mask[instant_index] = True
        self._recompute_gains(*self.affected_range(instant_index))
        return gain

    def affected_range(self, instant_index: int) -> tuple[int, int]:
        """Instants whose *gain* changes when ``instant_index`` is added.

        Survival changes within one window; gains read survival within a
        window, so gains change within two.
        """
        lo = max(0, instant_index - 2 * self.window)
        hi = min(self.period.num_instants, instant_index + 2 * self.window + 1)
        return lo, hi


# ----------------------------------------------------------------------
# backend selection
# ----------------------------------------------------------------------
def make_objective(
    period: SchedulingPeriod,
    kernel: CoverageKernel,
    backend: str = DEFAULT_BACKEND,
) -> CoverageObjective | ReferenceCoverageObjective:
    """Construct the coverage objective for the requested backend."""
    if backend == "numpy":
        return CoverageObjective(period, kernel)
    if backend == "reference":
        return ReferenceCoverageObjective(period, kernel)
    raise SchedulingError(
        f"unknown scheduling backend {backend!r}; expected one of {BACKENDS}"
    )


def coverage_of_instants(
    period: SchedulingPeriod,
    kernel: CoverageKernel,
    instants: set[int] | list[int],
    backend: str = DEFAULT_BACKEND,
) -> float:
    """One-shot objective value of a pooled instant set.

    Instants are added in sorted order so both backends accumulate
    rounding identically run-to-run.
    """
    objective = make_objective(period, kernel, backend)
    for instant_index in sorted(set(instants)):
        objective.add(instant_index)
    return objective.value()


__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "CoverageObjective",
    "KernelMatrices",
    "ReferenceCoverageObjective",
    "clear_kernel_matrix_cache",
    "coverage_of_instants",
    "kernel_matrices",
    "make_objective",
    "reference_coverage_of_instants",
]
