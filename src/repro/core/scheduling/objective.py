"""The submodular coverage objective, maintained incrementally.

``f(Ψ) = Σ_j p(t_j, Ψ)`` with ``p(t_j, Ψ) = 1 - Π_{t_i∈Ψ}(1 - p_ij)``
(paper equations (1) and (4)). The implementation keeps, per instant j,
the survival product ``s_j = Π(1 - p_ij)``, so

* the objective is ``N - Σ_j s_j`` minus the never-covered remainder —
  concretely ``Σ_j (1 - s_j)``,
* the marginal gain of adding instant i is ``Σ_j s_j · p_ij``, non-zero
  only inside the kernel's support window around i,
* adding instant i multiplies ``s_j`` by ``(1 - p_ij)`` inside that
  window.

Both queries cost O(window), which is what makes the greedy scheduler
fast (the paper's O(N²) bound is for the naive re-evaluation variant).
"""

from __future__ import annotations

import math

import numpy as np

from repro.common.errors import SchedulingError
from repro.core.scheduling.coverage import CoverageKernel
from repro.core.scheduling.problem import SchedulingPeriod


class CoverageObjective:
    """Incremental pooled-coverage objective over a set of instants.

    The pooled (set) semantics match the paper's reformulation (4): a
    second measurement at an instant already in the set contributes
    nothing (Ψ is a set of time instants).
    """

    def __init__(self, period: SchedulingPeriod, kernel: CoverageKernel) -> None:
        self.period = period
        self.kernel = kernel
        spacing = period.spacing
        window = int(math.ceil(kernel.support() / spacing))
        window = min(window, period.num_instants - 1)
        # weights[d] = p(d · spacing); weights[0] is 1 for any sane kernel.
        self.window = window
        self.weights = np.array(
            [kernel.probability(d * spacing) for d in range(window + 1)]
        )
        self.survival = np.ones(period.num_instants)
        self._chosen: set[int] = set()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def chosen(self) -> frozenset[int]:
        return frozenset(self._chosen)

    def value(self) -> float:
        """Current objective ``Σ_j (1 - s_j)``."""
        return float(self.period.num_instants - self.survival.sum())

    def average_coverage(self) -> float:
        """Objective divided by N (the paper's reported metric)."""
        return self.value() / self.period.num_instants

    def coverage_profile(self) -> np.ndarray:
        """Per-instant coverage probabilities ``1 - s_j``."""
        return 1.0 - self.survival

    def gain(self, instant_index: int) -> float:
        """Marginal gain of adding ``instant_index`` to the current set."""
        if instant_index in self._chosen:
            return 0.0
        lo = max(0, instant_index - self.window)
        hi = min(self.period.num_instants, instant_index + self.window + 1)
        offsets = np.abs(np.arange(lo, hi) - instant_index)
        return float(np.dot(self.survival[lo:hi], self.weights[offsets]))

    def gains_all(self) -> np.ndarray:
        """Marginal gains of every instant (for the naive greedy loop).

        Computed instant-by-instant with :meth:`gain` so the values are
        bitwise identical to what the lazy loop re-evaluates — exact ties
        then resolve the same way in both variants.
        """
        return np.array([self.gain(j) for j in range(self.period.num_instants)])

    def gains_fast(self) -> np.ndarray:
        """Vectorized marginal gains (correlation of survival with kernel).

        Numerically equal to :meth:`gains_all` up to summation order;
        used by the online scheduler where bitwise tie agreement with the
        lazy loop does not matter.
        """
        n = self.period.num_instants
        gains = np.zeros(n)
        for offset in range(-self.window, self.window + 1):
            weight = self.weights[abs(offset)]
            lo_dst = max(0, -offset)
            hi_dst = n - max(0, offset)
            gains[lo_dst:hi_dst] += (
                weight * self.survival[lo_dst + offset : hi_dst + offset]
            )
        for chosen_index in self._chosen:
            gains[chosen_index] = 0.0
        return gains

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def add(self, instant_index: int) -> float:
        """Add an instant; returns its realized marginal gain."""
        if not 0 <= instant_index < self.period.num_instants:
            raise SchedulingError(f"instant index {instant_index} out of range")
        gain = self.gain(instant_index)
        if instant_index in self._chosen:
            return 0.0
        lo = max(0, instant_index - self.window)
        hi = min(self.period.num_instants, instant_index + self.window + 1)
        offsets = np.abs(np.arange(lo, hi) - instant_index)
        self.survival[lo:hi] *= 1.0 - self.weights[offsets]
        self._chosen.add(instant_index)
        return gain

    def affected_range(self, instant_index: int) -> tuple[int, int]:
        """Instants whose *gain* changes when ``instant_index`` is added.

        Survival changes within one window; gains read survival within a
        window, so gains change within two.
        """
        lo = max(0, instant_index - 2 * self.window)
        hi = min(self.period.num_instants, instant_index + 2 * self.window + 1)
        return lo, hi


def coverage_of_instants(
    period: SchedulingPeriod, kernel: CoverageKernel, instants: set[int] | list[int]
) -> float:
    """One-shot objective value of a pooled instant set."""
    objective = CoverageObjective(period, kernel)
    for instant_index in set(instants):
        objective.add(instant_index)
    return objective.value()
