"""The submodular coverage objective — vectorized numpy backend.

``f(Ψ) = Σ_j p(t_j, Ψ)`` with ``p(t_j, Ψ) = 1 - Π_{t_i∈Ψ}(1 - p_ij)``
(paper equations (1) and (4)). Two backends implement the same
incremental interface:

* ``"numpy"`` (this module, :class:`CoverageObjective`) — the hot path.
  It precomputes the kernel band ``p(d·Δ)`` for ``d ∈ [-w, w]`` once
  per (kernel, horizon) in a σ-keyed cache, and maintains two coverage
  representations side by side. The *gain path* keeps the survival
  products ``s_j = Π_{i∈Ψ}(1 - p_ij)`` directly, updated by windowed
  elementwise multiplies — bitwise identical to the scalar reference's
  products, which is what keeps the two backends' exact-tie structure
  (and therefore their greedy schedules) in lockstep. The *value path*
  keeps ``ℓ_j = Σ_{i∈Ψ} log1p(-p_ij)`` so :meth:`CoverageObjective.value`
  evaluates ``Σ_j (1 - exp(ℓ_j))`` in log-space. Adding a measurement
  is two windowed vector updates plus a banded recompute of the
  *maintained marginal-gains array* over the (at most) ``4w+1``
  instants whose gain changed — every operation O(window), none O(|T|).
  Reading a marginal gain is then O(1), which is what makes the greedy
  schedulers fast: they stop re-evaluating gains entirely.
* ``"reference"`` (:mod:`repro.core.scheduling.reference`) — the
  scalar specification the numpy backend is differentially tested
  against (values to 1e-9, identical greedy schedules).

Memory model — banded vs dense. The update rows are Toeplitz
(``P[i, j] = p(|i - j|·Δ)``), and only the ``2w+1`` in-band entries of
any row are ever read, so the default ``"banded"`` representation
stores one mirrored band of length ``2w+1`` per array — O(window)
memory, independent of the horizon, which is what lets the core scale
to 10⁵ instants (a dense |T|×|T| float matrix would be ~80 GB there).
A row slice of the dense matrix and the matching band slice hold
bitwise-identical floats (both are built from the same ``weights``
array by the same operations), so switching representation changes
*which array is indexed*, never a single float operation — the
``"dense"`` representation is kept selectable purely so the
differential suite can assert that equivalence.

The maintained gains are *recomputed* (not delta-updated) over the
affected band using a per-element operation sequence that never varies
with the slice — outward by distance, pairing ``w_d · (s_{j-d} +
s_{j+d})``. Recomputation keeps untouched plateau stretches bitwise
equal to freshly computed ones (a delta update would smear rounding
noise over them and break exact ties); the distance pairing makes
mirror-symmetric survival profiles produce bitwise-equal mirrored
gains; a slice-independent reduction tree makes translated copies of
the same survival pattern produce bitwise-equal gains. These
properties are what let the lowest-index argmax land on the same
instant as the reference backend, which pairs its scalar accumulation
the same way.

Both backends truncate the kernel at its support window (p < 1e-9 ≡ 0),
so they compute the same mathematical function and differ only in
floating-point rounding. The log-space error bound: each ``log1p``/
``exp`` pair is accurate to ~2 ulp, the row-sum over |Ψ| picks adds
|Ψ|·ulp of relative error to ℓ_j, so ``|s_j^numpy - s_j^ref| ≲
(|Ψ|+4)·ε·s_j`` with ε = 2⁻⁵² — summed over |T| instants the objective
values agree to ~|T|·|Ψ|·ε ≈ 1e-9 at far beyond paper scale (|T| =
1080, |Ψ| ≈ 700 gives ~4e-10).
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.common.errors import SchedulingError
from repro.core.scheduling.coverage import CoverageKernel
from repro.core.scheduling.problem import SchedulingPeriod
from repro.core.scheduling.reference import (
    ReferenceCoverageObjective,
    reference_coverage_of_instants,
    validate_kernel_weights,
)
from repro.obs import get_metrics

#: The selectable scheduling-core backends.
BACKENDS = ("numpy", "reference")
DEFAULT_BACKEND = "numpy"

#: The selectable kernel-matrix memory layouts (numpy backend only).
REPRESENTATIONS = ("banded", "dense")
DEFAULT_REPRESENTATION = "banded"


# ----------------------------------------------------------------------
# kernel-matrix cache
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class KernelMatrices:
    """Precomputed per-(kernel, horizon) arrays shared across objectives.

    The banded (default) layout stores the mirrored kernel band only:
    ``complement_band[d + window] = 1 - p(|d|·Δ)`` for ``d ∈ [-w, w]``
    (the survival-product update values — the same ``1 - w_d`` floats
    the scalar reference multiplies by, so the two backends' survival
    products are bitwise identical) and ``log_complement_band =
    log1p(-p)`` (the log-space add values, −inf only at the centre
    where p may be 1). The ``"dense"`` layout additionally materializes
    the full |T|×|T| ``probability`` / ``complement`` /
    ``log_complement`` Toeplitz matrices whose row slices equal the
    band slices float-for-float; it exists so the differential suite
    can pin that equality. Frozen: objectives must treat the arrays as
    read-only because they are shared via the cache.
    """

    window: int
    weights: np.ndarray
    representation: str
    complement_band: np.ndarray
    log_complement_band: np.ndarray
    probability: np.ndarray | None = None
    complement: np.ndarray | None = None
    log_complement: np.ndarray | None = None

    @property
    def nbytes(self) -> int:
        """Total bytes held by this entry (the cache's eviction unit)."""
        total = (
            self.weights.nbytes
            + self.complement_band.nbytes
            + self.log_complement_band.nbytes
        )
        for dense in (self.probability, self.complement, self.log_complement):
            if dense is not None:
                total += dense.nbytes
        return total


_MATRIX_CACHE: OrderedDict[tuple, KernelMatrices] = OrderedDict()
#: Eviction is by total ``nbytes``, not entry count: one wide-window
#: band at 10⁵ instants outweighs dozens of paper-scale entries.
_MATRIX_CACHE_MAX_BYTES = 64 * 1024 * 1024
#: Guards every read-modify-write of the LRU above — kernel_matrices is
#: called from the server worker pool, and an unlocked OrderedDict
#: corrupts under concurrent get/move_to_end/setitem/popitem.
_MATRIX_CACHE_LOCK = threading.Lock()
_matrix_cache_bytes = 0

_CACHE_BYTES_GAUGE = (
    "sor_kernel_matrix_cache_bytes",
    "total bytes of kernel matrices/bands held by the LRU cache",
)


def _build_matrices(
    period: SchedulingPeriod,
    kernel: CoverageKernel,
    representation: str,
) -> KernelMatrices:
    num_instants = period.num_instants
    spacing = period.spacing
    window = int(math.ceil(kernel.support() / spacing))
    window = min(window, num_instants - 1)
    weights = np.array(
        [kernel.probability(d * spacing) for d in range(window + 1)]
    )
    validate_kernel_weights(weights, kernel, spacing)
    # The mirrored band: index d + window holds p(|d|·Δ). Built by
    # fancy-indexing the same weights array the dense rows are built
    # from, so band and dense entries are the same float objects and
    # every derived value (1 - p, log1p(-p)) is computed by the same
    # operation — bitwise-equal across representations.
    band_probability = weights[np.abs(np.arange(-window, window + 1))]
    complement_band = 1.0 - band_probability
    with np.errstate(divide="ignore"):
        # −inf can only appear at the centre (p(0) = 1 is legitimate —
        # a measurement fully covers its own instant);
        # validate_kernel_weights rejected p ≥ 1 off the diagonal.
        log_complement_band = np.log1p(-band_probability)
    probability = complement = log_complement = None
    if representation == "dense":
        padded = np.zeros(num_instants)
        padded[: window + 1] = weights
        offsets = np.abs(
            np.arange(num_instants)[:, None] - np.arange(num_instants)[None, :]
        )
        probability = padded[offsets]
        complement = 1.0 - probability
        with np.errstate(divide="ignore"):
            log_complement = np.log1p(-probability)
        probability.setflags(write=False)
        complement.setflags(write=False)
        log_complement.setflags(write=False)
    weights.setflags(write=False)
    complement_band.setflags(write=False)
    log_complement_band.setflags(write=False)
    return KernelMatrices(
        window=window,
        weights=weights,
        representation=representation,
        complement_band=complement_band,
        log_complement_band=log_complement_band,
        probability=probability,
        complement=complement,
        log_complement=log_complement,
    )


def kernel_matrices(
    period: SchedulingPeriod,
    kernel: CoverageKernel,
    representation: str = DEFAULT_REPRESENTATION,
) -> KernelMatrices:
    """The cached kernel band (or dense matrices) for a (kernel, horizon).

    Keyed on ``(kernel.cache_key(), num_instants, spacing,
    representation)``; kernels without a ``cache_key`` are built fresh
    every time (correct, just uncached). The cache is a byte-bounded
    LRU guarded by a lock — it is shared by every scheduler thread in
    the server worker pool — and exports its size as
    ``sor_kernel_matrix_cache_bytes``. Entries larger than the cap are
    returned uncached rather than evicting the whole cache.
    """
    if representation not in REPRESENTATIONS:
        raise SchedulingError(
            f"unknown kernel-matrix representation {representation!r}; "
            f"expected one of {REPRESENTATIONS}"
        )
    global _matrix_cache_bytes
    metrics = get_metrics()
    key_fn = getattr(kernel, "cache_key", None)
    key = (
        (key_fn(), period.num_instants, period.spacing, representation)
        if callable(key_fn)
        else None
    )
    if key is not None:
        with _MATRIX_CACHE_LOCK:
            cached = _MATRIX_CACHE.get(key)
            if cached is not None:
                _MATRIX_CACHE.move_to_end(key)
        if cached is not None:
            metrics.counter(
                "sor_kernel_matrix_cache_hits_total",
                "kernel-matrix cache hits",
            ).inc()
            return cached
        metrics.counter(
            "sor_kernel_matrix_cache_misses_total",
            "cacheable kernel-matrix lookups that had to build",
        ).inc()
    built = _build_matrices(period, kernel, representation)
    metrics.counter(
        "sor_kernel_matrix_builds_total",
        "kernel matrices/bands computed (cache misses + uncacheable)",
    ).inc()
    if key is not None and built.nbytes <= _MATRIX_CACHE_MAX_BYTES:
        evictions = 0
        with _MATRIX_CACHE_LOCK:
            racing = _MATRIX_CACHE.get(key)
            if racing is not None:
                # Two threads built concurrently; share the first
                # winner so objectives keep aliasing one array set.
                _MATRIX_CACHE.move_to_end(key)
                built = racing
            else:
                _MATRIX_CACHE[key] = built
                _matrix_cache_bytes += built.nbytes
                while (
                    _matrix_cache_bytes > _MATRIX_CACHE_MAX_BYTES
                    and len(_MATRIX_CACHE) > 1
                ):
                    _, evicted = _MATRIX_CACHE.popitem(last=False)
                    _matrix_cache_bytes -= evicted.nbytes
                    evictions += 1
            cache_bytes = _matrix_cache_bytes
        metrics.gauge(*_CACHE_BYTES_GAUGE).set(float(cache_bytes))
        if evictions:
            metrics.counter(
                "sor_kernel_matrix_cache_evictions_total",
                "kernel-matrix cache entries evicted by the byte cap",
            ).inc(evictions)
    return built


def kernel_matrix_cache_bytes() -> int:
    """Current total bytes held by the kernel-matrix cache."""
    with _MATRIX_CACHE_LOCK:
        return _matrix_cache_bytes


def clear_kernel_matrix_cache() -> None:
    """Drop every cached kernel matrix (tests and memory pressure)."""
    global _matrix_cache_bytes
    with _MATRIX_CACHE_LOCK:
        _MATRIX_CACHE.clear()
        _matrix_cache_bytes = 0
    get_metrics().gauge(*_CACHE_BYTES_GAUGE).set(0.0)


# ----------------------------------------------------------------------
# vectorized objective
# ----------------------------------------------------------------------
class CoverageObjective:
    """Incremental pooled-coverage objective, numpy backend.

    The pooled (set) semantics match the paper's reformulation (4): a
    second measurement at an instant already in the set contributes
    nothing (Ψ is a set of time instants).

    Maintains the full marginal-gains array alongside the survival
    products: :meth:`add` recomputes the band of gains its pick
    perturbed (O(window²) element ops, a handful of vector calls) and
    :meth:`gain` is an O(1) array read. See the module docstring for
    why the band is *recomputed* in the initial sweep's exact operation
    order rather than delta-updated — the tie discipline the
    cross-backend differential tests pin down depends on it.

    ``representation`` selects the kernel-matrix memory layout:
    ``"banded"`` (default, O(window) memory — the city-scale path) or
    ``"dense"`` (O(|T|²), kept for the differential suite; see the
    module docstring's memory-model section). The two index the same
    float values, so every result is bitwise identical either way.
    """

    backend = "numpy"
    #: Gains are maintained incrementally; schedulers use this to pick
    #: the dense argmax loop over the lazy heap (re-evaluation is free).
    maintains_gains = True

    def __init__(
        self,
        period: SchedulingPeriod,
        kernel: CoverageKernel,
        representation: str = DEFAULT_REPRESENTATION,
        maintain_gains: bool = True,
    ) -> None:
        self.period = period
        self.kernel = kernel
        # ``maintain_gains=False`` skips the O(window²) banded recompute
        # on every add: gains are then computed on demand — batched for
        # a candidate set via :meth:`gains_at`, or as a full sweep on
        # the first :meth:`gains_fast`/:meth:`current_gains` read after
        # a mutation. The stochastic greedy runs this way: it only ever
        # looks at O((|T|/B)·log(1/ε)) sampled candidates per pick, so
        # paying the full-band maintenance for them is pure waste.
        self.maintains_gains = bool(maintain_gains)
        matrices = kernel_matrices(period, kernel, representation)
        self.representation = matrices.representation
        self.window = matrices.window
        self.weights = matrices.weights
        self._complement_band = matrices.complement_band
        self._log_complement_band = matrices.log_complement_band
        # Dense rows are only populated under representation="dense";
        # ``add`` reads them there so the differential suite genuinely
        # exercises the dense indexing path against the banded one.
        self._dense_complement = matrices.complement
        self._dense_log_complement = matrices.log_complement
        num_instants = period.num_instants
        self._log_survival = np.zeros(num_instants)
        # Survival products live inside a zero-padded buffer so the
        # banded gains recompute can shift by ±d without bounds checks:
        # the padding contributes exact 0.0 terms, which never perturb a
        # float sum. ``survival`` is a live view of the centre, and is
        # maintained *multiplicatively* — elementwise vector multiplies
        # round exactly like the scalar reference's, so the two
        # backends' survival products (and hence their exact-tie
        # structure) are bitwise identical given the same picks.
        self._padded_survival = np.zeros(num_instants + 2 * self.window)
        self._padded_survival[self.window : self.window + num_instants] = 1.0
        self.survival = self._padded_survival[
            self.window : self.window + num_instants
        ]
        self._chosen: set[int] = set()
        self._chosen_mask = np.zeros(num_instants, dtype=bool)
        # Shift views into the padded buffer, built once: row k of
        # ``shifts`` sees survival shifted by offset (k - window), so a
        # recompute slices columns instead of re-deriving strides.
        shifts = np.lib.stride_tricks.sliding_window_view(
            self._padded_survival, num_instants
        )
        self._shift_center = shifts[self.window]
        self._shift_left = shifts[self.window - 1 :: -1] if self.window else None
        self._shift_right = shifts[self.window + 1 :] if self.window else None
        # Row j of this view is the survival stretch s_{j-w} … s_{j+w}
        # (live, via the same padded buffer) — :meth:`gains_at` gathers
        # candidate rows from it in one contiguous copy and dots them
        # against the mirrored weight band.
        self._candidate_windows = np.lib.stride_tricks.sliding_window_view(
            self._padded_survival, 2 * self.window + 1
        )
        self._band_weights = self.weights[
            np.abs(np.arange(-self.window, self.window + 1))
        ]
        self._gains = np.empty(num_instants)
        # The recompute walks the band in column blocks so its scratch
        # rows stay cache-resident across the add/multiply/fold passes
        # (one (window × band) buffer streamed ~5× per pick is memory
        # traffic, not compute). Columns are independent in every pass —
        # the fold tree runs over rows — so blocking never changes a
        # single float operation. Block width targets ~128 KiB of
        # scratch; the buffer is allocated once, so the hot path
        # allocates nothing.
        if self.window:
            self._block_columns = max(64, 16384 // self.window)
            self._terms_buffer = np.empty((self.window, self._block_columns))
        else:
            self._block_columns = num_instants
            self._terms_buffer = None
        # When gains are maintained, ``_gains`` is always fresh; when
        # not, it is refreshed lazily on the next full-sweep read.
        self._gains_fresh = False
        if self.maintains_gains:
            self._recompute_gains(0, num_instants)
            self._gains_fresh = True

    def _recompute_gains(self, lo: int, hi: int) -> None:
        """Recompute the maintained gains over instants ``[lo, hi)``.

        ``gain(j) = w_0·s_j + fold_d[w_d·(s_{j-d} + s_{j+d})]`` — the
        summation order is part of the backend contract (see
        :func:`fold_tree_sum` in the reference module): the neighbour
        pair at each distance is added first, and the distance terms
        are folded with the tail-onto-head halving tree. Per element
        this is the exact operation sequence of the scalar reference
        ``gain``, so with bitwise-identical survival the two backends'
        gains are bitwise identical — including every exact tie, which
        is what the greedy lowest-index tie-break needs to produce
        identical schedules. The tree depends only on the window, never
        on the slice bounds, so a recompute also reproduces untouched
        plateau values bitwise.
        """
        if not self.window:
            segment = self._gains[lo:hi]
            np.multiply(self._shift_center[lo:hi], self.weights[0], out=segment)
            np.copyto(segment, 0.0, where=self._chosen_mask[lo:hi])
            return
        column_weights = self.weights[1:, np.newaxis]
        for block_lo in range(lo, hi, self._block_columns):
            block_hi = min(hi, block_lo + self._block_columns)
            segment = self._gains[block_lo:block_hi]
            np.multiply(
                self._shift_center[block_lo:block_hi], self.weights[0], out=segment
            )
            # Row d-1 pairs the two neighbours at distance d; then fold
            # rows tail-onto-head (``terms[i] += terms[i + rest]``) —
            # O(log window) vector ops, head/tail slices never overlap.
            # The scratch buffer keeps this allocation-free; `out=`
            # changes nothing about the operation order.
            terms = self._terms_buffer[:, : block_hi - block_lo]
            np.add(
                self._shift_left[:, block_lo:block_hi],
                self._shift_right[:, block_lo:block_hi],
                out=terms,
            )
            np.multiply(terms, column_weights, out=terms)
            count = self.window
            while count > 1:
                half = count // 2
                rest = count - half
                terms[:half] += terms[rest:count]
                count = rest
            segment += terms[0]
            np.copyto(segment, 0.0, where=self._chosen_mask[block_lo:block_hi])

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def chosen(self) -> frozenset[int]:
        return frozenset(self._chosen)

    def value(self) -> float:
        """Current objective ``Σ_j (1 - s_j)`` via the log-space state.

        ``s_j = exp(ℓ_j)`` with ``ℓ_j = Σ_{i∈Ψ} log1p(-p_ij)`` — the
        accumulation whose error bound the module docstring derives.
        The differential tests check it against the reference backend's
        plain products to 1e-9.
        """
        return float(
            self.period.num_instants - np.exp(self._log_survival).sum()
        )

    def average_coverage(self) -> float:
        """Objective divided by N (the paper's reported metric)."""
        return self.value() / self.period.num_instants

    def coverage_profile(self) -> np.ndarray:
        """Per-instant coverage probabilities ``1 - s_j``."""
        return 1.0 - self.survival

    def _refresh_gains(self) -> None:
        """Bring ``_gains`` up to date (no-op while gains are maintained)."""
        if not self._gains_fresh:
            self._recompute_gains(0, self.period.num_instants)
            self._gains_fresh = True

    @property
    def current_gains(self) -> np.ndarray:
        """The live marginal-gains array (treat as read-only).

        Chosen instants are held at exactly 0.0. Schedulers read this
        directly — copy before mutating. With ``maintain_gains=False``
        the first read after a mutation pays one full-sweep recompute.
        """
        self._refresh_gains()
        return self._gains

    def gain(self, instant_index: int) -> float:
        """Marginal gain of adding ``instant_index``.

        An O(1) array read while gains are maintained; an O(window)
        banded computation otherwise.
        """
        if instant_index in self._chosen:
            return 0.0
        if self._gains_fresh:
            return float(self._gains[instant_index])
        return float(self.gains_at(np.array([instant_index]))[0])

    def gains_at(self, indices: np.ndarray) -> np.ndarray:
        """Marginal gains of ``indices`` only, as a fresh array.

        One row-contiguous gather of the padded survival stretches
        ``s_{j-w} … s_{j+w}`` (the padding supplies exact 0.0 beyond
        the horizon) and one matvec against the mirrored kernel band:
        ``gain(j) = Σ_d w_{|d|} · s_{j+d}``. O(window · |indices|)
        work, independent of the horizon, in two vector calls — this is
        the stochastic greedy's per-pick candidate scoring, where a
        fold-tree evaluation's per-call overhead would dominate the
        pick.

        The dot accumulates in BLAS order, not the backend-contract
        fold order, so values agree with the maintained array and the
        scalar reference to a few ulp rather than bitwise. That is the
        deliberate trade: the exact greedy modes never call this (their
        tie discipline is pinned by :meth:`_recompute_gains`), and the
        stochastic mode's guarantees — seed determinism and
        value-within-ε — survive any fixed rounding of the sampled
        scores.
        """
        idx = np.asarray(indices, dtype=np.intp)
        out = self._candidate_windows[idx] @ self._band_weights
        # Already-chosen instants must read 0.0 (their window dot is the
        # gain of multiplying their probabilities in *again*). Samples
        # rarely contain one — skip the masked store when none do.
        chosen = self._chosen_mask[idx]
        if chosen.any():
            out[chosen] = 0.0
        return out

    def gains_all(self) -> np.ndarray:
        """Marginal gains of every instant (a copy of the gains array).

        Bitwise identical to per-instant :meth:`gain` reads by
        construction, so the lazy/naive greedy variants resolve exact
        ties the same way.
        """
        self._refresh_gains()
        return self._gains.copy()

    def gains_fast(self) -> np.ndarray:
        """Same values as :meth:`gains_all` — kept as the historical name
        for the vectorized path; both are O(|T|) copies of the gains
        array (plus, with ``maintain_gains=False``, one full-sweep
        recompute when stale)."""
        self._refresh_gains()
        return self._gains.copy()

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def add(self, instant_index: int) -> float:
        """Add an instant; returns its realized marginal gain.

        Two windowed vector updates — the survival products
        ``s *= 1 - p`` (the gain path, bitwise-pinned to the reference
        backend) and the log-space state ``ℓ += log1p(-p)`` (the value
        path) — followed by the banded recompute of the maintained
        gains over :meth:`affected_range`. The update values come from
        the mirrored kernel band (or, under ``representation="dense"``,
        the matching dense row slice — same floats, see the module
        docstring); instants outside the support window keep s = 1 and
        ℓ = 0 exactly. Everything is O(window), independent of both the
        horizon length and how many picks came before.
        """
        if not 0 <= instant_index < self.period.num_instants:
            raise SchedulingError(f"instant index {instant_index} out of range")
        if instant_index in self._chosen:
            return 0.0
        gain = (
            float(self._gains[instant_index])
            if self._gains_fresh
            else float(self._candidate_windows[instant_index] @ self._band_weights)
        )
        lo = max(0, instant_index - self.window)
        hi = min(self.period.num_instants, instant_index + self.window + 1)
        if self._dense_complement is not None:
            self.survival[lo:hi] *= self._dense_complement[instant_index, lo:hi]
            self._log_survival[lo:hi] += self._dense_log_complement[
                instant_index, lo:hi
            ]
        else:
            # band index (j - i) + window for j in [lo, hi): the slice
            # [lo + shift, hi + shift) with shift = window - i.
            shift = self.window - instant_index
            self.survival[lo:hi] *= self._complement_band[
                lo + shift : hi + shift
            ]
            self._log_survival[lo:hi] += self._log_complement_band[
                lo + shift : hi + shift
            ]
        self._chosen.add(instant_index)
        self._chosen_mask[instant_index] = True
        if self.maintains_gains:
            self._recompute_gains(*self.affected_range(instant_index))
        else:
            self._gains_fresh = False
        return gain

    def affected_range(self, instant_index: int) -> tuple[int, int]:
        """Instants whose *gain* changes when ``instant_index`` is added.

        Survival changes within one window; gains read survival within a
        window, so gains change within two.
        """
        lo = max(0, instant_index - 2 * self.window)
        hi = min(self.period.num_instants, instant_index + 2 * self.window + 1)
        return lo, hi


# ----------------------------------------------------------------------
# backend selection
# ----------------------------------------------------------------------
def make_objective(
    period: SchedulingPeriod,
    kernel: CoverageKernel,
    backend: str = DEFAULT_BACKEND,
    *,
    representation: str = DEFAULT_REPRESENTATION,
    maintain_gains: bool = True,
) -> CoverageObjective | ReferenceCoverageObjective:
    """Construct the coverage objective for the requested backend.

    ``representation`` selects the numpy backend's kernel-matrix layout
    and ``maintain_gains=False`` turns off its per-add gains
    maintenance (the stochastic sampling path); the scalar reference
    has no matrices and recomputes gains on demand anyway, so it
    ignores both.
    """
    if backend == "numpy":
        return CoverageObjective(
            period,
            kernel,
            representation=representation,
            maintain_gains=maintain_gains,
        )
    if backend == "reference":
        return ReferenceCoverageObjective(period, kernel)
    raise SchedulingError(
        f"unknown scheduling backend {backend!r}; expected one of {BACKENDS}"
    )


def coverage_of_instants(
    period: SchedulingPeriod,
    kernel: CoverageKernel,
    instants: set[int] | list[int],
    backend: str = DEFAULT_BACKEND,
) -> float:
    """One-shot objective value of a pooled instant set.

    Instants are added in sorted order so both backends accumulate
    rounding identically run-to-run.
    """
    objective = make_objective(period, kernel, backend)
    for instant_index in sorted(set(instants)):
        objective.add(instant_index)
    return objective.value()


__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "DEFAULT_REPRESENTATION",
    "REPRESENTATIONS",
    "CoverageObjective",
    "KernelMatrices",
    "ReferenceCoverageObjective",
    "clear_kernel_matrix_cache",
    "coverage_of_instants",
    "kernel_matrices",
    "kernel_matrix_cache_bytes",
    "make_objective",
    "reference_coverage_of_instants",
    "validate_kernel_weights",
]
