"""Evaluation helpers shared by tests, benchmarks and the server."""

from __future__ import annotations

from repro.core.scheduling.objective import coverage_of_instants
from repro.core.scheduling.problem import Schedule, SchedulingPeriod, SchedulingProblem
from repro.core.scheduling.coverage import CoverageKernel


def evaluate_instants(
    period: SchedulingPeriod, kernel: CoverageKernel, instants: set[int] | list[int]
) -> float:
    """Objective value of a pooled instant set (re-exported convenience)."""
    return coverage_of_instants(period, kernel, instants)


def average_coverage(schedule: Schedule) -> float:
    """Recompute a schedule's average coverage from scratch.

    Unlike :attr:`Schedule.average_coverage` (which trusts the stored
    objective value), this recomputes from the assignments — used by
    tests to cross-check scheduler bookkeeping.
    """
    problem: SchedulingProblem = schedule.problem
    value = coverage_of_instants(
        problem.period, problem.kernel, set(schedule.pooled_instants)
    )
    return value / problem.period.num_instants
