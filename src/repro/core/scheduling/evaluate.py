"""Evaluation helpers shared by tests, benchmarks and the server."""

from __future__ import annotations

from repro.core.scheduling.coverage import CoverageKernel
from repro.core.scheduling.objective import DEFAULT_BACKEND, coverage_of_instants
from repro.core.scheduling.problem import Schedule, SchedulingPeriod, SchedulingProblem


def evaluate_instants(
    period: SchedulingPeriod,
    kernel: CoverageKernel,
    instants: set[int] | list[int],
    *,
    backend: str = DEFAULT_BACKEND,
) -> float:
    """Objective value of a pooled instant set (re-exported convenience)."""
    return coverage_of_instants(period, kernel, instants, backend)


def average_coverage(schedule: Schedule, *, backend: str = DEFAULT_BACKEND) -> float:
    """Recompute a schedule's average coverage from scratch.

    Unlike :attr:`Schedule.average_coverage` (which trusts the stored
    objective value), this recomputes from the assignments — used by
    tests to cross-check scheduler bookkeeping, on either backend.
    """
    problem: SchedulingProblem = schedule.problem
    value = coverage_of_instants(
        problem.period, problem.kernel, set(schedule.pooled_instants), backend
    )
    return value / problem.period.num_instants
