"""Matroids for the scheduling constraint (paper Theorem 1).

The feasible schedules — at most ``N^B_k`` (user k, instant) pairs per
user — form a **partition matroid**: the ground set is partitioned by
user and each part has a capacity. The paper observes that the
independence oracle runs in constant time "by maintaining a counter for
each mobile user"; :meth:`BudgetPartitionMatroid.can_extend` is exactly
that counter check.
"""

from __future__ import annotations

from collections.abc import Collection, Hashable, Iterable
from typing import Callable, Protocol, runtime_checkable

from repro.common.errors import ValidationError


@runtime_checkable
class Matroid(Protocol):
    """The independence-system interface greedy needs."""

    def is_independent(self, subset: Collection[Hashable]) -> bool:
        """Whether ``subset`` is independent (feasible)."""
        ...


class BudgetPartitionMatroid:
    """Partition matroid: ground elements map to parts with capacities.

    ``part_of`` maps an element to its part key (here: the user index);
    ``capacities`` gives each part's budget. Elements mapping to unknown
    parts are not in the ground set and make any containing set
    dependent.
    """

    def __init__(
        self,
        capacities: dict[Hashable, int],
        part_of: Callable[[Hashable], Hashable],
    ) -> None:
        for part, capacity in capacities.items():
            if capacity < 0:
                raise ValidationError(f"capacity of part {part!r} is negative")
        self.capacities = dict(capacities)
        self.part_of = part_of

    def is_independent(self, subset: Collection[Hashable]) -> bool:
        """Full check: every part within capacity, no duplicates."""
        elements = list(subset)
        if len(set(elements)) != len(elements):
            return False
        counts: dict[Hashable, int] = {}
        for element in elements:
            part = self.part_of(element)
            if part not in self.capacities:
                return False
            counts[part] = counts.get(part, 0) + 1
            if counts[part] > self.capacities[part]:
                return False
        return True

    def counters_for(self, subset: Iterable[Hashable]) -> dict[Hashable, int]:
        """Per-part usage counters for an independent set."""
        counts: dict[Hashable, int] = {part: 0 for part in self.capacities}
        for element in subset:
            counts[self.part_of(element)] += 1
        return counts

    def can_extend(self, counters: dict[Hashable, int], element: Hashable) -> bool:
        """O(1) oracle: can ``element`` join a set with these counters?"""
        part = self.part_of(element)
        if part not in self.capacities:
            return False
        return counters.get(part, 0) < self.capacities[part]

    def rank_upper_bound(self) -> int:
        """The matroid rank is at most the sum of capacities."""
        return sum(self.capacities.values())
