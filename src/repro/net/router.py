"""Consistent-hash shard router for the sensing-server fleet.

A single :class:`~repro.server.server.SensingServer` cannot carry
millions of phones, so the fleet is partitioned: each shard is one
primary server (plus read-replicas fed by WAL shipping, see
:mod:`repro.server.sharding`) owning a slice of the place-category
space. The :class:`ShardRouter` is the fleet's front door — it speaks
the existing envelope protocol, so phones are completely unaware they
talk to a sharded deployment.

Routing is by *stable key*, hashed onto a :class:`HashRing` with
virtual nodes so membership changes move only ``~1/N`` of the keyspace:

========================  ==============================================
message type              routing key → destination
========================  ==============================================
PARTICIPATE               app's category → that shard's primary
SENSED_DATA               task id prefix ``{host}:`` → issuing primary
RANK_QUERY (keyless)      category → a replica (round-robin), failing
                          over to siblings and finally the primary
PREFERENCES / PONG /      user-scoped state is replicated on every
LOCATION_REPORT           shard → fan out to all primaries
========================  ==============================================

Forwarding goes through a shared
:class:`~repro.net.resilience.ResilientClient`, so each backend host
gets its own circuit breaker and 5xx/transport failures trip failover.
A write-path forward that exhausts its retries is answered with the
standard 503 BUSY envelope: the phone's own resilient client backs off
and re-sends (idempotency keys make that safe), which is exactly the
window a failover promotion needs.
"""

from __future__ import annotations

import bisect
import hashlib
import itertools
import threading
from dataclasses import dataclass, field

from repro.common.errors import CodecError, TransportError, ValidationError
from repro.net.http import HttpRequest, HttpResponse
from repro.net.messages import Envelope, MessageType
from repro.net.resilience import ResilientClient
from repro.net.transport import Network
from repro.obs import MetricsRegistry, Tracer, get_metrics, get_tracer


def _hash(value: str) -> int:
    return int.from_bytes(
        hashlib.sha256(value.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """A consistent-hash ring with virtual nodes.

    Every node is hashed ``vnodes`` times onto a 64-bit circle; a key
    maps to the first vnode clockwise from its own hash. With enough
    vnodes the keyspace split is near-uniform and removing a node
    reassigns only that node's arcs.
    """

    def __init__(self, nodes: tuple[str, ...] = (), *, vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ValidationError("vnodes must be at least 1")
        self.vnodes = vnodes
        self._ring: list[tuple[int, str]] = []
        self._nodes: set[str] = set()
        for node in nodes:
            self.add(node)

    @property
    def nodes(self) -> frozenset[str]:
        return frozenset(self._nodes)

    def add(self, node: str) -> None:
        """Insert ``node``'s virtual nodes (no-op if present)."""
        if node in self._nodes:
            return
        self._nodes.add(node)
        for index in range(self.vnodes):
            bisect.insort(self._ring, (_hash(f"{node}#{index}"), node))

    def remove(self, node: str) -> None:
        """Remove ``node``'s virtual nodes (no-op if absent)."""
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        self._ring = [entry for entry in self._ring if entry[1] != node]

    def node_for(self, key: str) -> str:
        """The node owning ``key`` (first vnode clockwise of its hash)."""
        if not self._ring:
            raise ValidationError("hash ring is empty; no shards registered")
        index = bisect.bisect_left(self._ring, (_hash(key), ""))
        if index == len(self._ring):
            index = 0
        return self._ring[index][1]


@dataclass
class ShardInfo:
    """One shard's membership: its primary host and read-replica hosts."""

    shard_id: str
    primary: str
    replicas: tuple[str, ...] = ()


@dataclass
class RoutingTable:
    """Shared, mutable view of fleet membership and key ownership.

    The router reads it on every request; the cluster mutates it on
    membership change (add shard, promote replica). All mutation goes
    through methods holding ``_lock`` so the router never observes a
    half-updated table.
    """

    vnodes: int = 64
    shards: dict[str, ShardInfo] = field(default_factory=dict)
    app_category: dict[str, str] = field(default_factory=dict)
    # Directory-based placement: explicitly pinned categories override
    # the ring (pre-splitting hot keyspaces, like HBase region splits or
    # Redis hash tags). Unpinned categories fall back to consistent
    # hashing, which also governs rebalancing on membership change.
    category_pins: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._ring = HashRing(vnodes=self.vnodes)
        self._lock = threading.Lock()

    # -- membership ----------------------------------------------------
    def add_shard(self, info: ShardInfo) -> None:
        """Add (or replace) a shard and put it on the ring."""
        with self._lock:
            self.shards[info.shard_id] = info
            self._ring.add(info.shard_id)

    def remove_shard(self, shard_id: str) -> None:
        """Drop a shard from the table and the ring (no-op if absent)."""
        with self._lock:
            self.shards.pop(shard_id, None)
            self._ring.remove(shard_id)

    def set_replicas(self, shard_id: str, replicas: tuple[str, ...]) -> None:
        """Replace a shard's replica list (promotion consumes one)."""
        with self._lock:
            info = self.shards[shard_id]
            self.shards[shard_id] = ShardInfo(
                shard_id=info.shard_id, primary=info.primary, replicas=replicas
            )

    def learn_app(self, app_id: str, category: str) -> None:
        """Teach the router which category an application belongs to."""
        with self._lock:
            self.app_category[app_id] = category

    def pin_category(self, category: str, shard_id: str) -> None:
        """Pin ``category`` to ``shard_id``, overriding the hash ring."""
        with self._lock:
            if shard_id not in self.shards:
                raise ValidationError(f"unknown shard {shard_id!r}")
            self.category_pins[category] = shard_id

    # -- lookups -------------------------------------------------------
    def shard_ids(self) -> tuple[str, ...]:
        """All registered shard ids, sorted."""
        with self._lock:
            return tuple(sorted(self.shards))

    def shard_for_key(self, key: str) -> ShardInfo:
        """The shard owning an arbitrary key per the ring (no pins)."""
        with self._lock:
            return self.shards[self._ring.node_for(key)]

    def shard_for_category(self, category: str) -> ShardInfo:
        """The shard owning ``category`` (pin first, then ring)."""
        return self.shards[self.category_owner(category)]

    def category_owner(self, category: str) -> str:
        """The shard id owning ``category``: its pin, else the ring."""
        with self._lock:
            pinned = self.category_pins.get(category)
            if pinned is not None and pinned in self.shards:
                return pinned
            return self._ring.node_for(category)

    def shard_for_host(self, host: str) -> ShardInfo | None:
        """The shard whose primary is ``host`` (task-id prefix routing)."""
        with self._lock:
            for info in self.shards.values():
                if info.primary == host:
                    return info
        return None

    def primaries(self) -> tuple[str, ...]:
        """Every primary host, in shard-id order (fan-out targets)."""
        with self._lock:
            return tuple(info.primary for _, info in sorted(self.shards.items()))


class ShardRouter:
    """The fleet's envelope-speaking front door (an HTTP endpoint)."""

    def __init__(
        self,
        host: str,
        network: Network,
        table: RoutingTable,
        *,
        client: ResilientClient | None = None,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.host = host
        self.network = network
        self.table = table
        self.client = client if client is not None else ResilientClient(network)
        self.metrics = metrics if metrics is not None else get_metrics()
        self.tracer = tracer if tracer is not None else get_tracer()
        self._rr = itertools.count()
        self._m_requests = self.metrics.counter(
            "sor_shard_router_requests_total",
            "requests forwarded by the shard router, by shard and role",
            labels=("shard", "role"),
        )
        self._m_misroutes = self.metrics.counter(
            "sor_shard_router_misroutes_total",
            "requests whose routing key was unknown (hash fallback used)",
        )
        self._m_read_failovers = self.metrics.counter(
            "sor_shard_router_read_failovers_total",
            "rank queries that failed over past an unreachable replica",
        )
        self._m_rejected = self.metrics.counter(
            "sor_shard_router_rejected_total",
            "requests answered busy because every candidate backend failed",
        )
        network.register(host, self)

    # -- endpoint ------------------------------------------------------
    def handle_request(self, request: HttpRequest) -> HttpResponse:
        """Route one request to the shard owning its key."""
        if request.method == "GET" and request.path == "/metrics":
            from repro.obs import to_prometheus_text

            body = to_prometheus_text(self.metrics).encode("utf-8")
            return HttpResponse(status=200, body=body)
        try:
            envelope = Envelope.from_bytes(request.body)
        except CodecError:
            return HttpResponse(status=400)
        with self.tracer.span(
            "router.route", type=envelope.message_type.value
        ):
            return self._route(request, envelope)

    def _route(self, request: HttpRequest, envelope: Envelope) -> HttpResponse:
        kind = envelope.message_type
        payload = envelope.payload
        if kind is MessageType.RANK_QUERY and envelope.idempotency_key is None:
            category = str(payload.get("category", ""))
            return self._route_read(request, category)
        if kind is MessageType.PARTICIPATE:
            app_id = str(payload.get("app_id", ""))
            category = self.table.app_category.get(app_id)
            if category is None:
                self._m_misroutes.inc()
                category = app_id
            return self._route_write(
                request, self.table.shard_for_category(category)
            )
        if kind is MessageType.SENSED_DATA:
            task_id = str(payload.get("task_id", ""))
            info = None
            if ":task-" in task_id:
                info = self.table.shard_for_host(task_id.rsplit(":task-", 1)[0])
            if info is None:
                self._m_misroutes.inc()
                info = self.table.shard_for_key(task_id)
            return self._route_write(request, info)
        if kind in (
            MessageType.PREFERENCES,
            MessageType.PONG,
            MessageType.LOCATION_REPORT,
        ):
            return self._route_fanout(request)
        if kind is MessageType.RANK_QUERY:
            # Keyed rank query: the deduped write path on the primary.
            category = str(payload.get("category", ""))
            return self._route_write(
                request, self.table.shard_for_category(category)
            )
        # Anything else keys on the sender so the reply stays stable.
        return self._route_write(request, self.table.shard_for_key(envelope.sender))

    # -- forwarding ----------------------------------------------------
    def _forward(self, request: HttpRequest, host: str) -> HttpResponse:
        return self.client.send(
            HttpRequest(
                method=request.method,
                host=host,
                path=request.path,
                body=request.body,
                headers=request.headers,
            )
        )

    def _route_write(self, request: HttpRequest, info: ShardInfo) -> HttpResponse:
        self._m_requests.inc(shard=info.shard_id, role="primary")
        try:
            return self._forward(request, info.primary)
        except TransportError:
            # Retries exhausted / circuit open / deadline: answer BUSY so
            # the phone's own resilient client backs off and re-sends —
            # the window a failover promotion needs to take over.
            self._m_rejected.inc()
            return self._busy_response()

    def _route_read(self, request: HttpRequest, category: str) -> HttpResponse:
        info = self.table.shard_for_category(category)
        replicas = info.replicas
        candidates: list[str] = []
        if replicas:
            start = next(self._rr) % len(replicas)
            candidates.extend(replicas[start:] + replicas[:start])
        candidates.append(info.primary)
        for index, host in enumerate(candidates):
            role = "primary" if host == info.primary else "replica"
            self._m_requests.inc(shard=info.shard_id, role=role)
            try:
                return self._forward(request, host)
            except TransportError:
                if index < len(candidates) - 1:
                    self._m_read_failovers.inc()
        self._m_rejected.inc()
        return self._busy_response()

    def _route_fanout(self, request: HttpRequest) -> HttpResponse:
        """Apply a user-scoped mutation on every shard primary.

        User rows are replicated to all shards, so PREFERENCES / PONG /
        LOCATION_REPORT must land everywhere. The first shard's reply is
        returned; if *any* shard fails the phone gets BUSY and re-sends,
        which the already-updated shards dedupe via the idempotency key.
        """
        first: HttpResponse | None = None
        for shard_id in self.table.shard_ids():
            info = self.table.shards[shard_id]
            self._m_requests.inc(shard=info.shard_id, role="primary")
            try:
                response = self._forward(request, info.primary)
            except TransportError:
                self._m_rejected.inc()
                return self._busy_response()
            if first is None:
                first = response
        if first is None:
            self._m_rejected.inc()
            return self._busy_response()
        return first

    def _busy_response(self) -> HttpResponse:
        envelope = Envelope(
            message_type=MessageType.BUSY,
            sender=self.host,
            recipient="",
            payload={"retry_after_s": 0.05},
        )
        return HttpResponse(
            status=503,
            body=envelope.to_bytes(),
            headers={"Retry-After": "0.05"},
        )
