"""A simulated network joining phones and servers.

The network delivers :class:`~repro.net.http.HttpRequest` objects to
registered endpoints synchronously (HTTP is request/response), while
modelling the impairments that matter to SOR's protocol logic:

* latency — base plus uniform jitter, with optional heavy-tailed
  *spikes*; recorded, and charged to the simulation clock when one is
  attached;
* request-leg loss — the request never reaches the endpoint;
* response-leg loss — the endpoint **does** handle the request, but the
  response never makes it back, so the sender sees the same
  :class:`~repro.common.errors.TransportError` as a timeout while the
  server has already acted (the delivered-but-unacked case idempotency
  keys exist for);
* per-host impairment overrides — one flaky cell link on an otherwise
  healthy network;
* scripted outage windows — a host (or the whole network) is dark for
  ``[start_s, end_s)`` of simulated time.

A dropped leg surfaces as a :class:`TransportError`, which the sender
handles exactly as it would a timed-out HTTP call.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from repro.common.clock import Clock, ManualClock
from repro.common.errors import ConfigurationError, TransportError, ValidationError
from repro.common.validation import require_in_range
from repro.net.http import HttpEndpoint, HttpRequest, HttpResponse
from repro.obs import MetricsRegistry, get_metrics


@dataclass(frozen=True)
class NetworkConditions:
    """Impairment model for a simulated link.

    ``drop_probability`` is the *request-leg* loss rate;
    ``response_drop_probability`` drops the response after the endpoint
    has handled the request. Latency spikes replace the sampled latency
    with ``latency_spike_s`` with probability
    ``latency_spike_probability`` (a crude heavy tail).
    """

    base_latency_s: float = 0.05
    jitter_s: float = 0.02
    drop_probability: float = 0.0
    response_drop_probability: float = 0.0
    latency_spike_probability: float = 0.0
    latency_spike_s: float = 2.0

    def __post_init__(self) -> None:
        if self.base_latency_s < 0 or self.jitter_s < 0 or self.latency_spike_s < 0:
            raise ValidationError("latency parameters must be non-negative")
        require_in_range(self.drop_probability, "drop_probability", 0.0, 1.0)
        require_in_range(
            self.response_drop_probability, "response_drop_probability", 0.0, 1.0
        )
        require_in_range(
            self.latency_spike_probability, "latency_spike_probability", 0.0, 1.0
        )


@dataclass(frozen=True)
class OutageWindow:
    """A scripted interval during which a host (or everyone) is dark."""

    start_s: float
    end_s: float
    host: str | None = None  # None = the whole network

    def __post_init__(self) -> None:
        if self.end_s <= self.start_s:
            raise ValidationError("outage must end after it starts")

    def covers(self, now: float, host: str) -> bool:
        """Whether this window silences ``host`` at time ``now``."""
        if self.host is not None and self.host != host:
            return False
        return self.start_s <= now < self.end_s


@dataclass
class NetworkStats:
    """Counters the tests and benchmarks read back.

    ``requests_sent``/``bytes_sent``/``per_host_requests`` count only
    requests that reached a wire (a registered host); sends to unknown
    hosts are tallied separately in ``unknown_host_sends`` so per-host
    stats are never skewed by traffic that was never transmitted.
    """

    requests_sent: int = 0
    requests_dropped: int = 0
    responses_dropped: int = 0
    responses_delivered: int = 0
    unknown_host_sends: int = 0
    outage_drops: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    total_latency_s: float = 0.0
    per_host_requests: dict[str, int] = field(default_factory=dict)


class Network:
    """Registry of endpoints plus the simulated request path."""

    def __init__(
        self,
        conditions: NetworkConditions | None = None,
        *,
        rng: np.random.Generator | None = None,
        clock: Clock | None = None,
        time_source: Clock | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.conditions = conditions or NetworkConditions()
        # Guards the shared rng and the stats counters when many client
        # threads send at once; never held across an endpoint's
        # handle_request, so the wire does not serialize the servers.
        self._lock = threading.Lock()
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._clock = clock
        # Outage windows are evaluated against simulated time; a clock
        # used purely as a time source does not get latency charged.
        self._time_source = time_source if time_source is not None else clock
        self._endpoints: dict[str, HttpEndpoint] = {}
        self._host_conditions: dict[str, NetworkConditions] = {}
        self._outages: list[OutageWindow] = []
        self.stats = NetworkStats()
        self.metrics = metrics if metrics is not None else get_metrics()
        self._m_requests = self.metrics.counter(
            "sor_net_requests_total", "HTTP requests put on the simulated wire"
        )
        self._m_bytes_sent = self.metrics.counter(
            "sor_net_bytes_sent_total", "request body bytes sent"
        )
        self._m_bytes_received = self.metrics.counter(
            "sor_net_bytes_received_total", "response body bytes received"
        )
        self._m_failures = self.metrics.counter(
            "sor_net_failures_total",
            "requests that never produced a response",
            labels=("reason",),
        )

    def register(self, host: str, endpoint: HttpEndpoint) -> None:
        """Attach ``endpoint`` at address ``host``."""
        if host in self._endpoints:
            raise TransportError(f"host {host!r} is already registered")
        self._endpoints[host] = endpoint

    def unregister(self, host: str) -> None:
        """Detach the endpoint at ``host`` (simulates the phone going dark)."""
        if host not in self._endpoints:
            raise TransportError(f"host {host!r} is not registered")
        del self._endpoints[host]

    def is_registered(self, host: str) -> bool:
        """Whether an endpoint is registered at ``host``."""
        return host in self._endpoints

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def set_host_conditions(self, host: str, conditions: NetworkConditions) -> None:
        """Override the impairments of the link to one host."""
        self._host_conditions[host] = conditions

    def clear_host_conditions(self, host: str) -> None:
        """Drop a per-host override; the host reverts to the defaults."""
        self._host_conditions.pop(host, None)

    def schedule_outage(
        self, start_s: float, end_s: float, *, host: str | None = None
    ) -> OutageWindow:
        """Script an outage of ``host`` (or everyone) for ``[start_s, end_s)``.

        Outages are evaluated against simulated time, so the network
        needs a clock (or ``time_source``) to honour them.
        """
        if self._time_source is None:
            raise ConfigurationError(
                "outage windows need a clock or time_source on the network"
            )
        window = OutageWindow(start_s=start_s, end_s=end_s, host=host)
        self._outages.append(window)
        return window

    def conditions_for(self, host: str) -> NetworkConditions:
        """The impairments currently in force for the link to ``host``."""
        return self._host_conditions.get(host, self.conditions)

    def _in_outage(self, host: str) -> bool:
        if not self._outages or self._time_source is None:
            return False
        now = self._time_source.now()
        return any(window.covers(now, host) for window in self._outages)

    def _sample_latency(self, conditions: NetworkConditions) -> float:
        if conditions.latency_spike_probability > 0 and (
            float(self._rng.random()) < conditions.latency_spike_probability
        ):
            return conditions.latency_spike_s
        jitter = (
            float(self._rng.uniform(0.0, conditions.jitter_s))
            if conditions.jitter_s > 0
            else 0.0
        )
        return conditions.base_latency_s + jitter

    # ------------------------------------------------------------------
    # the request path
    # ------------------------------------------------------------------
    def send(self, request: HttpRequest) -> HttpResponse:
        """Deliver ``request`` to its host and return the response.

        Raises :class:`TransportError` if the host is unknown, the host
        is inside a scripted outage window, or either the request or the
        response leg is dropped. On a response-leg drop the endpoint
        **has already handled** the request — exactly the
        delivered-but-unacked case retries must be idempotent against.
        """
        endpoint = self._endpoints.get(request.host)
        if endpoint is None:
            with self._lock:
                self.stats.unknown_host_sends += 1
            self._m_failures.inc(reason="unknown_host")
            raise TransportError(f"no endpoint registered at {request.host!r}")
        conditions = self.conditions_for(request.host)
        with self._lock:
            self.stats.requests_sent += 1
            self.stats.bytes_sent += len(request.body)
            self.stats.per_host_requests[request.host] = (
                self.stats.per_host_requests.get(request.host, 0) + 1
            )
            if self._in_outage(request.host):
                self.stats.outage_drops += 1
                outage = True
            else:
                outage = False
                request_dropped = conditions.drop_probability > 0 and (
                    float(self._rng.random()) < conditions.drop_probability
                )
                if request_dropped:
                    self.stats.requests_dropped += 1
                else:
                    latency = self._sample_latency(conditions)
                    self.stats.total_latency_s += latency
                    if isinstance(self._clock, ManualClock):
                        self._clock.advance(latency)
        self._m_requests.inc()
        self._m_bytes_sent.inc(len(request.body))
        if outage:
            self._m_failures.inc(reason="outage")
            raise TransportError(f"host {request.host!r} is inside an outage window")
        if request_dropped:
            self._m_failures.inc(reason="request_dropped")
            raise TransportError(f"request to {request.host!r} was dropped")
        response = endpoint.handle_request(request)
        with self._lock:
            response_dropped = conditions.response_drop_probability > 0 and (
                float(self._rng.random()) < conditions.response_drop_probability
            )
            if response_dropped:
                self.stats.responses_dropped += 1
            else:
                self.stats.responses_delivered += 1
                self.stats.bytes_received += len(response.body)
        if response_dropped:
            self._m_failures.inc(reason="response_dropped")
            raise TransportError(
                f"response from {request.host!r} was dropped (request delivered)"
            )
        self._m_bytes_received.inc(len(response.body))
        return response
