"""A simulated network joining phones and servers.

The network delivers :class:`~repro.net.http.HttpRequest` objects to
registered endpoints synchronously (HTTP is request/response), while
modelling the two impairments that matter to SOR's protocol logic:
latency (recorded, and charged to the simulation clock when one is
attached) and message loss (a dropped request surfaces as a
:class:`~repro.common.errors.TransportError`, which the sender handles
exactly as it would a timed-out HTTP call).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.clock import Clock, ManualClock
from repro.common.errors import TransportError, ValidationError
from repro.common.validation import require_in_range
from repro.net.http import HttpEndpoint, HttpRequest, HttpResponse
from repro.obs import MetricsRegistry, get_metrics


@dataclass(frozen=True)
class NetworkConditions:
    """Impairment model for a simulated link."""

    base_latency_s: float = 0.05
    jitter_s: float = 0.02
    drop_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.base_latency_s < 0 or self.jitter_s < 0:
            raise ValidationError("latency parameters must be non-negative")
        require_in_range(self.drop_probability, "drop_probability", 0.0, 1.0)


@dataclass
class NetworkStats:
    """Counters the tests and benchmarks read back."""

    requests_sent: int = 0
    requests_dropped: int = 0
    responses_delivered: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    total_latency_s: float = 0.0
    per_host_requests: dict[str, int] = field(default_factory=dict)


class Network:
    """Registry of endpoints plus the simulated request path."""

    def __init__(
        self,
        conditions: NetworkConditions | None = None,
        *,
        rng: np.random.Generator | None = None,
        clock: Clock | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.conditions = conditions or NetworkConditions()
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._clock = clock
        self._endpoints: dict[str, HttpEndpoint] = {}
        self.stats = NetworkStats()
        self.metrics = metrics if metrics is not None else get_metrics()
        self._m_requests = self.metrics.counter(
            "sor_net_requests_total", "HTTP requests put on the simulated wire"
        )
        self._m_bytes_sent = self.metrics.counter(
            "sor_net_bytes_sent_total", "request body bytes sent"
        )
        self._m_bytes_received = self.metrics.counter(
            "sor_net_bytes_received_total", "response body bytes received"
        )
        self._m_failures = self.metrics.counter(
            "sor_net_failures_total",
            "requests that never produced a response",
            labels=("reason",),
        )

    def register(self, host: str, endpoint: HttpEndpoint) -> None:
        """Attach ``endpoint`` at address ``host``."""
        if host in self._endpoints:
            raise TransportError(f"host {host!r} is already registered")
        self._endpoints[host] = endpoint

    def unregister(self, host: str) -> None:
        """Detach the endpoint at ``host`` (simulates the phone going dark)."""
        if host not in self._endpoints:
            raise TransportError(f"host {host!r} is not registered")
        del self._endpoints[host]

    def is_registered(self, host: str) -> bool:
        """Whether an endpoint is registered at ``host``."""
        return host in self._endpoints

    def _sample_latency(self) -> float:
        jitter = (
            float(self._rng.uniform(0.0, self.conditions.jitter_s))
            if self.conditions.jitter_s > 0
            else 0.0
        )
        return self.conditions.base_latency_s + jitter

    def send(self, request: HttpRequest) -> HttpResponse:
        """Deliver ``request`` to its host and return the response.

        Raises :class:`TransportError` if the host is unknown or the
        (request or response) leg is dropped.
        """
        self.stats.requests_sent += 1
        self.stats.bytes_sent += len(request.body)
        self._m_requests.inc()
        self._m_bytes_sent.inc(len(request.body))
        self.stats.per_host_requests[request.host] = (
            self.stats.per_host_requests.get(request.host, 0) + 1
        )
        endpoint = self._endpoints.get(request.host)
        if endpoint is None:
            self._m_failures.inc(reason="unknown_host")
            raise TransportError(f"no endpoint registered at {request.host!r}")
        if self.conditions.drop_probability > 0 and (
            float(self._rng.random()) < self.conditions.drop_probability
        ):
            self.stats.requests_dropped += 1
            self._m_failures.inc(reason="dropped")
            raise TransportError(f"request to {request.host!r} was dropped")
        latency = self._sample_latency()
        self.stats.total_latency_s += latency
        if isinstance(self._clock, ManualClock):
            self._clock.advance(latency)
        response = endpoint.handle_request(request)
        self.stats.responses_delivered += 1
        self.stats.bytes_received += len(response.body)
        self._m_bytes_received.inc(len(response.body))
        return response
