"""Networking substrate.

SOR's frontend and server talk HTTP, with all SOR-specific information
encoded as an opaque binary message body (Section II-A: "All SOR-specific
information is encoded as binary data and stored in the message body of
an HTTP message"). This package provides:

* :mod:`repro.net.codec` — the type-tagged binary encoding used for
  message bodies (varints, IEEE doubles, length-prefixed strings, nested
  lists and dictionaries),
* :mod:`repro.net.messages` — the SOR message envelope and message types,
* :mod:`repro.net.http` — minimal HTTP request/response objects and the
  endpoint protocol,
* :mod:`repro.net.transport` — a simulated network with latency, loss on
  either leg, per-host impairments and scripted outage windows,
* :mod:`repro.net.resilience` — the resilient client: bounded retries
  with decorrelated jitter, per-request deadlines, per-host circuit
  breakers, and the idempotency cache endpoints dedupe replays with,
* :mod:`repro.net.gcm` — a Google-Cloud-Messaging-like push channel the
  server uses to re-ping phones it has lost track of.
"""

from repro.net.codec import decode_body, decode_value, encode_body, encode_value
from repro.net.gcm import CloudMessenger
from repro.net.http import HttpEndpoint, HttpRequest, HttpResponse
from repro.net.messages import Envelope, MessageType
from repro.net.resilience import (
    BreakerPolicy,
    CircuitBreaker,
    CircuitState,
    IdempotencyCache,
    ResilientClient,
    RetryPolicy,
)
from repro.net.transport import Network, NetworkConditions, NetworkStats, OutageWindow

__all__ = [
    "BreakerPolicy",
    "CircuitBreaker",
    "CircuitState",
    "CloudMessenger",
    "Envelope",
    "HttpEndpoint",
    "HttpRequest",
    "HttpResponse",
    "IdempotencyCache",
    "MessageType",
    "Network",
    "NetworkConditions",
    "NetworkStats",
    "OutageWindow",
    "ResilientClient",
    "RetryPolicy",
    "decode_body",
    "decode_value",
    "encode_body",
    "encode_value",
]
