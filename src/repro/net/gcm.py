"""A Google-Cloud-Messaging-like push channel.

The paper's message handler "can communicate with a Google server. This
is useful when a sensing server loses track of a particular mobile
phone, it can ask the mobile device to ping it via a Google Cloud
Messaging server." This module reproduces that role: devices register a
token and a wake-up callback; the server pushes a small payload by
token, which invokes the callback out of band of the normal HTTP path.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.common.errors import TransportError

WakeCallback = Callable[[dict[str, Any]], None]


class CloudMessenger:
    """Token-addressed push delivery to registered devices."""

    def __init__(self) -> None:
        self._devices: dict[str, WakeCallback] = {}
        self.pushes_delivered = 0
        self.pushes_failed = 0

    def register_device(self, token: str, callback: WakeCallback) -> None:
        """Register (or re-register) a device's wake-up callback."""
        self._devices[token] = callback

    def unregister_device(self, token: str) -> None:
        """Remove a device registration; unknown tokens are ignored."""
        self._devices.pop(token, None)

    def is_registered(self, token: str) -> bool:
        """Whether a device is registered under ``token``."""
        return token in self._devices

    def push(self, token: str, payload: dict[str, Any]) -> None:
        """Deliver ``payload`` to the device registered under ``token``.

        Raises :class:`TransportError` if the token is unknown — the
        server treats that as a permanently lost phone.
        """
        callback = self._devices.get(token)
        if callback is None:
            self.pushes_failed += 1
            raise TransportError(f"no device registered for token {token!r}")
        callback(dict(payload))
        self.pushes_delivered += 1
