"""SOR message envelopes.

Every exchange between the mobile frontend and the sensing server is an
:class:`Envelope`: a message type, sender/recipient identities and a
payload dictionary, serialized to an opaque binary body with
:mod:`repro.net.codec`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.common.errors import CodecError
from repro.net import codec


class MessageType(enum.Enum):
    """The message kinds exchanged in the SOR protocol."""

    PARTICIPATE = "participate"  # phone → server: barcode scanned
    SCHEDULE = "schedule"  # server → phone: sensing schedule + script
    SENSED_DATA = "sensed_data"  # phone → server: raw readings
    LOCATION_QUERY = "location_query"  # server → phone: where are you?
    LOCATION_REPORT = "location_report"  # phone → server: current location
    PING = "ping"  # server → phone via GCM: re-establish contact
    PONG = "pong"  # phone → server: reply to ping
    PREFERENCES = "preferences"  # phone → server: local sensor preferences
    ACK = "ack"  # either direction: success acknowledgement
    ERROR = "error"  # either direction: failure notice


@dataclass(frozen=True)
class Envelope:
    """A single SOR protocol message."""

    message_type: MessageType
    sender: str
    recipient: str
    payload: dict[str, Any] = field(default_factory=dict)

    def to_bytes(self) -> bytes:
        """Serialize to the opaque binary body carried inside HTTP."""
        return codec.encode_body(
            {
                "type": self.message_type.value,
                "sender": self.sender,
                "recipient": self.recipient,
                "payload": self.payload,
            }
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "Envelope":
        """Parse an envelope from its binary body."""
        body = codec.decode_body(data)
        try:
            message_type = MessageType(body["type"])
            sender = body["sender"]
            recipient = body["recipient"]
            payload = body.get("payload", {})
        except (KeyError, ValueError) as exc:
            raise CodecError(f"malformed envelope: {exc}") from exc
        if not isinstance(sender, str) or not isinstance(recipient, str):
            raise CodecError("envelope sender/recipient must be strings")
        if not isinstance(payload, dict):
            raise CodecError("envelope payload must be a dict")
        return cls(
            message_type=message_type,
            sender=sender,
            recipient=recipient,
            payload=payload,
        )

    def reply(
        self, message_type: MessageType, payload: dict[str, Any] | None = None
    ) -> "Envelope":
        """Build a reply envelope with sender/recipient swapped."""
        return Envelope(
            message_type=message_type,
            sender=self.recipient,
            recipient=self.sender,
            payload=payload or {},
        )
