"""SOR message envelopes.

Every exchange between the mobile frontend and the sensing server is an
:class:`Envelope`: a message type, sender/recipient identities and a
payload dictionary, serialized to an opaque binary body with
:mod:`repro.net.codec`.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field, replace
from typing import Any

from repro.common.errors import CodecError
from repro.net import codec


class MessageType(enum.Enum):
    """The message kinds exchanged in the SOR protocol."""

    PARTICIPATE = "participate"  # phone → server: barcode scanned
    SCHEDULE = "schedule"  # server → phone: sensing schedule + script
    SENSED_DATA = "sensed_data"  # phone → server: raw readings
    LOCATION_QUERY = "location_query"  # server → phone: where are you?
    LOCATION_REPORT = "location_report"  # phone → server: current location
    PING = "ping"  # server → phone via GCM: re-establish contact
    PONG = "pong"  # phone → server: reply to ping
    PREFERENCES = "preferences"  # phone → server: local sensor preferences
    RANK_QUERY = "rank_query"  # client → server: rank a category for profiles
    RANKING = "ranking"  # server → client: the requested rankings
    ACK = "ack"  # either direction: success acknowledgement
    ERROR = "error"  # either direction: failure notice
    BUSY = "busy"  # server → phone: admission queue full, retry later


def _sort_keys(value: Any) -> Any:
    """Recursively sort dict keys so equal content hashes equally."""
    if isinstance(value, dict):
        return {key: _sort_keys(value[key]) for key in sorted(value)}
    if isinstance(value, (list, tuple)):
        return [_sort_keys(item) for item in value]
    return value


@dataclass(frozen=True)
class Envelope:
    """A single SOR protocol message.

    ``idempotency_key`` makes retried delivery safe: the receiving
    endpoint caches the response it served for a key and replays it for
    duplicates instead of re-running the handler (so a schedule is never
    registered twice and a sensor upload is never ingested twice when
    only the response leg was lost). ``None`` means "not retry-safe";
    the message handlers stamp :meth:`content_key` before sending.
    """

    message_type: MessageType
    sender: str
    recipient: str
    payload: dict[str, Any] = field(default_factory=dict)
    idempotency_key: str | None = None

    def to_bytes(self) -> bytes:
        """Serialize to the opaque binary body carried inside HTTP."""
        body = {
            "type": self.message_type.value,
            "sender": self.sender,
            "recipient": self.recipient,
            "payload": self.payload,
        }
        if self.idempotency_key is not None:
            body["idem"] = self.idempotency_key
        return codec.encode_body(body)

    @classmethod
    def from_bytes(cls, data: bytes) -> "Envelope":
        """Parse an envelope from its binary body."""
        body = codec.decode_body(data)
        try:
            message_type = MessageType(body["type"])
            sender = body["sender"]
            recipient = body["recipient"]
            payload = body.get("payload", {})
            idempotency_key = body.get("idem")
        except (KeyError, ValueError) as exc:
            raise CodecError(f"malformed envelope: {exc}") from exc
        if not isinstance(sender, str) or not isinstance(recipient, str):
            raise CodecError("envelope sender/recipient must be strings")
        if not isinstance(payload, dict):
            raise CodecError("envelope payload must be a dict")
        if idempotency_key is not None and not isinstance(idempotency_key, str):
            raise CodecError("envelope idempotency key must be a string")
        return cls(
            message_type=message_type,
            sender=sender,
            recipient=recipient,
            payload=payload,
            idempotency_key=idempotency_key,
        )

    def content_key(self) -> str:
        """A deterministic idempotency key derived from the content.

        Two envelopes with the same type, parties and payload hash to
        the same key, so an application-level re-send of identical
        content (a phone re-uploading a finished task on its next tick)
        dedupes exactly like a transport-level retry. The digest is over
        a key-sorted binary encoding *without* any key already set, so
        dict insertion order never changes the key.
        """
        canonical = codec.encode_body(
            {
                "type": self.message_type.value,
                "sender": self.sender,
                "recipient": self.recipient,
                "payload": _sort_keys(self.payload),
            }
        )
        return "ck-" + hashlib.sha256(canonical).hexdigest()[:24]

    def with_idempotency_key(self, key: str | None = None) -> "Envelope":
        """A copy carrying ``key`` (default: the derived content key)."""
        return replace(
            self, idempotency_key=key if key is not None else self.content_key()
        )

    def reply(
        self, message_type: MessageType, payload: dict[str, Any] | None = None
    ) -> "Envelope":
        """Build a reply envelope with sender/recipient swapped."""
        return Envelope(
            message_type=message_type,
            sender=self.recipient,
            recipient=self.sender,
            payload=payload or {},
        )
