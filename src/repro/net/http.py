"""Minimal HTTP request/response objects and the endpoint protocol.

SOR uses HTTP purely as a carrier: the interesting content is the binary
body. These classes model exactly what the message handlers on both
sides need — method, path, headers and body — without pulling in a real
HTTP stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Protocol, runtime_checkable


@dataclass(frozen=True)
class HttpRequest:
    """An HTTP request addressed to a host registered on the network."""

    method: str
    host: str
    path: str
    body: bytes = b""
    headers: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "method", self.method.upper())


@dataclass(frozen=True)
class HttpResponse:
    """An HTTP response. 200 for success, 4xx/5xx for failures."""

    status: int
    body: bytes = b""
    headers: Mapping[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


@runtime_checkable
class HttpEndpoint(Protocol):
    """Anything that can serve HTTP requests (phones and servers)."""

    def handle_request(self, request: HttpRequest) -> HttpResponse:
        """Serve one request synchronously."""
        ...
