"""The resilient network path: retries, deadlines and circuit breaking.

SOR's protocol logic assumes phones and the sensing server survive lossy
cellular links — GCM wake-ups, schedule pushes and data uploads must
tolerate drops. This module wraps the raw :class:`~repro.net.transport.Network`
send in a :class:`ResilientClient` that

* retries failed sends with exponential backoff and *decorrelated
  jitter* (the AWS formula: ``sleep = min(cap, uniform(base, 3·prev))``),
  deterministic under an injected ``rng``;
* enforces a per-request deadline against an injected
  :class:`~repro.common.clock.Clock` — retrying stops when the next
  backoff would overrun it (:class:`DeadlineExceededError`);
* keeps a per-host :class:`CircuitBreaker`: after
  ``failure_threshold`` consecutive failures the circuit opens and
  sends fail fast (:class:`CircuitOpenError`) until
  ``recovery_timeout_s`` has passed, when a half-open probe is allowed
  through — success closes the circuit, failure re-opens it.

Retries are only safe end to end because envelopes carry idempotency
keys and both endpoints dedupe replays through an
:class:`IdempotencyCache` — see :mod:`repro.net.messages` and
``docs/RESILIENCE.md`` for the contract.

Everything is instrumented through :mod:`repro.obs`:
``sor_net_retries_total``, ``sor_net_circuit_state``,
``sor_net_retry_backoff_seconds``, ``sor_net_resilient_sends_total``.
"""

from __future__ import annotations

import enum
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Protocol, TypeVar, runtime_checkable

import numpy as np

from repro.common.clock import Clock, ManualClock, SystemClock
from repro.common.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    ServerBusyError,
    TransportError,
    ValidationError,
)
from repro.net.http import HttpRequest, HttpResponse
from repro.obs import MetricsRegistry, Tracer, get_metrics, get_tracer

T = TypeVar("T")

#: Buckets for individual backoff sleeps (sub-second up to the cap).
_BACKOFF_BUCKETS: tuple[float, ...] = (
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


@dataclass(frozen=True)
class RetryPolicy:
    """How hard a :class:`ResilientClient` tries before giving up."""

    max_attempts: int = 4
    base_backoff_s: float = 0.2
    max_backoff_s: float = 30.0
    deadline_s: float = 120.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValidationError("max_attempts must be at least 1")
        if self.base_backoff_s <= 0 or self.max_backoff_s < self.base_backoff_s:
            raise ValidationError(
                "need 0 < base_backoff_s <= max_backoff_s for backoff to work"
            )
        if self.deadline_s <= 0:
            raise ValidationError("deadline_s must be positive")


@dataclass(frozen=True)
class BreakerPolicy:
    """When a host's circuit opens and how it recovers."""

    failure_threshold: int = 5
    recovery_timeout_s: float = 30.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValidationError("failure_threshold must be at least 1")
        if self.recovery_timeout_s <= 0:
            raise ValidationError("recovery_timeout_s must be positive")


class CircuitState(enum.Enum):
    """The classic three breaker states; values are the gauge encoding."""

    CLOSED = 0
    OPEN = 1
    HALF_OPEN = 2


class CircuitBreaker:
    """One host's circuit: consecutive failures open it, a probe closes it.

    Thread-safe: many worker/driver threads share one breaker per host,
    so every state transition happens under a per-breaker lock —
    unlocked ``consecutive_failures += 1`` increments lose updates under
    contention and can miss the open threshold entirely. In HALF_OPEN
    exactly **one** in-flight probe is admitted (``_probe_in_flight``);
    concurrent callers fail fast with :class:`CircuitOpenError` until
    that probe resolves, so a barely-recovered host never takes a
    thundering herd.
    """

    def __init__(self, policy: BreakerPolicy, clock: Clock) -> None:
        self.policy = policy
        self.clock = clock
        self.state = CircuitState.CLOSED
        self.consecutive_failures = 0
        self.opened_at = 0.0
        self._lock = threading.Lock()
        self._probe_in_flight = False

    def allow(self) -> bool:
        """Whether a send may go through right now.

        In OPEN state, once ``recovery_timeout_s`` has elapsed the
        breaker transitions to HALF_OPEN and admits a single probe;
        every other caller is rejected until the probe resolves via
        :meth:`record_success`, :meth:`record_failure` or
        :meth:`abort_probe`.
        """
        with self._lock:
            if self.state is CircuitState.CLOSED:
                return True
            if self.state is CircuitState.OPEN:
                if (
                    self.clock.now() - self.opened_at
                    >= self.policy.recovery_timeout_s
                ):
                    self.state = CircuitState.HALF_OPEN
                    self._probe_in_flight = True
                    return True
                return False
            # HALF_OPEN: admit at most one probe at a time.
            if self._probe_in_flight:
                return False
            self._probe_in_flight = True
            return True

    def record_success(self) -> None:
        """A send succeeded: close the circuit and forget failures."""
        with self._lock:
            self.state = CircuitState.CLOSED
            self.consecutive_failures = 0
            self._probe_in_flight = False

    def record_failure(self) -> None:
        """A send failed: count it, opening the circuit at the threshold."""
        with self._lock:
            self._probe_in_flight = False
            self.consecutive_failures += 1
            if (
                self.state is CircuitState.HALF_OPEN
                or self.consecutive_failures >= self.policy.failure_threshold
            ):
                self.state = CircuitState.OPEN
                self.opened_at = self.clock.now()

    def abort_probe(self) -> None:
        """Release an admitted probe whose outcome will never be recorded.

        Called when the probe's operation dies on something that says
        nothing about the host's health (a deadline cut, a non-transport
        exception) — without this the token would leak and the breaker
        would reject every caller forever.
        """
        with self._lock:
            if self.state is CircuitState.HALF_OPEN:
                self._probe_in_flight = False


class IdempotencyCache:
    """A bounded key → response cache both endpoints use to dedupe replays.

    Insertion-ordered with FIFO eviction: replays arrive close behind
    the original, so a modest capacity suffices; the bound keeps a
    long-lived server from accumulating one entry per envelope forever.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValidationError("cache capacity must be at least 1")
        self.capacity = capacity
        self._entries: "OrderedDict[str, HttpResponse]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> HttpResponse | None:
        """The cached response for ``key``, or None on first sight."""
        response = self._entries.get(key)
        if response is None:
            self.misses += 1
            return None
        self.hits += 1
        return response

    def put(self, key: str, response: HttpResponse) -> None:
        """Remember the response served for ``key``."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = response
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)


class ResilientClient:
    """Bounded retries + deadline + per-host circuit breaker over a network.

    ``send_raw`` must raise :class:`TransportError` on failure (the
    :class:`~repro.net.transport.Network` contract). Backoff sleeps go
    through the injected ``sleep`` callable; the default advances a
    :class:`~repro.common.clock.ManualClock` and is a no-op otherwise
    (the discrete-event simulator owns its timeline and must not be
    advanced mid-event).
    """

    def __init__(
        self,
        network: "SupportsSend",
        *,
        policy: RetryPolicy | None = None,
        breaker_policy: BreakerPolicy | None = None,
        clock: Clock | None = None,
        rng: np.random.Generator | None = None,
        sleep: Callable[[float], None] | None = None,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.network = network
        self.policy = policy if policy is not None else RetryPolicy()
        self.breaker_policy = (
            breaker_policy if breaker_policy is not None else BreakerPolicy()
        )
        self.clock: Clock = clock if clock is not None else SystemClock()
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._sleep = sleep if sleep is not None else self._default_sleep
        self.metrics = metrics if metrics is not None else get_metrics()
        self.tracer = tracer if tracer is not None else get_tracer()
        self._breakers: dict[str, CircuitBreaker] = {}
        self._breakers_lock = threading.Lock()
        self._m_retries = self.metrics.counter(
            "sor_net_retries_total",
            "send attempts beyond the first, by destination host",
            labels=("host",),
        )
        self._m_sends = self.metrics.counter(
            "sor_net_resilient_sends_total",
            "logical sends through the resilient client, by outcome",
            labels=("outcome",),
        )
        self._m_state = self.metrics.gauge(
            "sor_net_circuit_state",
            "per-host circuit state (0=closed, 1=open, 2=half-open)",
            labels=("host",),
        )
        self._m_backoff = self.metrics.histogram(
            "sor_net_retry_backoff_seconds",
            "individual backoff sleeps between retry attempts",
            buckets=_BACKOFF_BUCKETS,
        )
        self._m_elapsed = self.metrics.histogram(
            "sor_net_resilient_send_seconds",
            "clock seconds one logical send spent, retries included",
        )

    def _default_sleep(self, seconds: float) -> None:
        if isinstance(self.clock, ManualClock):
            self.clock.advance(seconds)

    def breaker_for(self, host: str) -> CircuitBreaker:
        """The (lazily created) circuit breaker guarding ``host``.

        Atomic: concurrent first-contact callers for the same host must
        observe the *same* breaker — a get-then-set race would hand each
        thread its own breaker and split the failure count across them.
        """
        with self._breakers_lock:
            breaker = self._breakers.get(host)
            if breaker is None:
                breaker = CircuitBreaker(self.breaker_policy, self.clock)
                self._breakers[host] = breaker
            return breaker

    def _next_backoff(self, previous: float) -> float:
        """Decorrelated jitter: ``min(cap, uniform(base, 3·prev))``."""
        low = self.policy.base_backoff_s
        high = max(low, 3.0 * previous)
        return min(self.policy.max_backoff_s, float(self._rng.uniform(low, high)))

    def send(self, request: HttpRequest) -> HttpResponse:
        """Send with retries; see :meth:`call` for the failure contract.

        An HTTP 503 — the server's admission queue refused the request —
        is converted to :class:`ServerBusyError` *inside* the retried
        operation, so backpressure rejections get the same jittered
        backoff as a dropped packet. Any other 5xx is a half-dead server
        and becomes a plain :class:`TransportError`: retried, and counted
        as a breaker *failure* so the circuit (and the shard router's
        failover) actually trips. 4xx means the request itself is wrong —
        retrying cannot help, so it is returned to the caller as-is. The
        envelope's idempotency key makes the eventual re-send safe.
        """

        def operation() -> HttpResponse:
            response = self.network.send(request)
            if response.status == 503:
                raise ServerBusyError(
                    f"host {request.host!r} is at capacity (admission rejected)"
                )
            if response.status >= 500:
                raise TransportError(
                    f"host {request.host!r} returned HTTP {response.status}"
                )
            return response

        return self.call(request.host, operation)

    def call(self, host: str, operation: Callable[[], T]) -> T:
        """Run ``operation`` against ``host`` with the full resilience stack.

        Generic so the GCM push channel (not an HTTP endpoint) shares
        the retry/breaker path. Raises :class:`CircuitOpenError` without
        attempting when the host's circuit is open,
        :class:`DeadlineExceededError` when the deadline cuts retrying
        short, and the last :class:`TransportError` when attempts are
        exhausted.
        """
        breaker = self.breaker_for(host)
        state_gauge = self._m_state.labels(host=host)
        started = self.clock.now()
        backoff = self.policy.base_backoff_s
        attempts = 0
        with self.tracer.span("net.resilient_send", host=host) as span:
            try:
                while True:
                    if not breaker.allow():
                        state_gauge.set(breaker.state.value)
                        self._m_sends.inc(outcome="circuit_open")
                        span.set_attribute("outcome", "circuit_open")
                        raise CircuitOpenError(
                            f"circuit for host {host!r} is open; send rejected"
                        )
                    state_gauge.set(breaker.state.value)
                    if self.clock.now() - started > self.policy.deadline_s:
                        # The admitted probe will never report an outcome.
                        breaker.abort_probe()
                        self._m_sends.inc(outcome="deadline")
                        span.set_attribute("outcome", "deadline")
                        raise DeadlineExceededError(
                            f"deadline of {self.policy.deadline_s}s exceeded "
                            f"after {attempts} attempts to {host!r}"
                        )
                    attempts += 1
                    if attempts > 1:
                        self._m_retries.inc(host=host)
                    try:
                        result = operation()
                    except (CircuitOpenError, DeadlineExceededError):
                        # A nested resilient call failed on *its* breaker or
                        # deadline — says nothing about this host's health.
                        breaker.abort_probe()
                        raise
                    except TransportError as exc:
                        breaker.record_failure()
                        state_gauge.set(breaker.state.value)
                        if attempts >= self.policy.max_attempts:
                            self._m_sends.inc(outcome="exhausted")
                            span.set_attribute("outcome", "exhausted")
                            raise TransportError(
                                f"send to {host!r} failed after {attempts} "
                                f"attempts: {exc}"
                            ) from exc
                        backoff = self._next_backoff(backoff)
                        if (
                            self.clock.now() + backoff - started
                            > self.policy.deadline_s
                        ):
                            self._m_sends.inc(outcome="deadline")
                            span.set_attribute("outcome", "deadline")
                            raise DeadlineExceededError(
                                f"deadline of {self.policy.deadline_s}s would be "
                                f"exceeded by the next backoff to {host!r}"
                            ) from exc
                        self._m_backoff.observe(backoff)
                        self._sleep(backoff)
                        continue
                    except BaseException:
                        # Non-transport exceptions (bugs, KeyboardInterrupt)
                        # must not leave a half-open probe token stranded.
                        breaker.abort_probe()
                        raise
                    breaker.record_success()
                    state_gauge.set(breaker.state.value)
                    self._m_sends.inc(outcome="ok")
                    span.set_attribute("outcome", "ok")
                    return result
            finally:
                span.set_attribute("attempts", attempts)
                self._m_elapsed.observe(max(0.0, self.clock.now() - started))


@runtime_checkable
class SupportsSend(Protocol):
    """Anything with ``send(HttpRequest) -> HttpResponse`` (the Network)."""

    def send(self, request: HttpRequest) -> HttpResponse:  # pragma: no cover
        """Deliver one request, raising ``TransportError`` on failure."""
        ...
