"""Type-tagged binary encoding for SOR message bodies.

The wire format is deliberately simple and self-describing:

========  =======================================================
tag byte  payload
========  =======================================================
``0x00``  None
``0x01``  False
``0x02``  True
``0x03``  int — zig-zag varint
``0x04``  float — 8-byte IEEE-754 big-endian
``0x05``  str — varint byte length + UTF-8 bytes
``0x06``  bytes — varint length + raw bytes
``0x07``  list — varint count + encoded items
``0x08``  dict — varint count + (encoded str key, encoded value)*
========  =======================================================

Bodies produced by :func:`encode_body` carry a 2-byte magic prefix and a
format version so a receiver can reject third-party traffic early — the
paper notes the opaque encoding also serves as a (weak) privacy layer.
"""

from __future__ import annotations

import struct
from typing import Any

from repro.common.errors import CodecError

MAGIC = b"SR"
VERSION = 1

_TAG_NONE = 0x00
_TAG_FALSE = 0x01
_TAG_TRUE = 0x02
_TAG_INT = 0x03
_TAG_FLOAT = 0x04
_TAG_STR = 0x05
_TAG_BYTES = 0x06
_TAG_LIST = 0x07
_TAG_DICT = 0x08


def _encode_varint(value: int, out: bytearray) -> None:
    if value < 0:
        raise CodecError(f"varint must be non-negative, got {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _decode_varint(data: bytes, offset: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise CodecError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 70:
            raise CodecError("varint too long")


def _zigzag(value: int) -> int:
    # Python ints are unbounded; generalized zig-zag keeps small magnitudes small.
    return value * 2 if value >= 0 else -value * 2 - 1


def _unzigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


def _encode_into(value: Any, out: bytearray) -> None:
    if value is None:
        out.append(_TAG_NONE)
    elif value is True:
        out.append(_TAG_TRUE)
    elif value is False:
        out.append(_TAG_FALSE)
    elif isinstance(value, int):
        out.append(_TAG_INT)
        _encode_varint(_zigzag(value), out)
    elif isinstance(value, float):
        out.append(_TAG_FLOAT)
        out.extend(struct.pack(">d", value))
    elif isinstance(value, str):
        encoded = value.encode("utf-8")
        out.append(_TAG_STR)
        _encode_varint(len(encoded), out)
        out.extend(encoded)
    elif isinstance(value, (bytes, bytearray)):
        out.append(_TAG_BYTES)
        _encode_varint(len(value), out)
        out.extend(value)
    elif isinstance(value, (list, tuple)):
        out.append(_TAG_LIST)
        _encode_varint(len(value), out)
        for item in value:
            _encode_into(item, out)
    elif isinstance(value, dict):
        out.append(_TAG_DICT)
        _encode_varint(len(value), out)
        for key, item in value.items():
            if not isinstance(key, str):
                raise CodecError(f"dict keys must be str, got {key!r}")
            _encode_into(key, out)
            _encode_into(item, out)
    else:
        raise CodecError(f"cannot encode value of type {type(value).__name__}")


def _decode_from(data: bytes, offset: int) -> tuple[Any, int]:
    if offset >= len(data):
        raise CodecError("truncated value")
    tag = data[offset]
    offset += 1
    if tag == _TAG_NONE:
        return None, offset
    if tag == _TAG_TRUE:
        return True, offset
    if tag == _TAG_FALSE:
        return False, offset
    if tag == _TAG_INT:
        raw, offset = _decode_varint(data, offset)
        return _unzigzag(raw), offset
    if tag == _TAG_FLOAT:
        if offset + 8 > len(data):
            raise CodecError("truncated float")
        (value,) = struct.unpack(">d", data[offset : offset + 8])
        return value, offset + 8
    if tag == _TAG_STR:
        length, offset = _decode_varint(data, offset)
        if offset + length > len(data):
            raise CodecError("truncated string")
        try:
            text = data[offset : offset + length].decode("utf-8")
        except UnicodeDecodeError as exc:
            raise CodecError(f"invalid UTF-8 in string: {exc}") from exc
        return text, offset + length
    if tag == _TAG_BYTES:
        length, offset = _decode_varint(data, offset)
        if offset + length > len(data):
            raise CodecError("truncated bytes")
        return bytes(data[offset : offset + length]), offset + length
    if tag == _TAG_LIST:
        count, offset = _decode_varint(data, offset)
        items = []
        for _ in range(count):
            item, offset = _decode_from(data, offset)
            items.append(item)
        return items, offset
    if tag == _TAG_DICT:
        count, offset = _decode_varint(data, offset)
        result: dict[str, Any] = {}
        for _ in range(count):
            key, offset = _decode_from(data, offset)
            if not isinstance(key, str):
                raise CodecError(f"dict key must decode to str, got {key!r}")
            value, offset = _decode_from(data, offset)
            result[key] = value
        return result, offset
    raise CodecError(f"unknown tag byte 0x{tag:02x}")


def encode_value(value: Any) -> bytes:
    """Encode a single value (no body header)."""
    out = bytearray()
    _encode_into(value, out)
    return bytes(out)


def decode_value(data: bytes) -> Any:
    """Decode a single value encoded by :func:`encode_value`."""
    value, offset = _decode_from(data, 0)
    if offset != len(data):
        raise CodecError(f"{len(data) - offset} trailing bytes after value")
    return value


def encode_body(payload: dict[str, Any]) -> bytes:
    """Encode a message-body dictionary with magic prefix and version."""
    if not isinstance(payload, dict):
        raise CodecError(f"body must be a dict, got {type(payload).__name__}")
    out = bytearray(MAGIC)
    out.append(VERSION)
    _encode_into(payload, out)
    return bytes(out)


def decode_body(data: bytes) -> dict[str, Any]:
    """Decode a message body produced by :func:`encode_body`."""
    if len(data) < 3 or data[:2] != MAGIC:
        raise CodecError("not a SOR message body (bad magic)")
    if data[2] != VERSION:
        raise CodecError(f"unsupported body version {data[2]}")
    value, offset = _decode_from(data, 3)
    if offset != len(data):
        raise CodecError(f"{len(data) - offset} trailing bytes after body")
    if not isinstance(value, dict):
        raise CodecError("body did not decode to a dict")
    return value
