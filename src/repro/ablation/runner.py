"""Run the leave-one-out matrix and rank component importance.

For every configuration the registry enumerates, the runner executes
the benchmark slate and collects one merged metric/digest set. Each
switch's importance is then read off its **primary metric**: the
*effect ratio* is

* ``ablated / baseline`` when lower is better (how much slower the
  system gets without the component), or
* ``baseline / ablated`` when higher is better (how much more the
  system delivers with it),

so a ratio above 1 means the component helps, below 1 means it costs
(durability, resilience on a clean network), and exactly 1 means it is
dead weight. Components are ranked by ``|ln ratio|`` — the magnitude of
their effect in either direction — which puts a useless component last
regardless of how the helpful and costly ones interleave.

Behavior-preserving switches are cross-checked: every digest key shared
between the baseline result and the ablated twin must match exactly, or
the run fails with :class:`~repro.common.errors.AblationError` — an
ablation that changes *what* is computed is measuring two different
systems, not one component.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any

from repro.ablation.benches import DEFAULT_BENCHES, BenchFn, BenchScale
from repro.ablation.registry import (
    AblationConfig,
    SwitchRegistry,
    default_registry,
)
from repro.common.errors import AblationError
from repro.obs import MetricsRegistry, get_metrics

#: Ratios within this band of 1.0 are called neutral in the report.
NEUTRAL_BAND = 0.02


@dataclass(frozen=True)
class AblationSpec:
    """Everything that determines an ablation run."""

    seed: int = 2014
    repeat: int = 2
    components: tuple[str, ...] | None = None
    scale: BenchScale = field(default_factory=BenchScale)

    def __post_init__(self) -> None:
        if self.repeat < 1:
            raise AblationError("repeat must be at least 1")


@dataclass
class ConfigResult:
    """The merged slate output for one configuration."""

    config: AblationConfig
    metrics: dict[str, float]
    digests: dict[str, str]
    wall_seconds: float

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form for the report's ``configs`` list."""
        return {
            "name": self.config.name,
            "ablated": self.config.ablated,
            "values": dict(self.config.values),
            "metrics": dict(self.metrics),
            "digests": dict(self.digests),
            "wall_seconds": self.wall_seconds,
        }


@dataclass
class ComponentImportance:
    """One switch's measured contribution."""

    name: str
    description: str
    primary_metric: str
    direction: str
    baseline_value: float
    ablated_value: float
    ratio: float
    impact: float
    kind: str  # "speedup" | "cost" | "neutral"
    gate: bool
    gate_floor: float
    gate_tolerance_pct: float

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form for the report's ``importance`` list."""
        return dict(vars(self))


@dataclass
class AblationReport:
    """Everything one ``repro ablate`` run produced."""

    seed: int
    repeat: int
    results: list[ConfigResult]
    importance: list[ComponentImportance]  # ranked, most impactful first

    @property
    def baseline(self) -> ConfigResult:
        return self.results[0]

    def to_dict(self) -> dict[str, Any]:
        """The full report as plain JSON-ready data (``--format json``)."""
        return {
            "seed": self.seed,
            "repeat": self.repeat,
            "configs": [result.to_dict() for result in self.results],
            "importance": [entry.to_dict() for entry in self.importance],
        }


def effect_ratio(direction: str, baseline: float, ablated: float) -> float:
    """The component's benefit ratio on its primary metric (see module doc)."""
    if baseline <= 0 or ablated <= 0:
        raise AblationError(
            f"effect ratio needs positive metric values, got "
            f"baseline={baseline!r} ablated={ablated!r}"
        )
    if direction == "higher":
        return baseline / ablated
    return ablated / baseline


def _importance_kind(ratio: float) -> str:
    if ratio > 1.0 + NEUTRAL_BAND:
        return "speedup"
    if ratio < 1.0 - NEUTRAL_BAND:
        return "cost"
    return "neutral"


def _check_behavior_preserved(
    registry: SwitchRegistry,
    baseline: ConfigResult,
    twins: dict[str, ConfigResult],
) -> None:
    for switch in registry:
        if not switch.behavior_preserving:
            continue
        twin = twins[switch.name]
        shared = sorted(set(baseline.digests) & set(twin.digests))
        for key in shared:
            if baseline.digests[key] != twin.digests[key]:
                raise AblationError(
                    f"switch {switch.name!r} is declared behavior-preserving "
                    f"but digest {key!r} diverged: baseline "
                    f"{baseline.digests[key]} vs {twin.config.name} "
                    f"{twin.digests[key]}"
                )


def run_ablation(
    spec: AblationSpec,
    *,
    registry: SwitchRegistry | None = None,
    benches: dict[str, BenchFn] | None = None,
    metrics: MetricsRegistry | None = None,
) -> AblationReport:
    """Run the full leave-one-out matrix described by ``spec``."""
    registry = registry if registry is not None else default_registry()
    if spec.components is not None:
        registry = registry.subset(list(spec.components))
    benches = benches if benches is not None else DEFAULT_BENCHES
    obs = metrics if metrics is not None else get_metrics()
    m_configs = obs.counter(
        "sor_ablation_configs_total",
        "ablation configurations executed",
    )
    m_bench_seconds = obs.gauge(
        "sor_ablation_bench_seconds",
        "wall seconds of the most recent run of each (config, bench) cell",
        labels=("config", "bench"),
    )
    m_effect = obs.gauge(
        "sor_ablation_effect_ratio",
        "per-switch effect ratio from the most recent ablation run "
        "(>1 the component helps, <1 it costs)",
        labels=("switch",),
    )

    results: list[ConfigResult] = []
    for config in registry.enumerate_configs():
        merged_metrics: dict[str, float] = {}
        merged_digests: dict[str, str] = {}
        config_started = time.perf_counter()
        for bench_name, bench in benches.items():
            bench_started = time.perf_counter()
            result = bench(
                config.values,
                seed=spec.seed,
                repeat=spec.repeat,
                scale=spec.scale,
            )
            m_bench_seconds.set(
                time.perf_counter() - bench_started,
                config=config.name,
                bench=bench_name,
            )
            for key, value in result.metrics.items():
                if key in merged_metrics:
                    raise AblationError(
                        f"bench {bench_name!r} re-emits metric {key!r}"
                    )
                merged_metrics[key] = float(value)
            for key, value in result.digests.items():
                if key in merged_digests:
                    raise AblationError(
                        f"bench {bench_name!r} re-emits digest {key!r}"
                    )
                merged_digests[key] = value
        results.append(
            ConfigResult(
                config=config,
                metrics=merged_metrics,
                digests=merged_digests,
                wall_seconds=time.perf_counter() - config_started,
            )
        )
        m_configs.inc()

    baseline = results[0]
    twins = {
        result.config.ablated: result for result in results[1:]
    }
    _check_behavior_preserved(registry, baseline, twins)

    importance: list[ComponentImportance] = []
    for switch in registry:
        twin = twins[switch.name]
        metric = switch.primary_metric
        for result in (baseline, twin):
            if metric not in result.metrics:
                raise AblationError(
                    f"switch {switch.name!r}: primary metric {metric!r} "
                    f"missing from {result.config.name} results"
                )
        ratio = effect_ratio(
            switch.direction, baseline.metrics[metric], twin.metrics[metric]
        )
        importance.append(
            ComponentImportance(
                name=switch.name,
                description=switch.description,
                primary_metric=metric,
                direction=switch.direction,
                baseline_value=baseline.metrics[metric],
                ablated_value=twin.metrics[metric],
                ratio=ratio,
                impact=abs(math.log(ratio)),
                kind=_importance_kind(ratio),
                gate=switch.gate,
                gate_floor=switch.gate_floor,
                gate_tolerance_pct=switch.gate_tolerance_pct,
            )
        )
        m_effect.set(ratio, switch=switch.name)
    # Most impactful first; exact ties (e.g. several perfectly useless
    # components) break alphabetically so the ranking is deterministic.
    importance.sort(key=lambda entry: (-entry.impact, entry.name))
    return AblationReport(
        seed=spec.seed,
        repeat=spec.repeat,
        results=results,
        importance=importance,
    )
