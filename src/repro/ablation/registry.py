"""The declarative switch registry behind ``repro ablate``.

A :class:`Switch` names one injectable component of the system together
with its **baseline** value (the component present, as production runs
it) and its **ablated** value (the component removed or replaced by the
naive alternative). The registry enumerates the baseline configuration
plus one leave-one-out variant per switch; the runner
(:mod:`repro.ablation.runner`) executes the benchmark slate on every
configuration and attributes the performance difference of each
leave-one-out twin to its switch.

Switches are *declarative*: a switch carries the name of the primary
metric that measures its contribution and whether lower or higher is
better, so adding a component to the ablation matrix is one
``register()`` call plus the constructor knob it toggles (see
docs/ABLATION.md). ``behavior_preserving`` switches additionally promise
that ablating them changes *only* performance — the runner cross-checks
the result digests of the baseline and the ablated twin and fails loudly
if they diverge. That digest slot is also where a future approximate
component (e.g. stochastic-greedy sampling) would declare its weaker
guarantee by *not* setting the flag.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Mapping

from repro.common.errors import AblationError

#: The two spellings every on/off switch uses.
ON = "on"
OFF = "off"


@dataclass(frozen=True)
class Switch:
    """One injectable component and how to measure its worth.

    ``primary_metric`` names the slate metric that isolates this
    component (``direction`` says whether lower or higher is better).
    ``gate`` switches are emitted into the canonical
    ``BENCH_ablation.json`` as ``ablation_effect_<name>`` entries with
    ``gate_tolerance_pct`` so ``compare_bench.py`` fails CI when the
    component stops earning its keep (importance inversion);
    ``gate_floor`` documents the conservative committed-baseline value.
    """

    name: str
    description: str
    baseline: Any
    ablated: Any
    primary_metric: str
    direction: str = "lower"
    behavior_preserving: bool = False
    gate: bool = False
    gate_floor: float = 1.0
    gate_tolerance_pct: float = 50.0

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise AblationError(f"bad switch name {self.name!r}")
        if self.direction not in ("lower", "higher"):
            raise AblationError(
                f"switch {self.name!r}: direction must be 'lower' or 'higher'"
            )
        if self.baseline == self.ablated:
            raise AblationError(
                f"switch {self.name!r}: baseline and ablated values are equal"
            )


@dataclass(frozen=True)
class AblationConfig:
    """One cell of the leave-one-out matrix.

    ``values`` maps every registered switch name to its value in this
    configuration; ``ablated`` names the one switch set to its ablated
    value (``None`` for the baseline configuration).
    """

    name: str
    values: Mapping[str, Any]
    ablated: str | None = None


class SwitchRegistry:
    """Ordered collection of switches; enumeration follows registration."""

    def __init__(self) -> None:
        self._switches: dict[str, Switch] = {}

    def register(self, switch: Switch) -> Switch:
        """Add ``switch``; duplicate names raise :class:`AblationError`."""
        if switch.name in self._switches:
            raise AblationError(f"switch {switch.name!r} already registered")
        self._switches[switch.name] = switch
        return switch

    def get(self, name: str) -> Switch:
        """Look up a switch by name, raising on unknown names."""
        try:
            return self._switches[name]
        except KeyError:
            raise AblationError(
                f"unknown switch {name!r}; registered: {', '.join(self.names())}"
            ) from None

    def names(self) -> list[str]:
        """Switch names in registration order."""
        return list(self._switches)

    def __iter__(self) -> Iterator[Switch]:
        return iter(self._switches.values())

    def __len__(self) -> int:
        return len(self._switches)

    def __contains__(self, name: object) -> bool:
        return name in self._switches

    def subset(self, names: list[str] | tuple[str, ...]) -> "SwitchRegistry":
        """A registry over only ``names`` (original registration order)."""
        wanted = set(names)
        for name in names:
            self.get(name)  # raises AblationError on unknown names
        subset = SwitchRegistry()
        for switch in self:
            if switch.name in wanted:
                subset.register(switch)
        return subset

    def inverted(self, name: str) -> "SwitchRegistry":
        """A registry with ``name``'s baseline and ablated values swapped.

        This deliberately builds a *wrong* matrix — the baseline runs
        without the component and the "ablated" twin runs with it — so
        the component's measured importance inverts. The CI
        ``ablation-smoke`` job uses it to demonstrate that the
        importance gate actually fails when a component stops winning.
        """
        target = self.get(name)
        inverted = SwitchRegistry()
        for switch in self:
            if switch is target:
                switch = Switch(
                    name=switch.name,
                    description=f"INVERTED: {switch.description}",
                    baseline=switch.ablated,
                    ablated=switch.baseline,
                    primary_metric=switch.primary_metric,
                    direction=switch.direction,
                    behavior_preserving=switch.behavior_preserving,
                    gate=switch.gate,
                    gate_floor=switch.gate_floor,
                    gate_tolerance_pct=switch.gate_tolerance_pct,
                )
            inverted.register(switch)
        return inverted

    def baseline_values(self) -> dict[str, Any]:
        """The full-system configuration: every switch at its baseline."""
        return {switch.name: switch.baseline for switch in self}

    def enumerate_configs(self) -> list[AblationConfig]:
        """The baseline plus exactly one leave-one-out config per switch."""
        if not self._switches:
            raise AblationError("cannot enumerate an empty switch registry")
        baseline = self.baseline_values()
        configs = [AblationConfig(name="baseline", values=dict(baseline))]
        for switch in self:
            values = dict(baseline)
            values[switch.name] = switch.ablated
            configs.append(
                AblationConfig(
                    name=f"no-{switch.name}", values=values, ablated=switch.name
                )
            )
        return configs


def default_registry() -> SwitchRegistry:
    """The production switch matrix over the injectable knobs.

    Values are plain strings so reports read naturally; the
    :mod:`repro.ablation.apply` helpers translate them into the
    ``GreedyScheduler`` / ``SensingServer`` / ``SORSystem`` constructor
    keywords, and the injection-uniformity tests assert the round trip.
    """
    registry = SwitchRegistry()
    registry.register(
        Switch(
            name="backend",
            description="vectorized numpy coverage objective vs the "
            "scalar reference specification",
            baseline="numpy",
            ablated="reference",
            primary_metric="scheduling_seconds",
            behavior_preserving=True,
            gate=True,
            gate_floor=1.6,
            gate_tolerance_pct=35.0,
        )
    )
    registry.register(
        Switch(
            name="lazy_greedy",
            description="accelerated greedy evaluation (lazy heap / "
            "maintained dense argmax) vs the paper-literal O(N^2) argmax",
            baseline="lazy",
            ablated="argmax",
            primary_metric="scheduling_reference_seconds",
            behavior_preserving=True,
            gate=True,
            gate_floor=3.0,
            gate_tolerance_pct=60.0,
        )
    )
    registry.register(
        Switch(
            name="stochastic",
            description="stochastic-greedy sampled picks vs the exact "
            "accelerated sweep on the long-horizon scheduling cell "
            "(approximate by design: schedules differ from exact greedy, "
            "so no behavior digest is promised)",
            baseline=ON,
            ablated=OFF,
            primary_metric="scheduling_stochastic_seconds",
            gate=True,
            gate_floor=2.0,
            gate_tolerance_pct=50.0,
        )
    )
    registry.register(
        Switch(
            name="ranking_cache",
            description="versioned ranking cache vs running the full "
            "Algorithm 2 pipeline on every rank query",
            baseline=ON,
            ablated=OFF,
            primary_metric="ranking_seconds",
            behavior_preserving=True,
            gate=True,
            gate_floor=5.0,
            gate_tolerance_pct=60.0,
        )
    )
    registry.register(
        Switch(
            name="concurrency",
            description="worker pool behind the bounded admission queue "
            "vs the single-threaded server",
            baseline="pool",
            ablated="sequential",
            primary_metric="loadgen_seconds",
            behavior_preserving=True,
            gate=True,
            gate_floor=1.4,
            gate_tolerance_pct=30.0,
        )
    )
    registry.register(
        Switch(
            name="resilient",
            description="retrying resilient client vs bare sends on a "
            "lossy network (importance = data actually delivered)",
            baseline=ON,
            ablated=OFF,
            primary_metric="fieldtest_raw_rows",
            direction="higher",
            gate=True,
            gate_floor=1.05,
            gate_tolerance_pct=10.0,
        )
    )
    registry.register(
        Switch(
            name="durability",
            description="write-ahead log + checkpoints vs a purely "
            "in-memory database (importance = rows recovered after a "
            "crash/restart of the field-test server)",
            baseline=ON,
            ablated=OFF,
            primary_metric="fieldtest_recovered_rows",
            direction="higher",
            gate=True,
            gate_floor=50.0,
            gate_tolerance_pct=50.0,
        )
    )
    return registry
