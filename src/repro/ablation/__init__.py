"""Automated ablation harness: leave-one-out matrix over the injectable
components (scheduling backend, lazy greedy, stochastic sampling,
ranking cache, concurrency, resilience, durability), a pinned-seed
benchmark slate, and a ranked component-importance report with CI
gates. See docs/ABLATION.md.
"""

from repro.ablation.apply import (
    effective_greedy_values,
    effective_server_values,
    effective_stochastic_values,
    effective_system_values,
    greedy_kwargs,
    server_kwargs,
    stochastic_greedy_kwargs,
    system_kwargs,
)
from repro.ablation.benches import (
    DEFAULT_BENCHES,
    BenchResult,
    BenchScale,
)
from repro.ablation.registry import (
    OFF,
    ON,
    AblationConfig,
    Switch,
    SwitchRegistry,
    default_registry,
)
from repro.ablation.report import (
    EFFECT_PREFIX,
    baseline_bench_json,
    format_report,
    render,
    to_bench_json,
)
from repro.ablation.runner import (
    AblationReport,
    AblationSpec,
    ComponentImportance,
    ConfigResult,
    effect_ratio,
    run_ablation,
)

__all__ = [
    "AblationConfig",
    "AblationReport",
    "AblationSpec",
    "BenchResult",
    "BenchScale",
    "ComponentImportance",
    "ConfigResult",
    "DEFAULT_BENCHES",
    "EFFECT_PREFIX",
    "OFF",
    "ON",
    "Switch",
    "SwitchRegistry",
    "baseline_bench_json",
    "default_registry",
    "effect_ratio",
    "effective_greedy_values",
    "effective_server_values",
    "effective_stochastic_values",
    "effective_system_values",
    "format_report",
    "greedy_kwargs",
    "render",
    "run_ablation",
    "server_kwargs",
    "stochastic_greedy_kwargs",
    "system_kwargs",
    "to_bench_json",
]
