"""The pinned-seed benchmark slate every ablation configuration runs.

Four benches, one per subsystem the switch matrix touches:

* ``scheduling`` — offline greedy on a seeded problem; times the
  configured backend/strategy pair (the ``backend`` switch's primary
  metric), the configured strategy on the scalar reference backend
  (the ``lazy_greedy`` switch's primary — on the numpy backend the
  maintained gains array makes both strategies equally cheap, so the
  lazy heap's contribution is only measurable where it actually runs),
  and a long-horizon cell pinned to the numpy backend where the
  ``stochastic`` switch's sampled picks race the exact sweep (the cell
  emits its objective value too, so a run can eyeball the value cost
  of sampling — no digest: stochastic schedules legitimately differ);
* ``ranking`` — repeated warm ``rank_many`` over unchanged data against
  a seeded feature table (the ``ranking_cache`` switch);
* ``loadgen`` — a scaled-down :mod:`repro.sim.loadgen` run with
  simulated per-request I/O (the ``concurrency`` switch);
* ``fieldtest`` — a small end-to-end :class:`SORSystem` deployment on a
  seeded 10 %-lossy network (the ``durability`` cost and, through the
  count of feature rows that actually made it to the database, the
  ``resilient`` switch's delivery importance).

Timings are best-of-``repeat`` after one untimed warmup (the standard
robust estimator on shared machines; the warmup also charges the global
kernel-matrix cache outside the timed window). Everything else —
schedules, rankings, delivered-row counts, workload digests — is exact
under the pinned seed, which is what makes the importance *ranking*
reproducible and the behavior-preservation digests comparable.
"""

from __future__ import annotations

import hashlib
import json
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

import numpy as np

from repro.ablation.apply import (
    greedy_kwargs,
    stochastic_greedy_kwargs,
    system_kwargs,
)
from repro.core.scheduling import (
    GaussianKernel,
    GreedyScheduler,
    SchedulingPeriod,
    SchedulingProblem,
)
from repro.db import Database
from repro.obs import MetricsRegistry, NullTracer
from repro.server.ranker_service import (
    PersonalizableRanker,
    RankingCache,
    bump_data_version,
)
from repro.server.schemas import ALL_SCHEMAS, create_all_tables
from repro.sim.arrivals import uniform_arrivals

PERIOD_S = 10800.0  # the paper's three-hour sensing period


@dataclass(frozen=True)
class BenchScale:
    """Problem sizes for the slate — the smoke defaults fit a CI job."""

    scheduling_instants: int = 500
    scheduling_users: int = 40
    scheduling_budget: int = 15
    scheduling_sigma_s: float = 60.0
    # The stochastic cell needs a horizon long enough that a dense sweep
    # per pick actually hurts; sigma shrinks with the spacing so the
    # kernel band stays ~60 instants wide.
    stochastic_instants: int = 20_000
    stochastic_users: int = 40
    stochastic_budget: int = 15
    stochastic_sigma_s: float = 5.0
    ranking_places: int = 8
    ranking_features: int = 4
    ranking_rounds: int = 30
    loadgen_phones: int = 120
    loadgen_clients: int = 6
    loadgen_workers: int = 6
    loadgen_queue_capacity: int = 32
    loadgen_io_delay_s: float = 0.002
    loadgen_places: int = 4
    fieldtest_phones_per_place: int = 2
    fieldtest_budget: int = 5
    fieldtest_instants: int = 240
    fieldtest_drop_probability: float = 0.10


@dataclass
class BenchResult:
    """What one bench measured for one configuration.

    ``metrics`` are numbers (seconds, counts, rates); ``digests`` are
    exact fingerprints of *what was computed* — the runner compares them
    between the baseline and every behavior-preserving switch's ablated
    twin.
    """

    metrics: dict[str, float]
    digests: dict[str, str] = field(default_factory=dict)


BenchFn = Callable[..., BenchResult]


def _digest(payload: Any) -> str:
    canonical = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def _best_of(repeat: int, run: Callable[[], Any]) -> tuple[float, Any]:
    """(best wall seconds, last result) over one warmup + ``repeat`` runs."""
    run()  # warmup: caches, allocator, import costs stay untimed
    best = float("inf")
    result = None
    for _ in range(max(1, repeat)):
        started = time.perf_counter()
        result = run()
        best = min(best, time.perf_counter() - started)
    return best, result


# ----------------------------------------------------------------------
# scheduling
# ----------------------------------------------------------------------
def _scheduling_problem(seed: int, scale: BenchScale) -> SchedulingProblem:
    rng = np.random.default_rng(seed)
    period = SchedulingPeriod(0.0, PERIOD_S, scale.scheduling_instants)
    return SchedulingProblem(
        period,
        uniform_arrivals(
            scale.scheduling_users, PERIOD_S, scale.scheduling_budget, rng
        ),
        GaussianKernel(sigma=scale.scheduling_sigma_s),
    )


def _stochastic_problem(seed: int, scale: BenchScale) -> SchedulingProblem:
    rng = np.random.default_rng(seed)
    period = SchedulingPeriod(0.0, PERIOD_S, scale.stochastic_instants)
    return SchedulingProblem(
        period,
        uniform_arrivals(
            scale.stochastic_users, PERIOD_S, scale.stochastic_budget, rng
        ),
        GaussianKernel(sigma=scale.stochastic_sigma_s),
    )


def bench_scheduling(
    values: Mapping[str, Any], *, seed: int, repeat: int, scale: BenchScale
) -> BenchResult:
    """Offline greedy on a seeded problem: configured pair + reference strategy."""
    problem = _scheduling_problem(seed, scale)
    kwargs = greedy_kwargs(values)
    configured = GreedyScheduler(metrics=MetricsRegistry(), **kwargs)
    seconds, schedule = _best_of(repeat, lambda: configured.solve(problem))
    reference = GreedyScheduler(
        metrics=MetricsRegistry(), backend="reference", lazy=kwargs["lazy"]
    )
    reference_seconds, reference_schedule = _best_of(
        repeat, lambda: reference.solve(problem)
    )
    # Long-horizon cell: sampled picks (baseline) vs the exact sweep
    # (ablated twin), numpy backend only — see stochastic_greedy_kwargs.
    # The schedule is deterministic under the pinned seed but differs
    # from exact greedy by design, so it contributes no digest.
    long_problem = _stochastic_problem(seed, scale)
    stochastic = GreedyScheduler(
        metrics=MetricsRegistry(), **stochastic_greedy_kwargs(values, seed=seed)
    )
    stochastic_seconds, stochastic_schedule = _best_of(
        repeat, lambda: stochastic.solve(long_problem)
    )
    return BenchResult(
        metrics={
            "scheduling_seconds": seconds,
            "scheduling_reference_seconds": reference_seconds,
            "scheduling_value": schedule.objective_value,
            "scheduling_stochastic_seconds": stochastic_seconds,
            "scheduling_stochastic_value": stochastic_schedule.objective_value,
        },
        digests={
            "schedule": _digest(schedule.assignments),
            "schedule_reference": _digest(reference_schedule.assignments),
        },
    )


# ----------------------------------------------------------------------
# ranking
# ----------------------------------------------------------------------
def _ranking_fixture(seed: int, scale: BenchScale):
    from repro.core.ranking.preferences import (
        MAX,
        MIN,
        FeaturePreference,
        PreferenceProfile,
    )

    rng = np.random.default_rng(seed)
    database = Database(name="ablation-ranking", metrics=MetricsRegistry())
    create_all_tables(database)
    table = database.table("feature_data")
    features = [f"f{index}" for index in range(scale.ranking_features)]
    for place in range(scale.ranking_places):
        for feature_index, feature in enumerate(features):
            table.insert(
                {
                    "place_id": f"place-{place}",
                    "category": "ablation",
                    "feature": feature,
                    "value": float(
                        10.0
                        + 3.0 * place
                        + 1.5 * feature_index
                        + rng.uniform(-1.0, 1.0)
                    ),
                    "computed_at": 0.0,
                }
            )
    bump_data_version(database, "ablation")
    profiles = [
        PreferenceProfile(
            "perf",
            {
                features[0]: FeaturePreference(MIN, 5),
                features[1]: FeaturePreference(MAX, 2),
            },
        ),
        PreferenceProfile(
            "target",
            {
                features[0]: FeaturePreference(12.0, 3),
                features[-1]: FeaturePreference(MIN, 3),
            },
        ),
        PreferenceProfile(
            "spread",
            {feature: FeaturePreference(MAX, 2) for feature in features},
        ),
    ]
    return database, profiles


def bench_ranking(
    values: Mapping[str, Any], *, seed: int, repeat: int, scale: BenchScale
) -> BenchResult:
    """Repeated warm ``rank_many`` over unchanged data, cache per config."""
    database, profiles = _ranking_fixture(seed, scale)
    registry = MetricsRegistry()
    cache = (
        RankingCache(metrics=registry)
        if values.get("ranking_cache", "on") == "on"
        else None
    )
    ranker = PersonalizableRanker(
        database, cache=cache, metrics=registry, tracer=NullTracer()
    )

    def warm_loop():
        reports = None
        for _ in range(scale.ranking_rounds):
            reports = ranker.rank_many("ablation", profiles)
        return reports

    seconds, reports = _best_of(repeat, warm_loop)
    order = {
        name: list(report.ranking.items) for name, report in reports.items()
    }
    return BenchResult(
        metrics={"ranking_seconds": seconds},
        digests={"ranking": _digest(order)},
    )


# ----------------------------------------------------------------------
# loadgen
# ----------------------------------------------------------------------
def bench_loadgen(
    values: Mapping[str, Any], *, seed: int, repeat: int, scale: BenchScale
) -> BenchResult:
    """Scaled-down loadgen slate with simulated per-request I/O."""
    from repro.sim.loadgen import LoadgenSpec, run_loadgen

    spec = LoadgenSpec(
        phones=scale.loadgen_phones,
        seed=seed,
        mode=(
            "concurrent"
            if values.get("concurrency", "pool") == "pool"
            else "sequential"
        ),
        clients=scale.loadgen_clients,
        workers=scale.loadgen_workers,
        queue_capacity=scale.loadgen_queue_capacity,
        io_delay_s=scale.loadgen_io_delay_s,
        places=scale.loadgen_places,
    )
    best = float("inf")
    report = None
    for _ in range(max(1, repeat)):
        report = run_loadgen(spec)
        best = min(best, report.duration_s)
    return BenchResult(
        metrics={
            "loadgen_seconds": best,
            "loadgen_rps": report.requests_ok / best,
        },
        digests={
            "loadgen": _digest(
                [
                    report.workload_digest,
                    report.sessions_completed,
                    report.error_replies,
                    report.replay_mismatches,
                ]
            )
        },
    )


# ----------------------------------------------------------------------
# fieldtest
# ----------------------------------------------------------------------
def _run_fieldtest(
    values: Mapping[str, Any], seed: int, scale: BenchScale, directory: str
) -> tuple[float, int]:
    from repro.net import NetworkConditions
    from repro.server.system import SORSystem
    from repro.sim.scenarios import (
        customer_profiles,
        shop_feature_pipeline,
        syracuse_coffee_shops,
    )

    system = SORSystem(
        seed=seed,
        network_conditions=NetworkConditions(
            base_latency_s=0.0,
            jitter_s=0.0,
            drop_probability=scale.fieldtest_drop_probability,
            response_drop_probability=scale.fieldtest_drop_probability,
        ),
        **system_kwargs(values, durability_dir=directory),
    )
    rng = np.random.default_rng(seed)
    started = time.perf_counter()
    for shop in syracuse_coffee_shops(rng):
        system.deploy_place(
            shop,
            shop_feature_pipeline(),
            num_instants=scale.fieldtest_instants,
        )
        for _ in range(scale.fieldtest_phones_per_place):
            system.deploy_phone(
                shop.place_id, budget=scale.fieldtest_budget
            )
    system.run()
    system.process_and_rank("coffee_shop", customer_profiles())
    seconds = time.perf_counter() - started
    raw_rows = system.server.database.table("raw_data").count()
    feature_rows = system.server.database.table("feature_data").count()
    # Crash the server and bring it back: with durability the WAL replay
    # restores the tables, without it the restart is empty. The survivor
    # count is exact under the pinned seed, which keeps the durability
    # switch's importance ranking deterministic (wall-clock WAL overhead
    # is too noisy to rank against exact delivery metrics).
    system.kill_server()
    system.restart_server()
    recovered = sum(
        system.server.database.table(schema.name).count()
        for schema in ALL_SCHEMAS
    )
    system.server.close()
    if system.server.database.durability is not None:
        system.server.database.durability.close()
    return seconds, raw_rows, feature_rows, recovered


def bench_fieldtest(
    values: Mapping[str, Any], *, seed: int, repeat: int, scale: BenchScale
) -> BenchResult:
    """End-to-end field test on a lossy network, then a crash + restart."""
    best = float("inf")
    raw_rows = feature_rows = recovered = 0
    # No shared warmup: each field test is a fresh deployment (the WAL
    # must start empty every round), so the first round doubles as it.
    for _ in range(1 + max(1, repeat)):
        with tempfile.TemporaryDirectory(prefix="sor-ablation-") as directory:
            seconds, raw_rows, feature_rows, recovered = _run_fieldtest(
                values, seed, scale, directory
            )
        best = min(best, seconds)
    return BenchResult(
        metrics={
            "fieldtest_seconds": best,
            # Raw uploads that survived the lossy network: the resilient
            # client's delivery metric (feature rows stay places x features
            # as long as a single sample gets through, so they cannot see
            # retries).
            "fieldtest_raw_rows": float(raw_rows),
            "fieldtest_feature_rows": float(feature_rows),
            # +1 Laplace smoothing: without durability the restart is
            # empty, and the effect ratio must stay finite.
            "fieldtest_recovered_rows": float(1 + recovered),
        },
        digests={
            "fieldtest_rows": _digest([raw_rows, feature_rows, recovered])
        },
    )


#: The default slate, in execution order.
DEFAULT_BENCHES: dict[str, BenchFn] = {
    "scheduling": bench_scheduling,
    "ranking": bench_ranking,
    "loadgen": bench_loadgen,
    "fieldtest": bench_fieldtest,
}
