"""Translate switch values into constructor keywords — and back.

This is the *only* place the registry's string vocabulary meets the
``GreedyScheduler`` / ``SensingServer`` / ``SORSystem`` constructor
signatures. The benchmark slate builds its systems through these
helpers, and ``tests/ablation/test_switch_injection.py`` asserts the
round trip (kwargs in, effective values probed back out) for every
leave-one-out configuration — so a registry switch that silently stops
reaching its constructor fails a test instead of quietly measuring
nothing.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Mapping

from repro.common.errors import AblationError
from repro.db import DurabilityConfig
from repro.server.concurrency import ConcurrencyConfig
from repro.server.server import SensingServer
from repro.server.system import SORSystem

from repro.ablation.registry import OFF, ON


def _value(values: Mapping[str, Any], name: str, default: Any) -> Any:
    """Switch value with a default, so partial matrices still apply."""
    return values.get(name, default)


def greedy_kwargs(values: Mapping[str, Any]) -> dict[str, Any]:
    """``GreedyScheduler(**greedy_kwargs(config.values))``."""
    mode = _value(values, "lazy_greedy", "lazy")
    if mode not in ("lazy", "argmax"):
        raise AblationError(f"lazy_greedy must be 'lazy' or 'argmax', got {mode!r}")
    return {
        "backend": _value(values, "backend", "numpy"),
        "lazy": mode == "lazy",
    }


def stochastic_greedy_kwargs(
    values: Mapping[str, Any], *, seed: int = 2014
) -> dict[str, Any]:
    """``GreedyScheduler`` keywords for the long-horizon stochastic cell.

    Pinned to the numpy backend on purpose: the ``stochastic`` switch
    measures sampled picks against the exact accelerated sweep, and
    running its long-horizon cell on the scalar reference backend would
    conflate that with the ``backend`` switch (and take minutes). The
    ablated value falls back to the exact mode the ``lazy_greedy``
    switch selects, so the twin is the system as it would actually run
    without sampling.
    """
    value = _value(values, "stochastic", ON)
    if value not in (ON, OFF):
        raise AblationError(f"stochastic must be 'on' or 'off', got {value!r}")
    mode = (
        "stochastic"
        if value == ON
        else _value(values, "lazy_greedy", "lazy")
    )
    return {"backend": "numpy", "mode": mode, "seed": seed}


def server_kwargs(
    values: Mapping[str, Any],
    *,
    durability_dir: str | Path | None = None,
    workers: int = 8,
    queue_capacity: int = 64,
) -> dict[str, Any]:
    """The switch-controlled subset of ``SensingServer`` keywords."""
    kwargs: dict[str, Any] = {
        "scheduler_backend": _value(values, "backend", "numpy"),
        "ranking_cache": _value(values, "ranking_cache", ON) == ON,
    }
    if _value(values, "durability", "off") == ON:
        if durability_dir is None:
            raise AblationError(
                "durability=on needs a durability_dir for the WAL"
            )
        kwargs["durability"] = DurabilityConfig(directory=durability_dir)
    if _value(values, "concurrency", "sequential") == "pool":
        kwargs["concurrency"] = ConcurrencyConfig(
            workers=workers, queue_capacity=queue_capacity
        )
    return kwargs


def system_kwargs(
    values: Mapping[str, Any],
    *,
    durability_dir: str | Path | None = None,
    workers: int = 8,
    queue_capacity: int = 64,
) -> dict[str, Any]:
    """The switch-controlled subset of ``SORSystem`` keywords."""
    kwargs = server_kwargs(
        values,
        durability_dir=durability_dir,
        workers=workers,
        queue_capacity=queue_capacity,
    )
    kwargs["resilient"] = _value(values, "resilient", ON) == ON
    return kwargs


def effective_greedy_values(scheduler: Any) -> dict[str, Any]:
    """Probe a ``GreedyScheduler`` back into switch vocabulary."""
    return {
        "backend": scheduler.backend,
        "lazy_greedy": "lazy" if scheduler.lazy else "argmax",
    }


def effective_stochastic_values(scheduler: Any) -> dict[str, Any]:
    """Probe the stochastic cell's ``GreedyScheduler`` back out."""
    return {"stochastic": ON if scheduler.mode == "stochastic" else OFF}


def effective_server_values(server: SensingServer) -> dict[str, Any]:
    """Probe a ``SensingServer`` back into switch vocabulary.

    Every entry reads an *observable effect* of the constructor keyword
    (the scheduler service's backend, the ranker's attached cache, the
    database's durability manager, the admission executor) rather than a
    stored copy of the keyword — that is what makes the round-trip test
    catch silently ignored knobs.
    """
    return {
        "backend": server.scheduler.backend,
        "ranking_cache": ON if server.ranker.cache is not None else "off",
        "durability": ON if server.database.durability is not None else "off",
        "concurrency": "pool" if server._executor is not None else "sequential",
    }


def effective_system_values(system: SORSystem) -> dict[str, Any]:
    """Probe a ``SORSystem`` (via its first server) into switch values."""
    values = effective_server_values(system.server)
    values["resilient"] = (
        ON if system._make_client("probe") is not None else "off"
    )
    return values
