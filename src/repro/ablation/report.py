"""Render an :class:`AblationReport` for humans and for the CI gate.

Two consumers, two formats:

* :func:`format_report` — the ``--format table`` text a person reads:
  the ranked importance table plus the raw per-config metrics;
* :func:`to_bench_json` — the canonical metric schema
  ``benchmarks/compare_bench.py`` already understands. Every gated
  switch becomes one ``ablation_effect_<name>`` metric whose value is
  the switch's effect ratio with ``direction: "higher"`` — a component
  whose measured benefit collapses (importance inversion) regresses
  that metric past its tolerance and fails the gate, exactly like a
  slow benchmark fails a perf gate.
"""

from __future__ import annotations

import json
from typing import Any

from repro.ablation.runner import AblationReport

#: Gate metric name prefix; compare_bench treats these like any metric.
EFFECT_PREFIX = "ablation_effect_"


def to_bench_json(report: AblationReport) -> dict[str, Any]:
    """The ``{"metrics": {...}}`` document ``compare_bench.py`` loads."""
    metrics: dict[str, Any] = {}
    for entry in report.importance:
        if not entry.gate:
            continue
        metrics[f"{EFFECT_PREFIX}{entry.name}"] = {
            "value": entry.ratio,
            "direction": "higher",
            "tolerance_pct": entry.gate_tolerance_pct,
        }
    return {
        "seed": report.seed,
        "repeat": report.repeat,
        "ranking": [entry.name for entry in report.importance],
        "metrics": metrics,
    }


def baseline_bench_json(report: AblationReport) -> dict[str, Any]:
    """A committable baseline: gate metrics pinned at their floors.

    The floors are deliberately conservative (well below the measured
    ratios) so the gate only fires on a real inversion or a collapse of
    the component's benefit, not on shared-runner jitter.
    """
    metrics: dict[str, Any] = {}
    for entry in report.importance:
        if not entry.gate:
            continue
        metrics[f"{EFFECT_PREFIX}{entry.name}"] = {
            "value": entry.gate_floor,
            "direction": "higher",
            "tolerance_pct": entry.gate_tolerance_pct,
        }
    return {"metrics": metrics}


def format_report(report: AblationReport) -> str:
    """The human-readable ranked importance table."""
    lines = [
        f"ablation matrix: seed={report.seed} repeat={report.repeat} "
        f"configs={len(report.results)}",
        "",
        "component importance (most impactful first):",
    ]
    header = (
        f"  {'rank':>4}  {'component':<14} {'kind':<8} {'ratio':>8}  "
        f"{'baseline':>12} {'ablated':>12}  metric"
    )
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    for rank, entry in enumerate(report.importance, start=1):
        lines.append(
            f"  {rank:>4}  {entry.name:<14} {entry.kind:<8} "
            f"{entry.ratio:>8.2f}  {entry.baseline_value:>12.6g} "
            f"{entry.ablated_value:>12.6g}  {entry.primary_metric}"
        )
    lines.append("")
    lines.append("per-config wall seconds:")
    for result in report.results:
        lines.append(
            f"  {result.config.name:<18} {result.wall_seconds:>8.2f}s"
        )
    return "\n".join(lines)


def render(report: AblationReport, fmt: str) -> str:
    """Dispatch ``--format``; unknown formats raise ``ValueError``."""
    if fmt == "json":
        return json.dumps(report.to_dict(), indent=2, sort_keys=True)
    if fmt == "table":
        return format_report(report)
    raise ValueError(f"unknown ablation report format {fmt!r}")
