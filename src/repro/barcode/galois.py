"""GF(256) arithmetic with the QR-code primitive polynomial 0x11d.

Multiplication and division run through exp/log tables built once at
import time; polynomial helpers operate on coefficient lists with the
highest-degree coefficient first (the usual Reed–Solomon convention).
"""

from __future__ import annotations

from repro.common.errors import BarcodeError

_PRIMITIVE_POLY = 0x11D
FIELD_SIZE = 256

# exp table is doubled so gf_mul can skip the modulo 255.
GF_EXP = [0] * 512
GF_LOG = [0] * 256


def _build_tables() -> None:
    value = 1
    for power in range(255):
        GF_EXP[power] = value
        GF_LOG[value] = power
        value <<= 1
        if value & 0x100:
            value ^= _PRIMITIVE_POLY
    for power in range(255, 512):
        GF_EXP[power] = GF_EXP[power - 255]


_build_tables()


def gf_add(a: int, b: int) -> int:
    """Addition in GF(256) is XOR."""
    return a ^ b


def gf_sub(a: int, b: int) -> int:
    """Subtraction equals addition in characteristic 2."""
    return a ^ b


def gf_mul(a: int, b: int) -> int:
    """Multiply two field elements."""
    if a == 0 or b == 0:
        return 0
    return GF_EXP[GF_LOG[a] + GF_LOG[b]]


def gf_div(a: int, b: int) -> int:
    """Divide ``a`` by ``b``; division by zero raises."""
    if b == 0:
        raise BarcodeError("division by zero in GF(256)")
    if a == 0:
        return 0
    return GF_EXP[(GF_LOG[a] - GF_LOG[b]) % 255]


def gf_pow(a: int, power: int) -> int:
    """Raise ``a`` to an integer power (negative powers allowed)."""
    if a == 0:
        if power == 0:
            return 1
        if power < 0:
            raise BarcodeError("0 has no negative powers in GF(256)")
        return 0
    return GF_EXP[(GF_LOG[a] * power) % 255]


def gf_inverse(a: int) -> int:
    """Multiplicative inverse of ``a``."""
    if a == 0:
        raise BarcodeError("0 has no inverse in GF(256)")
    return GF_EXP[255 - GF_LOG[a]]


# ----------------------------------------------------------------------
# polynomials (highest-degree coefficient first)
# ----------------------------------------------------------------------
def poly_scale(poly: list[int], scalar: int) -> list[int]:
    """Multiply every coefficient by ``scalar``."""
    return [gf_mul(coefficient, scalar) for coefficient in poly]


def poly_add(a: list[int], b: list[int]) -> list[int]:
    """Add two polynomials."""
    result = [0] * max(len(a), len(b))
    for index, coefficient in enumerate(a):
        result[index + len(result) - len(a)] = coefficient
    for index, coefficient in enumerate(b):
        result[index + len(result) - len(b)] ^= coefficient
    return result


def poly_mul(a: list[int], b: list[int]) -> list[int]:
    """Multiply two polynomials."""
    result = [0] * (len(a) + len(b) - 1)
    for i, coefficient_a in enumerate(a):
        if coefficient_a == 0:
            continue
        for j, coefficient_b in enumerate(b):
            result[i + j] ^= gf_mul(coefficient_a, coefficient_b)
    return result


def poly_eval(poly: list[int], x: int) -> int:
    """Evaluate a polynomial at ``x`` with Horner's rule."""
    result = poly[0]
    for coefficient in poly[1:]:
        result = gf_mul(result, x) ^ coefficient
    return result


def poly_divmod(dividend: list[int], divisor: list[int]) -> tuple[list[int], list[int]]:
    """Polynomial division; returns ``(quotient, remainder)``."""
    output = list(dividend)
    normalizer = divisor[0]
    for i in range(len(dividend) - len(divisor) + 1):
        output[i] = gf_div(output[i], normalizer)
        coefficient = output[i]
        if coefficient != 0:
            for j in range(1, len(divisor)):
                output[i + j] ^= gf_mul(divisor[j], coefficient)
    separator = len(dividend) - len(divisor) + 1
    return output[:separator], output[separator:]
