"""The place payload carried by a SOR barcode.

Scanning the barcode must tell the phone everything it needs to send a
participation request: the place identity and location (for the server's
truthfulness check), the application that defines the sensing procedure,
and the sensing server to contact.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import BarcodeError, CodecError
from repro.net import codec
from repro.barcode.matrix_code import BitMatrix, decode_matrix, encode_matrix


@dataclass(frozen=True)
class PlacePayload:
    """Everything a scanned SOR barcode reveals about the target place."""

    place_id: str
    name: str
    category: str
    latitude: float
    longitude: float
    app_id: str
    server_host: str

    def to_bytes(self) -> bytes:
        """Serialize the payload with the SOR binary codec."""
        return codec.encode_value(
            [
                self.place_id,
                self.name,
                self.category,
                float(self.latitude),
                float(self.longitude),
                self.app_id,
                self.server_host,
            ]
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "PlacePayload":
        try:
            fields = codec.decode_value(data)
        except CodecError as exc:
            raise BarcodeError(f"barcode payload is not decodable: {exc}") from exc
        if not isinstance(fields, list) or len(fields) != 7:
            raise BarcodeError("barcode payload has the wrong shape")
        place_id, name, category, latitude, longitude, app_id, server_host = fields
        if not all(
            isinstance(value, str)
            for value in (place_id, name, category, app_id, server_host)
        ) or not all(isinstance(value, float) for value in (latitude, longitude)):
            raise BarcodeError("barcode payload has the wrong field types")
        return cls(
            place_id=place_id,
            name=name,
            category=category,
            latitude=latitude,
            longitude=longitude,
            app_id=app_id,
            server_host=server_host,
        )


def encode_place_barcode(payload: PlacePayload, *, ecc_symbols: int = 10) -> BitMatrix:
    """Render a place payload as a printable 2D code."""
    return encode_matrix(payload.to_bytes(), ecc_symbols=ecc_symbols)


def decode_place_barcode(matrix: BitMatrix, *, ecc_symbols: int = 10) -> PlacePayload:
    """Scan a 2D code back into a place payload, correcting damage."""
    return PlacePayload.from_bytes(decode_matrix(matrix, ecc_symbols=ecc_symbols))
