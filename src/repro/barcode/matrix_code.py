"""Bit-matrix layout for the SOR 2D code.

The symbology is a simplified QR-like design:

* row 0 and column 0 carry an alternating timing pattern (starting with a
  dark module at the corner) used to verify orientation and module pitch,
* the data region (everything with row ≥ 1 and column ≥ 1) carries, in
  row-major order, a 16-bit big-endian byte count written three times
  (decoded by per-bit majority vote, so the header tolerates damage just
  as the RS-protected body does) followed by the Reed–Solomon codeword
  bits, then alternating filler,
* all data-region modules are XOR-masked with a checkerboard pattern so
  degenerate payloads still produce a balanced symbol.

Encoding picks the smallest square that fits the header plus codeword.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.common.errors import BarcodeError
from repro.barcode.reed_solomon import ReedSolomonCodec

_HEADER_BITS = 16
_HEADER_COPIES = 3
_HEADER_REGION_BITS = _HEADER_BITS * _HEADER_COPIES


@dataclass
class BitMatrix:
    """A square matrix of modules; ``True`` is a dark module."""

    size: int
    modules: list[list[bool]]

    @classmethod
    def empty(cls, size: int) -> "BitMatrix":
        return cls(size=size, modules=[[False] * size for _ in range(size)])

    def get(self, row: int, column: int) -> bool:
        """Return the module at (row, column); True is dark."""
        return self.modules[row][column]

    def set(self, row: int, column: int, value: bool) -> None:
        """Set the module at (row, column)."""
        self.modules[row][column] = value

    def flip(self, row: int, column: int) -> None:
        """Invert one module (used to inject scan damage in tests)."""
        self.modules[row][column] = not self.modules[row][column]

    def copy(self) -> "BitMatrix":
        """Return an independent deep copy of this matrix."""
        return BitMatrix(size=self.size, modules=[list(row) for row in self.modules])

    def to_text(self, dark: str = "##", light: str = "  ") -> str:
        """Render as ASCII art, one module per ``dark``/``light`` cell."""
        return "\n".join(
            "".join(dark if module else light for module in row)
            for row in self.modules
        )


def _bits_from_bytes(data: bytes) -> list[bool]:
    bits: list[bool] = []
    for byte in data:
        for shift in range(7, -1, -1):
            bits.append(bool((byte >> shift) & 1))
    return bits


def _bytes_from_bits(bits: list[bool]) -> bytes:
    if len(bits) % 8 != 0:
        raise BarcodeError("bit stream length is not a multiple of 8")
    out = bytearray()
    for index in range(0, len(bits), 8):
        byte = 0
        for bit in bits[index : index + 8]:
            byte = (byte << 1) | int(bit)
        out.append(byte)
    return bytes(out)


def _data_cells(size: int) -> list[tuple[int, int]]:
    """Row-major data-region coordinates (skipping the timing row/column)."""
    return [(row, column) for row in range(1, size) for column in range(1, size)]


def _mask(row: int, column: int) -> bool:
    return (row + column) % 2 == 0


def encode_matrix(payload: bytes, *, ecc_symbols: int = 10) -> BitMatrix:
    """Encode ``payload`` into a bit matrix with RS parity."""
    codec = ReedSolomonCodec(ecc_symbols)
    codeword = codec.encode(payload)
    if len(codeword) > 0xFFFF:
        raise BarcodeError("payload too large for 16-bit header")
    needed_bits = _HEADER_REGION_BITS + len(codeword) * 8
    # Smallest n with (n-1)^2 >= needed_bits.
    size = 1 + math.isqrt(needed_bits - 1) + 1 if needed_bits > 1 else 2
    while (size - 1) * (size - 1) < needed_bits:
        size += 1
    matrix = BitMatrix.empty(size)
    for index in range(size):
        matrix.set(0, index, index % 2 == 0)
        matrix.set(index, 0, index % 2 == 0)
    header = [bool((len(codeword) >> shift) & 1) for shift in range(15, -1, -1)]
    bits = header * _HEADER_COPIES + _bits_from_bytes(codeword)
    cells = _data_cells(size)
    for index, (row, column) in enumerate(cells):
        bit = bits[index] if index < len(bits) else (index % 2 == 0)  # filler
        matrix.set(row, column, bit ^ _mask(row, column))
    return matrix


def decode_matrix(matrix: BitMatrix, *, ecc_symbols: int = 10) -> bytes:
    """Decode a bit matrix back to the payload, correcting scan damage.

    The timing patterns are checked loosely (a majority must match) so a
    few damaged timing modules do not make an otherwise correctable
    symbol unreadable.
    """
    size = matrix.size
    if size < 2:
        raise BarcodeError("matrix too small to be a SOR code")
    timing_expected = sum(
        1
        for index in range(size)
        if matrix.get(0, index) == (index % 2 == 0)
    ) + sum(
        1
        for index in range(1, size)
        if matrix.get(index, 0) == (index % 2 == 0)
    )
    timing_total = 2 * size - 1
    if timing_expected * 2 <= timing_total:
        raise BarcodeError("timing pattern mismatch; not a SOR code or rotated")
    cells = _data_cells(size)
    raw_bits = [
        matrix.get(row, column) ^ _mask(row, column) for row, column in cells
    ]
    if len(raw_bits) < _HEADER_REGION_BITS:
        raise BarcodeError("matrix too small to hold a header")
    codeword_length = 0
    for position in range(_HEADER_BITS):
        votes = sum(
            int(raw_bits[copy * _HEADER_BITS + position])
            for copy in range(_HEADER_COPIES)
        )
        bit = votes * 2 > _HEADER_COPIES
        codeword_length = (codeword_length << 1) | int(bit)
    total_bits = _HEADER_REGION_BITS + codeword_length * 8
    if codeword_length == 0 or total_bits > len(raw_bits):
        raise BarcodeError(f"implausible codeword length {codeword_length}")
    codeword = _bytes_from_bits(raw_bits[_HEADER_REGION_BITS:total_bits])
    codec = ReedSolomonCodec(ecc_symbols)
    return codec.decode(codeword)
