"""Reed–Solomon coding over GF(256).

The codec appends ``ecc_symbols`` parity bytes and can correct up to
``ecc_symbols // 2`` corrupted bytes anywhere in the codeword. Decoding
uses syndromes, Berlekamp–Massey for the error-locator polynomial, a
Chien-style root search for positions, and a GF(256) linear solve of the
syndrome (Vandermonde) system for the error magnitudes — mathematically
equivalent to Forney's algorithm but easier to audit.
"""

from __future__ import annotations

from repro.common.errors import BarcodeError
from repro.barcode import galois as gf


class ReedSolomonCodec:
    """An RS(n, n - ecc_symbols) codec with first consecutive root α⁰."""

    def __init__(self, ecc_symbols: int) -> None:
        if not 2 <= ecc_symbols <= 254:
            raise BarcodeError(
                f"ecc_symbols must be in [2, 254], got {ecc_symbols}"
            )
        self.ecc_symbols = ecc_symbols
        self._generator = self._build_generator(ecc_symbols)

    @staticmethod
    def _build_generator(ecc_symbols: int) -> list[int]:
        generator = [1]
        for i in range(ecc_symbols):
            generator = gf.poly_mul(generator, [1, gf.gf_pow(2, i)])
        return generator

    @property
    def max_correctable(self) -> int:
        """The number of byte errors the codec is guaranteed to correct."""
        return self.ecc_symbols // 2

    # ------------------------------------------------------------------
    # encode
    # ------------------------------------------------------------------
    def encode(self, data: bytes) -> bytes:
        """Return ``data`` with parity appended."""
        if len(data) == 0:
            raise BarcodeError("cannot encode empty data")
        if len(data) + self.ecc_symbols > 255:
            raise BarcodeError(
                f"codeword too long: {len(data)} data + {self.ecc_symbols} parity > 255"
            )
        padded = list(data) + [0] * self.ecc_symbols
        _, remainder = gf.poly_divmod(padded, self._generator)
        return bytes(data) + bytes(remainder)

    # ------------------------------------------------------------------
    # decode
    # ------------------------------------------------------------------
    def _syndromes(self, codeword: list[int]) -> list[int]:
        return [
            gf.poly_eval(codeword, gf.gf_pow(2, i)) for i in range(self.ecc_symbols)
        ]

    def _error_locator(self, syndromes: list[int]) -> list[int]:
        """Berlekamp–Massey; returns the locator, lowest degree last."""
        err_loc = [1]
        old_loc = [1]
        for i in range(self.ecc_symbols):
            old_loc.append(0)
            delta = syndromes[i]
            for j in range(1, len(err_loc)):
                delta ^= gf.gf_mul(err_loc[-(j + 1)], syndromes[i - j])
            if delta != 0:
                if len(old_loc) > len(err_loc):
                    new_loc = gf.poly_scale(old_loc, delta)
                    old_loc = gf.poly_scale(err_loc, gf.gf_inverse(delta))
                    err_loc = new_loc
                err_loc = gf.poly_add(err_loc, gf.poly_scale(old_loc, delta))
        while err_loc and err_loc[0] == 0:
            err_loc.pop(0)
        error_count = len(err_loc) - 1
        if error_count * 2 > self.ecc_symbols:
            raise BarcodeError("too many errors to correct")
        return err_loc

    def _error_positions(self, err_loc: list[int], length: int) -> list[int]:
        """Find codeword indices whose locations are roots of the locator."""
        error_count = len(err_loc) - 1
        positions = []
        for i in range(length):
            # Coefficient position counted from the end of the codeword.
            coefficient_position = length - 1 - i
            x_inverse = gf.gf_pow(2, -coefficient_position)
            if gf.poly_eval(err_loc, x_inverse) == 0:
                positions.append(i)
        if len(positions) != error_count:
            raise BarcodeError(
                f"locator degree {error_count} but found {len(positions)} roots"
            )
        return positions

    def _error_magnitudes(
        self, syndromes: list[int], locations: list[int]
    ) -> list[int]:
        """Solve S_j = Σ_i Y_i · X_i^j for the magnitudes Y_i."""
        error_count = len(locations)
        # Build the Vandermonde system from the first `error_count` syndromes.
        matrix = [
            [gf.gf_pow(x, row) for x in locations] + [syndromes[row]]
            for row in range(error_count)
        ]
        # Gaussian elimination over GF(256).
        for col in range(error_count):
            pivot_row = next(
                (row for row in range(col, error_count) if matrix[row][col] != 0),
                None,
            )
            if pivot_row is None:
                raise BarcodeError("singular syndrome system; cannot correct")
            matrix[col], matrix[pivot_row] = matrix[pivot_row], matrix[col]
            pivot_inverse = gf.gf_inverse(matrix[col][col])
            matrix[col] = [gf.gf_mul(value, pivot_inverse) for value in matrix[col]]
            for row in range(error_count):
                if row != col and matrix[row][col] != 0:
                    factor = matrix[row][col]
                    matrix[row] = [
                        value ^ gf.gf_mul(factor, matrix[col][index])
                        for index, value in enumerate(matrix[row])
                    ]
        return [matrix[row][error_count] for row in range(error_count)]

    def decode(self, codeword: bytes) -> bytes:
        """Correct up to ``max_correctable`` byte errors and strip parity.

        Raises :class:`BarcodeError` when the codeword is unrecoverable.
        """
        if len(codeword) <= self.ecc_symbols:
            raise BarcodeError("codeword shorter than parity length")
        if len(codeword) > 255:
            raise BarcodeError("codeword longer than 255 bytes")
        received = list(codeword)
        syndromes = self._syndromes(received)
        if any(syndromes):
            err_loc = self._error_locator(syndromes)
            positions = self._error_positions(err_loc, len(received))
            # X_i are the field locations α^(coefficient position).
            locations = [
                gf.gf_pow(2, len(received) - 1 - position) for position in positions
            ]
            magnitudes = self._error_magnitudes(syndromes, locations)
            for position, magnitude in zip(positions, magnitudes):
                received[position] ^= magnitude
            if any(self._syndromes(received)):
                raise BarcodeError("correction failed; residual syndromes non-zero")
        return bytes(received[: -self.ecc_symbols])
