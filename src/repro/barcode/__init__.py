"""2D barcode substrate.

In SOR, a 2D barcode deployed at the target place triggers participation:
scanning it yields the place identity, location and application id, which
the phone sends to the sensing server. This package implements a small
QR-like symbology from scratch:

* :mod:`repro.barcode.galois` — GF(256) arithmetic,
* :mod:`repro.barcode.reed_solomon` — Reed–Solomon encode/decode with
  error correction (Berlekamp–Massey + Chien search + linear solve),
* :mod:`repro.barcode.matrix_code` — bit-matrix layout with timing
  patterns, a length header and a checkerboard mask,
* :mod:`repro.barcode.payload` — the place payload carried by the code.
"""

from repro.barcode.matrix_code import BitMatrix, decode_matrix, encode_matrix
from repro.barcode.payload import PlacePayload, decode_place_barcode, encode_place_barcode
from repro.barcode.reed_solomon import ReedSolomonCodec

__all__ = [
    "BitMatrix",
    "PlacePayload",
    "ReedSolomonCodec",
    "decode_matrix",
    "decode_place_barcode",
    "encode_matrix",
    "encode_place_barcode",
]
