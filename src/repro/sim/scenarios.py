"""Field-test scenarios reproducing Section V-A and V-B.

The paper field-tested three Syracuse hiking trails (Green Lake Trail,
Long Trail, Cliff Trail — Nov 17, 2013, 11:00–14:00, 7 Nexus 4 phones
per trail) and three coffee shops (Tim Hortons, B&N Cafe, Starbucks —
Nov 15, 2013, 11:00–14:00, 12 phones per shop). We cannot visit those
places; instead each gets a ground-truth profile built from the paper's
qualitative descriptions and ground truths (Figs. 8/9/12/13):

* Green Lake Trail — loops a lake: humid, a little cooler, "almost
  entirely flat", smooth and easy;
* Long Trail — flat, fairly easy, drier;
* Cliff Trail — rocky, twisty, real relief: the difficult one;
* Starbucks — crowded, noisy and dark;
* Tim Hortons — a little colder than B&N but very bright (big window);
* B&N Cafe — quiet, bright, warm.

The user profiles (Figs. 7 and 11) are encoded exactly as described:
preferred values plus integer weights in {0..5}, with MAX/MIN for
always-better-one-way features.

Quantities: temperature °F, humidity %RH, brightness lux, background
noise dB(A) (the paper's figure uses a normalized unit; dB preserves the
ordering), Wi-Fi RSSI dBm.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.geo import LatLon
from repro.core.features import (
    AltitudeChangeExtractor,
    CurvatureExtractor,
    FeaturePipeline,
    FeatureSpec,
    MeanExtractor,
    RoughnessExtractor,
)
from repro.core.ranking import MAX, MIN, FeaturePreference, PreferenceProfile
from repro.sim.environment import (
    CompositeSignal,
    CrowdNoiseSignal,
    DiurnalSignal,
    OrnsteinUhlenbeckSignal,
)
from repro.sim.mobility import TrailPath
from repro.sim.places import PlaceProfile

# The paper's field tests ran 11:00AM–2:00PM; seconds since midnight.
FIELD_TEST_START_S = 11 * 3600.0
FIELD_TEST_END_S = 14 * 3600.0

TRAIL_PHONES = 7  # phones per hiking-trail test
SHOP_PHONES = 12  # phones per coffee-shop test


@dataclass(frozen=True)
class _TrailTruth:
    place_id: str
    name: str
    location: LatLon
    temperature_f: float
    humidity_pct: float
    roughness: float  # accelerometer std, m/s²
    wiggle_amplitude_m: float
    wiggle_period_m: float
    wiggle_jitter_m: float
    altitude_amplitude_m: float
    altitude_period_m: float
    length_m: float
    closed_loop: bool


_TRAILS = (
    _TrailTruth(
        place_id="green-lake-trail",
        name="Green Lake Trail",
        location=LatLon(43.0520, -75.9670),
        temperature_f=44.0,
        humidity_pct=58.0,
        roughness=0.12,
        wiggle_amplitude_m=2.0,
        wiggle_period_m=500.0,
        wiggle_jitter_m=0.0,
        altitude_amplitude_m=0.8,
        altitude_period_m=900.0,
        length_m=3000.0,
        closed_loop=True,
    ),
    _TrailTruth(
        place_id="long-trail",
        name="Long Trail",
        location=LatLon(43.0000, -76.0880),
        temperature_f=47.0,
        humidity_pct=45.0,
        roughness=0.22,
        wiggle_amplitude_m=12.0,
        wiggle_period_m=150.0,
        wiggle_jitter_m=0.5,
        altitude_amplitude_m=6.0,
        altitude_period_m=500.0,
        length_m=2600.0,
        closed_loop=False,
    ),
    _TrailTruth(
        place_id="cliff-trail",
        name="Cliff Trail",
        location=LatLon(42.9980, -76.0905),
        temperature_f=46.0,
        humidity_pct=48.0,
        roughness=0.45,
        wiggle_amplitude_m=15.0,
        wiggle_period_m=60.0,
        wiggle_jitter_m=3.0,
        altitude_amplitude_m=28.0,
        altitude_period_m=300.0,
        length_m=1800.0,
        closed_loop=False,
    ),
)


@dataclass(frozen=True)
class _ShopTruth:
    place_id: str
    name: str
    location: LatLon
    temperature_f: float
    brightness_lux: float
    noise_db: float
    wifi_dbm: float
    crowd_bursts_per_hour: float


_SHOPS = (
    _ShopTruth(
        place_id="tim-hortons",
        name="Tim Hortons",
        location=LatLon(43.0103, -76.1468),
        temperature_f=66.0,
        brightness_lux=800.0,
        noise_db=58.0,
        wifi_dbm=-60.0,
        crowd_bursts_per_hour=2.0,
    ),
    _ShopTruth(
        place_id="bn-cafe",
        name="B&N Cafe",
        location=LatLon(43.0448, -76.0740),
        temperature_f=72.0,
        brightness_lux=500.0,
        noise_db=55.0,
        wifi_dbm=-55.0,
        crowd_bursts_per_hour=1.5,
    ),
    _ShopTruth(
        place_id="starbucks",
        name="Starbucks",
        location=LatLon(43.0412, -76.1350),
        temperature_f=75.0,
        brightness_lux=200.0,
        noise_db=72.0,
        wifi_dbm=-65.0,
        crowd_bursts_per_hour=10.0,
    ),
)


def syracuse_trails(rng: np.random.Generator) -> list[PlaceProfile]:
    """Ground-truth profiles for the three hiking trails."""
    profiles = []
    for truth in _TRAILS:
        trail = TrailPath.build(
            origin=truth.location,
            length_m=truth.length_m,
            wiggle_amplitude_m=truth.wiggle_amplitude_m,
            wiggle_period_m=truth.wiggle_period_m,
            altitude_amplitude_m=truth.altitude_amplitude_m,
            altitude_period_m=truth.altitude_period_m,
            closed_loop=truth.closed_loop,
            rng=rng,
            wiggle_jitter=truth.wiggle_jitter_m,
        )
        signals = {
            "temperature": CompositeSignal(
                [
                    DiurnalSignal(
                        mean=truth.temperature_f, amplitude=1.5, peak_hour=15.0
                    ),
                    OrnsteinUhlenbeckSignal(
                        mean=0.0,
                        reversion_rate=1.0 / 600.0,
                        volatility=0.01,
                        rng=rng,
                    ),
                ]
            ),
            "humidity": OrnsteinUhlenbeckSignal(
                mean=truth.humidity_pct,
                reversion_rate=1.0 / 900.0,
                volatility=0.02,
                rng=rng,
            ),
        }
        profiles.append(
            PlaceProfile(
                place_id=truth.place_id,
                name=truth.name,
                category="hiking_trail",
                location=truth.location,
                signals=signals,
                trail=trail,
                surface_roughness=truth.roughness,
            )
        )
    return profiles


def syracuse_coffee_shops(rng: np.random.Generator) -> list[PlaceProfile]:
    """Ground-truth profiles for the three coffee shops."""
    profiles = []
    for truth in _SHOPS:
        signals = {
            "temperature": OrnsteinUhlenbeckSignal(
                mean=truth.temperature_f,
                reversion_rate=1.0 / 600.0,
                volatility=0.01,
                rng=rng,
            ),
            "drone_light": OrnsteinUhlenbeckSignal(
                mean=truth.brightness_lux,
                reversion_rate=1.0 / 300.0,
                volatility=0.5,
                rng=rng,
            ),
            "microphone": CrowdNoiseSignal(
                base_level=truth.noise_db,
                burst_gain=4.0,
                rng=rng,
                bursts_per_hour=truth.crowd_bursts_per_hour,
            ),
            "wifi": OrnsteinUhlenbeckSignal(
                mean=truth.wifi_dbm,
                reversion_rate=1.0 / 120.0,
                volatility=0.2,
                rng=rng,
            ),
        }
        profiles.append(
            PlaceProfile(
                place_id=truth.place_id,
                name=truth.name,
                category="coffee_shop",
                location=truth.location,
                signals=signals,
                surface_roughness=0.02,
            )
        )
    return profiles


def trail_feature_pipeline() -> FeaturePipeline:
    """The 5 hiking-trail features of Section V-A."""
    return FeaturePipeline(
        [
            FeatureSpec("temperature", "temperature", MeanExtractor()),
            FeatureSpec("humidity", "humidity", MeanExtractor()),
            FeatureSpec("roughness", "accelerometer", RoughnessExtractor()),
            FeatureSpec(
                "curvature",
                "gps",
                CurvatureExtractor(min_spacing_m=12.0, max_gap_m=60.0, smooth_window=5),
            ),
            FeatureSpec("altitude_change", "gps", AltitudeChangeExtractor()),
        ]
    )


def shop_feature_pipeline() -> FeaturePipeline:
    """The 4 coffee-shop features of Section V-B."""
    return FeaturePipeline(
        [
            FeatureSpec("temperature", "temperature", MeanExtractor()),
            FeatureSpec("brightness", "drone_light", MeanExtractor()),
            FeatureSpec("noise", "microphone", MeanExtractor()),
            FeatureSpec("wifi", "wifi", MeanExtractor()),
        ]
    )


def hiker_profiles() -> list[PreferenceProfile]:
    """Alice, Bob and Chris (Fig. 7)."""
    alice = PreferenceProfile(
        "Alice",
        {
            # An experienced hiker who prefers difficult trails: all
            # difficulty features to MAX with weight 5.
            "temperature": FeaturePreference(73.0, 0),
            "humidity": FeaturePreference(40.0, 0),
            "roughness": FeaturePreference(MAX, 5),
            "curvature": FeaturePreference(MAX, 5),
            "altitude_change": FeaturePreference(MAX, 5),
        },
    )
    bob = PreferenceProfile(
        "Bob",
        {
            # A beginner who likes dry and even trails; cares more about
            # humidity than difficulty.
            "temperature": FeaturePreference(73.0, 0),
            "humidity": FeaturePreference(MIN, 5),
            "roughness": FeaturePreference(MIN, 1),
            "curvature": FeaturePreference(MIN, 1),
            "altitude_change": FeaturePreference(MIN, 1),
        },
    )
    chris = PreferenceProfile(
        "Chris",
        {
            # A beginner who likes jogging near a lake: humid (near
            # water) first, easy terrain second.
            "temperature": FeaturePreference(73.0, 0),
            "humidity": FeaturePreference(MAX, 5),
            "roughness": FeaturePreference(MIN, 2),
            "curvature": FeaturePreference(MIN, 2),
            "altitude_change": FeaturePreference(MIN, 2),
        },
    )
    return [alice, bob, chris]


def customer_profiles() -> list[PreferenceProfile]:
    """David and Emma (Fig. 11)."""
    david = PreferenceProfile(
        "David",
        {
            # A social person: not-so-bright and warm, noise irrelevant.
            "temperature": FeaturePreference(75.0, 4),
            "brightness": FeaturePreference(MIN, 4),
            "noise": FeaturePreference(MIN, 0),
            "wifi": FeaturePreference(MAX, 2),
        },
    )
    emma = PreferenceProfile(
        "Emma",
        {
            # A student who reads and studies in relatively warm shops.
            "temperature": FeaturePreference(73.0, 3),
            "brightness": FeaturePreference(MAX, 2),
            "noise": FeaturePreference(MIN, 5),
            "wifi": FeaturePreference(MAX, 3),
        },
    )
    return [david, emma]
