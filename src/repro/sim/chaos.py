"""Chaos scenario: the full SOR protocol under a lossy cellular link.

Runs the end-to-end field test (barcode scan → PARTICIPATE → schedule →
sense → upload → decode) with fault injection on every phone↔server
exchange: independent request-leg and response-leg drop probabilities
and occasional latency spikes, all seeded. The report counts exactly
what the resilience layer promises to protect:

* **lost schedules** — phones whose scan never produced a task,
* **lost readings** — finished tasks whose upload never landed in
  ``raw_data``,
* **duplicate tasks** — one PARTICIPATE registered more than once
  (a replayed envelope that was not deduped),
* **duplicate uploads** — one task ingested more than once.

With ``resilient=True`` (retries + idempotent delivery) a seeded run at
20–30 % loss per leg completes with zero losses and zero duplicates;
with ``resilient=False`` the same impairments demonstrably lose data —
that contrast is asserted by ``tests/integration/test_chaos.py`` and the
CI ``chaos-smoke`` job.
"""

from __future__ import annotations

from collections import Counter as TallyCounter
from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import ValidationError
from repro.db import DurabilityConfig
from repro.net import NetworkConditions
from repro.net.resilience import BreakerPolicy, RetryPolicy
from repro.obs import MetricsRegistry, use_metrics
from repro.server.system import SORSystem
from repro.sim.scenarios import shop_feature_pipeline, syracuse_coffee_shops


@dataclass(frozen=True)
class ChaosSpec:
    """One chaos experiment: impairments, fleet size and retry posture."""

    request_drop: float = 0.25
    response_drop: float = 0.25
    latency_spike_probability: float = 0.05
    latency_spike_s: float = 2.0
    phones: int = 4
    budget: int = 5
    seed: int = 0
    resilient: bool = True
    retry_policy: RetryPolicy | None = None
    breaker_policy: BreakerPolicy | None = None
    # When set, the server runs with the WAL durability layer writing to
    # this directory — the CI crash-smoke job runs the lossy scenario
    # durable to prove the two layers compose.
    durability_dir: str | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.request_drop <= 1.0:
            raise ValidationError("request_drop must be a probability")
        if not 0.0 <= self.response_drop <= 1.0:
            raise ValidationError("response_drop must be a probability")
        if self.phones < 1 or self.budget < 1:
            raise ValidationError("need at least one phone and a positive budget")

    def conditions(self) -> NetworkConditions:
        """The fault-injection profile this spec describes."""
        return NetworkConditions(
            drop_probability=self.request_drop,
            response_drop_probability=self.response_drop,
            latency_spike_probability=self.latency_spike_probability,
            latency_spike_s=self.latency_spike_s,
        )


@dataclass
class ChaosReport:
    """What one chaos run did to the data, plus the metrics it emitted."""

    phones_deployed: int
    tasks_created: int
    lost_schedules: int
    duplicate_tasks: int
    uploads_ingested: int
    lost_uploads: int
    duplicate_uploads: int
    requests_dropped: int
    responses_dropped: int
    retries_total: float
    metrics: MetricsRegistry = field(repr=False)

    @property
    def data_intact(self) -> bool:
        """Zero losses and zero duplicate ingestions."""
        return (
            self.lost_schedules == 0
            and self.lost_uploads == 0
            and self.duplicate_tasks == 0
            and self.duplicate_uploads == 0
        )


def run_chaos_scenario(spec: ChaosSpec) -> ChaosReport:
    """Run one seeded end-to-end field test under ``spec``'s impairments.

    The whole run executes against a fresh metrics registry (returned in
    the report) so retry/breaker counters can be asserted exactly.
    """
    registry = MetricsRegistry()
    with use_metrics(registry):
        durability = (
            DurabilityConfig(directory=spec.durability_dir)
            if spec.durability_dir is not None
            else None
        )
        system = SORSystem(
            seed=spec.seed,
            network_conditions=spec.conditions(),
            resilient=spec.resilient,
            retry_policy=spec.retry_policy,
            breaker_policy=spec.breaker_policy,
            durability=durability,
        )
        shop = syracuse_coffee_shops(np.random.default_rng(spec.seed))[0]
        system.deploy_place(shop, shop_feature_pipeline())
        for _ in range(spec.phones):
            system.deploy_phone(shop.place_id, budget=spec.budget)
        system.run()

        tasks = system.server.database.table("tasks").select()
        tasks_per_user = TallyCounter(row["user_id"] for row in tasks)
        raw_rows = system.server.database.table("raw_data").select()
        rows_per_task = TallyCounter(row["task_id"] for row in raw_rows)

        scheduled_phones = sum(
            1 for deployed in system.phones if deployed.task is not None
        )
        # Every scheduled phone should have uploaded exactly once; a task
        # with no raw row is a lost reading, extra rows are duplicates.
        lost_uploads = sum(
            1
            for deployed in system.phones
            if deployed.task is not None
            and rows_per_task.get(deployed.task.task_id, 0) == 0
        )
        retries = registry.counter(
            "sor_net_retries_total", labels=("host",)
        )
        retries_total = sum(child.value for _, child in retries.series())
        return ChaosReport(
            phones_deployed=len(system.phones),
            tasks_created=len(tasks),
            lost_schedules=len(system.phones) - scheduled_phones,
            duplicate_tasks=sum(count - 1 for count in tasks_per_user.values()),
            uploads_ingested=len(rows_per_task),
            lost_uploads=lost_uploads,
            duplicate_uploads=sum(count - 1 for count in rows_per_task.values()),
            requests_dropped=system.network.stats.requests_dropped,
            responses_dropped=system.network.stats.responses_dropped,
            retries_total=retries_total,
            metrics=registry,
        )
