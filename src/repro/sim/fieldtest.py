"""Direct field-test simulation: phones at a place → raw bursts → features.

This is the algorithm-level reconstruction of the paper's field tests —
the full protocol version (barcode scan, HTTP, server-side scheduling
and decoding) lives in :mod:`repro.server.system`; both paths share this
module's provider wiring and produce equivalent feature data.

Per test: ``phones`` devices are present for the whole window (as in the
paper, where the test crew walked each trail / sat in each shop for the
three hours). The greedy scheduler spreads each phone's sensing budget
over the window; at every scheduled instant the phone takes one burst
per required sensor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.common.clock import ManualClock
from repro.common.errors import ValidationError
from repro.core.features import FeaturePipeline
from repro.core.features.types import ReadingBurst
from repro.core.scheduling import (
    GaussianKernel,
    GreedyScheduler,
    MobileUser,
    SchedulingPeriod,
    SchedulingProblem,
)
from repro.sensors import (
    NEXUS4_SENSORS,
    SENSORDRONE_SENSORS,
    GpsProvider,
    ScalarProvider,
    VectorProvider,
)
from repro.sensors.provider import Provider
from repro.sim.mobility import TrailWalker
from repro.sim.places import PlaceProfile
from repro.sim.scenarios import FIELD_TEST_END_S, FIELD_TEST_START_S

_WALK_CADENCE_HZ = 2.0  # footfalls per second driving the accelerometer


@dataclass(frozen=True)
class BurstSettings:
    """How many readings one burst takes and how far apart."""

    count: int = 5
    interval_s: float = 1.0

    def __post_init__(self) -> None:
        if self.count <= 0 or self.interval_s < 0:
            raise ValidationError("invalid burst settings")


@dataclass(frozen=True)
class FieldTestConfig:
    """Parameters of one simulated field test."""

    start_s: float = FIELD_TEST_START_S
    end_s: float = FIELD_TEST_END_S
    phones: int = 7
    budget: int = 40
    num_instants: int = 1080
    scheduling_sigma_s: float = 60.0
    pace_m_per_s: float = 1.3
    burst: BurstSettings = field(default_factory=BurstSettings)
    gps_burst: BurstSettings = field(default_factory=lambda: BurstSettings(13, 3.0))
    # Accelerometers sample at tens of Hz; a 1 Hz burst would alias the
    # ~2 Hz stride cadence to a constant and miss the roughness entirely.
    accel_burst: BurstSettings = field(default_factory=lambda: BurstSettings(60, 0.025))

    def __post_init__(self) -> None:
        if self.end_s <= self.start_s:
            raise ValidationError("field test must end after it starts")
        if self.phones <= 0 or self.budget <= 0 or self.num_instants <= 0:
            raise ValidationError("phones, budget and num_instants must be positive")


@dataclass
class FieldTestResult:
    """Everything one simulated field test produced."""

    place_id: str
    features: dict[str, float]
    bursts_by_sensor: dict[str, list[ReadingBurst]]
    energy_by_phone_mj: dict[str, float]
    schedule_average_coverage: float


def _accelerometer_signal(
    place: PlaceProfile, phase: float
) -> "callable":
    """The (x, y, z) felt by a phone carried at this place.

    Walking shakes the phone at the stride cadence with an amplitude set
    by the trail's surface roughness (rockier ⇒ stronger jolts); the
    amplitude is scaled so the within-burst magnitude deviation matches
    ``surface_roughness``. A phone on a coffee-shop table barely moves.
    """
    amplitude = place.surface_roughness * math.sqrt(2.0)

    def signal(t: float) -> tuple[float, float, float]:
        shake = amplitude * math.sin(2.0 * math.pi * _WALK_CADENCE_HZ * t + phase)
        return (0.2 * shake, 0.2 * shake, 9.81 + shake)

    return signal


def build_providers(
    place: PlaceProfile,
    sensor_types: set[str],
    clock: ManualClock,
    rng: np.random.Generator,
    *,
    walker: TrailWalker | None = None,
    phase: float = 0.0,
) -> dict[str, Provider]:
    """Construct one phone's providers for the required sensors."""
    specs = {**NEXUS4_SENSORS, **SENSORDRONE_SENSORS}
    providers: dict[str, Provider] = {}
    for sensor_type in sorted(sensor_types):
        if sensor_type not in specs:
            raise ValidationError(f"unknown sensor type {sensor_type!r}")
        spec = specs[sensor_type]
        if sensor_type == "gps":
            if walker is None:
                raise ValidationError("gps sensing needs a walker")
            providers[sensor_type] = GpsProvider(
                spec, clock, rng, walker.position, fix_error_m=1.5
            )
        elif sensor_type == "accelerometer":
            providers[sensor_type] = VectorProvider(
                spec, clock, rng, _accelerometer_signal(place, phase)
            )
        else:
            providers[sensor_type] = ScalarProvider(
                spec, clock, rng, place.signal(sensor_type).value
            )
    return providers


def run_field_test(
    place: PlaceProfile,
    pipeline: FeaturePipeline,
    config: FieldTestConfig,
    rng: np.random.Generator,
) -> FieldTestResult:
    """Simulate one field test at ``place`` and compute its features."""
    period = SchedulingPeriod(config.start_s, config.end_s, config.num_instants)
    users = [
        MobileUser(
            user_id=f"{place.place_id}-phone-{index}",
            arrival=config.start_s,
            departure=config.end_s,
            budget=config.budget,
        )
        for index in range(config.phones)
    ]
    problem = SchedulingProblem(
        period, users, GaussianKernel(sigma=config.scheduling_sigma_s)
    )
    schedule = GreedyScheduler().solve(problem)

    needed = pipeline.required_sensors
    bursts_by_sensor: dict[str, list[ReadingBurst]] = {sensor: [] for sensor in needed}
    energy_by_phone: dict[str, float] = {}
    for index, user in enumerate(users):
        clock = ManualClock(start=config.start_s)
        walker = None
        if place.trail is not None:
            mode = "loop" if place.trail.length_m > 0 and _is_loop(place) else "ping_pong"
            # Stagger hikers along the trail so traces differ.
            walker = TrailWalker(
                place.trail,
                pace_m_per_s=config.pace_m_per_s,
                start_time=config.start_s - index * 120.0,
                mode=mode,
            )
        providers = build_providers(
            place,
            needed,
            clock,
            np.random.default_rng(rng.integers(0, 2**63)),
            walker=walker,
            phase=float(index),
        )
        for sense_time in schedule.times_for(user.user_id):
            if sense_time > clock.now():
                clock.set(sense_time)
            for sensor_type in sorted(needed):
                if sensor_type == "gps":
                    settings = config.gps_burst
                elif sensor_type == "accelerometer":
                    settings = config.accel_burst
                else:
                    settings = config.burst
                burst = providers[sensor_type].acquire_burst(
                    settings.count, settings.interval_s
                )
                bursts_by_sensor[sensor_type].append(
                    ReadingBurst(
                        timestamp=burst.timestamp,
                        duration_s=burst.duration_s,
                        values=burst.values,
                        source=user.user_id,
                    )
                )
        energy_by_phone[user.user_id] = sum(
            provider.energy_consumed_mj for provider in providers.values()
        )
    features = pipeline.compute(bursts_by_sensor)
    return FieldTestResult(
        place_id=place.place_id,
        features=features,
        bursts_by_sensor=bursts_by_sensor,
        energy_by_phone_mj=energy_by_phone,
        schedule_average_coverage=schedule.average_coverage,
    )


def _is_loop(place: PlaceProfile) -> bool:
    """Whether a trail closes on itself (first and last points nearby)."""
    assert place.trail is not None
    first = place.trail.points[0]
    last = place.trail.points[-1]
    return (
        math.hypot(last.east_m - first.east_m, last.north_m - first.north_m)
        < place.trail.length_m * 0.05
    )
