"""Shard chaos scenario: repeated primary kills under a lossy network.

:mod:`repro.sim.chaos` attacks the network of a single server and
:mod:`repro.sim.crash` attacks its process; this module combines both
against the sharded fleet. Driver threads push the loadgen protocol mix
through the :class:`~repro.net.router.ShardRouter` while every leg
(phone→router and router→shard alike) suffers seeded request/response
drops — and a controller runs ``kills`` kill→promote→reseed cycles
against the fleet. The schedule is deliberately vicious:

* **cycle 0** hard-kills the victim shard's primary and promotes its
  WAL-fed replica (durably: the replica's state becomes a checkpoint
  and a new WAL generation opens), skipping the reseed;
* **cycle 1** (when ``kills >= 2``) kills the *same shard again* — the
  freshly promoted, re-attached primary — and lands the kill
  **mid-reseed**: the replacement replica is bootstrapping from the
  promotion checkpoint while the primary dies inside checkpoint
  compaction via the armed ``checkpoint.pre_replace`` crash hook,
  leaving a torn frame and an uncommitted transaction on disk;
* later cycles walk the remaining shards, one plain kill each.

The report audits the promise that makes all of this survivable:
**acked means committed to the WAL**, promotion replays that WAL, and
re-attach makes the promoted primary's WAL real again, so

* every task id a phone received in a SCHEDULE reply exists on exactly
  one surviving primary (no lost schedules, no duplicate registrations),
* every acked SENSED_DATA upload has exactly one ``raw_data`` row
  (no lost readings, no duplicate ingestion),
* after a final replication pump the fleet's replica lag drains to zero,
* the victim's *promoted* primary is itself durable: the run ends by
  hard-killing it one last time and recovering its database from disk
  alone (:attr:`ShardChaosReport.promoted_recovery_ok`).

Requests that hit a dead shard during a failover window are answered
with the standard 503 BUSY envelope; the phones' resilient clients back
off and re-send, and the idempotency layer dedupes whatever had already
landed. ``tests/integration/test_sharding.py`` and the CI
``shard-smoke`` job (``repro shardchaos --kills 3``) assert
:attr:`ShardChaosReport.data_intact`.
"""

from __future__ import annotations

import tempfile
import threading
import time
from collections import Counter as TallyCounter
from dataclasses import dataclass, field

import numpy as np

from repro.common.clock import ManualClock
from repro.common.errors import TransportError, ValidationError
from repro.db import DurabilityConfig, open_durable_database
from repro.net import NetworkConditions
from repro.net.resilience import BreakerPolicy, ResilientClient, RetryPolicy
from repro.net.transport import Network
from repro.obs import MetricsRegistry, NullTracer, use_metrics
from repro.server.concurrency import ConcurrencyConfig
from repro.server.sharding import ShardCluster
from repro.sim.loadgen import (
    LoadgenSpec,
    _Counts,
    _loadgen_application,
    _run_session,
    _seed_features,
    build_workload,
)


@dataclass(frozen=True)
class ShardChaosSpec:
    """One sharded chaos experiment: fleet shape, impairments, the kill."""

    phones: int = 120
    shards: int = 4
    replicas: int = 1
    categories: int = 8
    places: int = 16
    clients: int = 8
    seed: int = 0
    request_drop: float = 0.2
    response_drop: float = 0.2
    io_delay_s: float = 0.0005
    kill_shard: int = 1
    # Kill once this many schedules have been acked (mid-run by
    # construction); the controller then promotes the shard's replica.
    # With several kills, cycle k fires at (k+1) times this threshold.
    kill_after_schedules: int = 30
    # Dead window between the kill and the promotion: long enough that
    # requests for the victim's categories demonstrably hit the BUSY
    # path and have to be re-sent after failover.
    downtime_s: float = 0.05
    # Kill→promote→reseed cycles. With >= 2, the first two cycles both
    # hit kill_shard (the second lands mid-reseed, wrecking the WAL tail
    # via a crash hook); later cycles walk the remaining shards.
    kills: int = 1

    def __post_init__(self) -> None:
        if self.phones < 1:
            raise ValidationError("phones must be at least 1")
        if self.shards < 2:
            raise ValidationError("shard chaos needs at least 2 shards")
        if self.replicas < 1:
            raise ValidationError(
                "the killed shard needs a replica to promote"
            )
        if not 0.0 <= self.request_drop <= 1.0:
            raise ValidationError("request_drop must be a probability")
        if not 0.0 <= self.response_drop <= 1.0:
            raise ValidationError("response_drop must be a probability")
        if not 0 <= self.kill_shard < self.shards:
            raise ValidationError("kill_shard must name an existing shard")
        if self.kills < 1:
            raise ValidationError("kills must be at least 1")
        if not 0 < self.kills * self.kill_after_schedules < self.phones:
            raise ValidationError(
                "every kill threshold must fall inside the run "
                "(kills * kill_after_schedules < phones)"
            )
        if self.downtime_s < 0:
            raise ValidationError("downtime_s must be non-negative")

    def loadgen_spec(self) -> LoadgenSpec:
        """The deterministic workload this chaos run drives."""
        return LoadgenSpec(
            phones=self.phones,
            seed=self.seed,
            mode="concurrent",
            clients=self.clients,
            workers=2,
            io_delay_s=self.io_delay_s,
            places=self.places,
            shards=self.shards,
            replicas=self.replicas,
            categories=self.categories,
        )

    def conditions(self) -> NetworkConditions:
        """The lossy `NetworkConditions` this scenario injects."""
        return NetworkConditions(
            base_latency_s=0.0,
            jitter_s=0.0,
            drop_probability=self.request_drop,
            response_drop_probability=self.response_drop,
        )


@dataclass
class ShardChaosReport:
    """What the kill did to acked data (nothing, if all is well)."""

    phones: int
    killed_shard: str
    kills: int
    acked_schedules: int
    acked_uploads: int
    lost_schedules: int
    duplicate_tasks: int
    lost_uploads: int
    duplicate_uploads: int
    failovers: int
    reseeds: int
    promoted_recovery_ok: bool
    replica_lag_after_sync: int
    requests_dropped: int
    responses_dropped: int
    busy_replies: float
    metrics: MetricsRegistry = field(repr=False)

    @property
    def data_intact(self) -> bool:
        """Zero acked data lost or duplicated, the lag drained, and the
        promoted primary provably recoverable from its re-attached WAL."""
        return (
            self.lost_schedules == 0
            and self.lost_uploads == 0
            and self.duplicate_tasks == 0
            and self.duplicate_uploads == 0
            and self.replica_lag_after_sync == 0
            and self.promoted_recovery_ok
        )


def _driver_client(
    network: Network, seed: int, stream: int, metrics: MetricsRegistry
) -> ResilientClient:
    # Patient on purpose: the drivers must ride out both the 20%-loss
    # link and the failover window (BUSY replies) without abandoning.
    return ResilientClient(
        network,
        policy=RetryPolicy(
            max_attempts=64,
            base_backoff_s=0.002,
            max_backoff_s=0.05,
            deadline_s=600.0,
        ),
        breaker_policy=BreakerPolicy(
            failure_threshold=1_000_000, recovery_timeout_s=0.001
        ),
        rng=np.random.default_rng((seed, 2, stream)),
        sleep=time.sleep,
        metrics=metrics,
        tracer=NullTracer(),
    )


def run_shard_chaos(spec: ShardChaosSpec) -> ShardChaosReport:
    """Run the kill-a-primary-mid-run experiment; audit acked data."""
    registry = MetricsRegistry()
    lg = spec.loadgen_spec()
    scripts = build_workload(lg)
    victim = f"shard-{spec.kill_shard}"
    with use_metrics(registry), tempfile.TemporaryDirectory(
        prefix="sor-shard-chaos-"
    ) as base_dir:
        network = Network(
            conditions=spec.conditions(),
            rng=np.random.default_rng(spec.seed + 1),
            metrics=registry,
        )
        cluster = ShardCluster(
            network,
            ManualClock(0.0),
            base_dir,
            num_shards=spec.shards,
            replicas_per_shard=spec.replicas,
            metrics=registry,
            tracer=NullTracer(),
            concurrency=ConcurrencyConfig(workers=2, queue_capacity=64),
            replica_concurrency=None,
            io_delay_s=spec.io_delay_s,
            replica_io_delay_s=spec.io_delay_s,
            fsync=False,
            router_client=ResilientClient(
                network,
                # Fails fast while a shard is dead (the phone gets BUSY
                # and backs off) but retries enough to shrug off drops.
                policy=RetryPolicy(
                    max_attempts=8,
                    base_backoff_s=0.001,
                    max_backoff_s=0.02,
                    deadline_s=60.0,
                ),
                breaker_policy=BreakerPolicy(
                    failure_threshold=16, recovery_timeout_s=0.05
                ),
                rng=np.random.default_rng(spec.seed + 3),
                sleep=time.sleep,
                metrics=registry,
                tracer=NullTracer(),
            ),
        )
        try:
            for place_index in range(spec.places):
                category_index = place_index % spec.categories
                primary = cluster.create_application(
                    _loadgen_application(lg, place_index),
                    pin_to=f"shard-{category_index % spec.shards}",
                )
                _seed_features(lg, primary, place_index)
            for script in scripts:
                cluster.register_user(
                    script.user_id, script.user_id.title(), script.token
                )
            # Ship the seed data before traffic so an early rank query
            # never finds a replica without its category.
            cluster.sync_replicas()
            cluster.start_replication(0.005)

            num_clients = lg.effective_clients
            all_counts = [_Counts() for _ in range(num_clients)]
            failures: list[BaseException] = []

            def drive(client_index: int) -> None:
                client = _driver_client(
                    network, spec.seed, client_index, registry
                )
                counts = all_counts[client_index]
                try:
                    for script in scripts[client_index::num_clients]:
                        _run_session(
                            script, client, counts, lg,
                            host=cluster.router_host,
                        )
                except TransportError as exc:
                    failures.append(exc)

            threads = [
                threading.Thread(target=drive, args=(i,), name=f"sc-driver-{i}")
                for i in range(num_clients)
            ]
            for thread in threads:
                thread.start()

            # The controller: each cycle waits until the run has acked
            # demonstrably more data than the last kill left behind,
            # then kills a primary and promotes. Cycles 0 and 1 both
            # target the victim shard (the second kill hits the freshly
            # promoted, re-attached primary — and lands mid-reseed);
            # later cycles walk the remaining shards.
            def await_acked(threshold: int) -> None:
                while (
                    sum(len(c.acked_schedules) for c in all_counts) < threshold
                    and any(thread.is_alive() for thread in threads)
                ):
                    time.sleep(0.002)

            targets = [
                victim
                if cycle <= 1
                else f"shard-{(spec.kill_shard + cycle - 1) % spec.shards}"
                for cycle in range(spec.kills)
            ]
            for cycle, target in enumerate(targets):
                await_acked((cycle + 1) * spec.kill_after_schedules)
                if cycle == 1:
                    # Cycle 0 skipped its reseed so this one races the
                    # kill: the replacement replica bootstraps from the
                    # promotion checkpoint while the primary it reads
                    # from dies inside checkpoint compaction, leaving a
                    # torn frame + uncommitted transaction on disk.
                    reseeder = threading.Thread(
                        target=cluster.reseed, args=(target,), name="sc-reseed"
                    )
                    reseeder.start()
                    cluster.kill_primary(target, wreck=True)
                    reseeder.join()
                else:
                    cluster.kill_primary(target)
                if spec.downtime_s:
                    time.sleep(spec.downtime_s)
                cluster.promote(
                    target, reseed=(cycle != 0 or spec.kills == 1)
                )
            for thread in threads:
                thread.join()

            if failures:
                raise TransportError(
                    f"{len(failures)} driver thread(s) exhausted retries: "
                    f"{failures[0]}"
                )

            cluster.stop_replication()
            cluster.sync_replicas()  # drain whatever the pump missed
            lag = cluster.replica_lag_records()

            acked_schedules = [
                task_id
                for counts in all_counts
                for task_id in counts.acked_schedules
            ]
            acked_uploads = [
                task_id
                for counts in all_counts
                for task_id in counts.acked_uploads
            ]
            tasks: list[dict] = []
            raws: list[dict] = []
            for shard in cluster.shards.values():
                tasks.extend(shard.primary.database.table("tasks").select())
                raws.extend(shard.primary.database.table("raw_data").select())
            task_ids = TallyCounter(row["task_id"] for row in tasks)
            tasks_per_user = TallyCounter(
                (row["user_id"], row["app_id"]) for row in tasks
            )
            raws_per_task = TallyCounter(row["task_id"] for row in raws)

            # Durability proof for the re-attached WAL: hard-kill the
            # victim's *promoted* primary one final time and recover its
            # database from disk alone — every task and upload it held
            # in memory must come back through checkpoint + replay.
            proof_shard = cluster.shards[victim]
            expected_tasks = sorted(
                row["task_id"]
                for row in proof_shard.primary.database.table("tasks").select()
            )
            expected_uploads = sorted(
                row["task_id"]
                for row in proof_shard.primary.database.table(
                    "raw_data"
                ).select()
            )
            cluster.kill_primary(victim)
            recovered, _recovery = open_durable_database(
                DurabilityConfig(directory=proof_shard.directory, fsync=False),
                name=f"{victim}-proof",
                metrics=MetricsRegistry(),
            )
            promoted_recovery_ok = (
                sorted(
                    row["task_id"]
                    for row in recovered.table("tasks").select()
                )
                == expected_tasks
                and sorted(
                    row["task_id"]
                    for row in recovered.table("raw_data").select()
                )
                == expected_uploads
            )
            if recovered.durability is not None:
                recovered.durability.close()

            busy = registry.get("sor_server_busy_rejections_total")
            failovers = registry.get("sor_shard_failovers_total")
            reseed_counter = registry.get("sor_shard_reseeds_total")
            reseeds = (
                int(
                    sum(
                        reseed_counter.value(shard=shard_id)  # type: ignore[union-attr]
                        for shard_id in cluster.shards
                    )
                )
                if reseed_counter is not None
                else 0
            )
            report = ShardChaosReport(
                phones=spec.phones,
                killed_shard=victim,
                kills=spec.kills,
                acked_schedules=len(acked_schedules),
                acked_uploads=len(acked_uploads),
                lost_schedules=sum(
                    1 for task_id in acked_schedules
                    if task_ids.get(task_id, 0) == 0
                ),
                duplicate_tasks=sum(
                    count - 1 for count in tasks_per_user.values()
                ),
                lost_uploads=sum(
                    1 for task_id in acked_uploads
                    if raws_per_task.get(task_id, 0) == 0
                ),
                duplicate_uploads=sum(
                    count - 1 for count in raws_per_task.values()
                ),
                failovers=int(failovers.value()) if failovers else 0,  # type: ignore[union-attr]
                reseeds=reseeds,
                promoted_recovery_ok=promoted_recovery_ok,
                replica_lag_after_sync=lag,
                requests_dropped=network.stats.requests_dropped,
                responses_dropped=network.stats.responses_dropped,
                busy_replies=float(busy.value()) if busy else 0.0,  # type: ignore[union-attr]
                metrics=registry,
            )
        finally:
            cluster.close()
    return report


def format_shard_chaos_report(report: ShardChaosReport) -> str:
    """The CLI's human-readable rendering of one shard chaos run."""
    verdict = "INTACT" if report.data_intact else "DATA LOSS"
    recovery = "OK" if report.promoted_recovery_ok else "LOST DATA"
    return "\n".join(
        [
            f"shard chaos — {report.phones} phones, {report.kills} "
            f"kill(s) starting at {report.killed_shard} "
            f"({report.failovers} failovers, {report.reseeds} reseeds)",
            f"acked schedules     : {report.acked_schedules} "
            f"(lost {report.lost_schedules}, "
            f"duplicates {report.duplicate_tasks})",
            f"acked uploads       : {report.acked_uploads} "
            f"(lost {report.lost_uploads}, "
            f"duplicates {report.duplicate_uploads})",
            f"replica lag (final) : {report.replica_lag_after_sync} records",
            f"promoted recovery   : {recovery} "
            "(promoted primary killed and recovered from its re-attached WAL)",
            f"drops               : {report.requests_dropped} requests, "
            f"{report.responses_dropped} responses",
            f"busy replies        : {report.busy_replies:.0f}",
            f"verdict             : {verdict}",
        ]
    )
