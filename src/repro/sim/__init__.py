"""Simulation substrate.

Replaces the paper's physical world: a discrete-event engine drives
phones and servers on a shared virtual clock; environment models
generate ground-truth signals (temperature, light, noise, motion, GPS
position along a trail) that sensor providers sample; scenario builders
reconstruct the Syracuse field tests (three hiking trails, three coffee
shops) and the Section V-C scheduling simulations.
"""

from repro.sim.arrivals import poisson_arrivals, uniform_arrivals
from repro.sim.engine import EventQueue, Simulator
from repro.sim.environment import (
    CompositeSignal,
    ConstantSignal,
    CrowdNoiseSignal,
    DiurnalSignal,
    OrnsteinUhlenbeckSignal,
    SignalModel,
    SinusoidSignal,
)
from repro.sim.mobility import TrailPath, TrailWalker
from repro.sim.places import PlaceProfile

__all__ = [
    "CompositeSignal",
    "ConstantSignal",
    "CrowdNoiseSignal",
    "DiurnalSignal",
    "EventQueue",
    "OrnsteinUhlenbeckSignal",
    "PlaceProfile",
    "SignalModel",
    "poisson_arrivals",
    "Simulator",
    "SinusoidSignal",
    "TrailPath",
    "TrailWalker",
    "uniform_arrivals",
]
