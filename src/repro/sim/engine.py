"""A small discrete-event simulation engine.

Events are (time, priority, sequence, callback) tuples in a heap; the
simulator advances a :class:`~repro.common.clock.ManualClock` to each
event's timestamp before invoking it, so every component reading the
clock observes consistent virtual time.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

from repro.common.clock import ManualClock
from repro.common.errors import ValidationError

EventCallback = Callable[[], None]


class EventQueue:
    """A time/priority-ordered queue of callbacks."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, EventCallback]] = []
        self._sequence = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: float, callback: EventCallback, *, priority: int = 0) -> None:
        """Enqueue ``callback`` at ``time`` (lower priority fires first on ties)."""
        heapq.heappush(self._heap, (time, priority, next(self._sequence), callback))

    def peek_time(self) -> float | None:
        """Timestamp of the next event, or None when empty."""
        return self._heap[0][0] if self._heap else None

    def pop(self) -> tuple[float, EventCallback]:
        """Remove and return the next (time, callback)."""
        time, _priority, _sequence, callback = heapq.heappop(self._heap)
        return time, callback


class Simulator:
    """Drives an event queue against a manual clock.

    >>> simulator = Simulator()
    >>> fired = []
    >>> simulator.schedule_at(5.0, lambda: fired.append(simulator.now()))
    >>> simulator.run()
    >>> fired
    [5.0]
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self.clock = ManualClock(start=start_time)
        self.queue = EventQueue()
        self.events_processed = 0

    def now(self) -> float:
        """Current virtual time in seconds."""
        return self.clock.now()

    def schedule_at(
        self, time: float, callback: EventCallback, *, priority: int = 0
    ) -> None:
        """Schedule ``callback`` at absolute time ``time``."""
        if time < self.clock.now():
            raise ValidationError(
                f"cannot schedule in the past ({time} < {self.clock.now()})"
            )
        self.queue.push(time, callback, priority=priority)

    def schedule_in(
        self, delay: float, callback: EventCallback, *, priority: int = 0
    ) -> None:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValidationError(f"delay must be non-negative, got {delay}")
        self.queue.push(self.clock.now() + delay, callback, priority=priority)

    def run(self, until: float | None = None) -> None:
        """Process events in order; stop at ``until`` if given.

        When ``until`` is given the clock is advanced to it even if the
        queue drains earlier, so follow-up scheduling starts from there.
        """
        while len(self.queue) > 0:
            next_time = self.queue.peek_time()
            assert next_time is not None
            if until is not None and next_time > until:
                break
            time, callback = self.queue.pop()
            if time > self.clock.now():
                self.clock.set(time)
            callback()
            self.events_processed += 1
        if until is not None and until > self.clock.now():
            self.clock.set(until)

    def step(self) -> bool:
        """Process one event; returns False when the queue is empty."""
        if len(self.queue) == 0:
            return False
        time, callback = self.queue.pop()
        if time > self.clock.now():
            self.clock.set(time)
        callback()
        self.events_processed += 1
        return True
