"""Trail geometry and hiker mobility.

A :class:`TrailPath` is a polyline with altitude; a :class:`TrailWalker`
walks it at a given pace and answers "where is the hiker at time t" —
which is exactly what the GPS provider's signal needs. Trail builders
control the geometric properties the field-test features measure:
lateral wiggle (→ curvature) and the altitude profile (→ altitude
change).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.common.errors import ValidationError
from repro.common.geo import LatLon, offset_latlon
from repro.core.features.types import GpsFix


@dataclass(frozen=True)
class TrailPoint:
    """One vertex of the trail in local metres plus altitude."""

    east_m: float
    north_m: float
    altitude_m: float


class TrailPath:
    """A polyline trail anchored at a geographic origin."""

    def __init__(self, origin: LatLon, points: list[TrailPoint]) -> None:
        if len(points) < 2:
            raise ValidationError("a trail needs at least two points")
        self.origin = origin
        self.points = list(points)
        distances = [0.0]
        for previous, current in zip(points, points[1:]):
            step = math.hypot(
                current.east_m - previous.east_m, current.north_m - previous.north_m
            )
            distances.append(distances[-1] + step)
        self._cumulative = distances

    @property
    def length_m(self) -> float:
        return self._cumulative[-1]

    def position_at(self, distance_m: float) -> GpsFix:
        """The point ``distance_m`` along the trail (clamped to its ends)."""
        distance = min(max(distance_m, 0.0), self.length_m)
        # Binary search for the segment containing `distance`.
        low, high = 0, len(self._cumulative) - 1
        while low + 1 < high:
            middle = (low + high) // 2
            if self._cumulative[middle] <= distance:
                low = middle
            else:
                high = middle
        segment_length = self._cumulative[high] - self._cumulative[low]
        fraction = (
            (distance - self._cumulative[low]) / segment_length
            if segment_length > 0
            else 0.0
        )
        start, end = self.points[low], self.points[high]
        east = start.east_m + fraction * (end.east_m - start.east_m)
        north = start.north_m + fraction * (end.north_m - start.north_m)
        altitude = start.altitude_m + fraction * (end.altitude_m - start.altitude_m)
        coordinate = offset_latlon(self.origin, east_m=east, north_m=north)
        return GpsFix(
            latitude=coordinate.latitude,
            longitude=coordinate.longitude,
            altitude_m=altitude,
        )

    @staticmethod
    def build(
        origin: LatLon,
        *,
        length_m: float,
        wiggle_amplitude_m: float,
        wiggle_period_m: float,
        altitude_amplitude_m: float,
        altitude_period_m: float,
        base_altitude_m: float = 150.0,
        point_spacing_m: float = 5.0,
        closed_loop: bool = False,
        rng: np.random.Generator | None = None,
        wiggle_jitter: float = 0.0,
    ) -> "TrailPath":
        """Build a synthetic trail with controlled curvature and relief.

        The trail heads east with a sinusoidal lateral wiggle; larger
        amplitude / shorter period ⇒ higher curvature. ``closed_loop``
        bends the trail around a circle instead (the Green Lake trail
        rings a lake). ``wiggle_jitter`` adds per-vertex lateral noise
        for rocky, irregular trails.
        """
        if length_m <= 0 or point_spacing_m <= 0:
            raise ValidationError("length_m and point_spacing_m must be positive")
        count = max(3, int(length_m / point_spacing_m) + 1)
        positions = np.linspace(0.0, length_m, count)
        points: list[TrailPoint] = []
        for along in positions:
            lateral = (
                wiggle_amplitude_m * math.sin(2.0 * math.pi * along / wiggle_period_m)
                if wiggle_period_m > 0
                else 0.0
            )
            if rng is not None and wiggle_jitter > 0:
                lateral += float(rng.normal(0.0, wiggle_jitter))
            altitude = base_altitude_m + (
                altitude_amplitude_m
                * math.sin(2.0 * math.pi * along / altitude_period_m)
                if altitude_period_m > 0
                else 0.0
            )
            if closed_loop:
                radius = length_m / (2.0 * math.pi)
                angle = along / radius
                east = (radius + lateral) * math.cos(angle)
                north = (radius + lateral) * math.sin(angle)
            else:
                east = along
                north = lateral
            points.append(TrailPoint(east_m=east, north_m=north, altitude_m=altitude))
        return TrailPath(origin, points)


class TrailWalker:
    """A hiker walking a trail at constant pace from ``start_time``.

    ``mode`` controls what happens past the trail end:

    * ``"clamp"`` — stay at the end (a phone parked at the trailhead),
    * ``"loop"`` — wrap around (a loop trail like Green Lake),
    * ``"ping_pong"`` — walk out and back (typical for linear trails).
    """

    _MODES = ("clamp", "loop", "ping_pong")

    def __init__(
        self,
        path: TrailPath,
        pace_m_per_s: float,
        start_time: float = 0.0,
        *,
        mode: str = "clamp",
    ) -> None:
        if pace_m_per_s <= 0:
            raise ValidationError("pace must be positive")
        if mode not in self._MODES:
            raise ValidationError(f"mode must be one of {self._MODES}, got {mode!r}")
        self.path = path
        self.pace_m_per_s = pace_m_per_s
        self.start_time = start_time
        self.mode = mode

    def _effective_distance(self, walked: float) -> float:
        length = self.path.length_m
        if self.mode == "loop":
            return walked % length
        if self.mode == "ping_pong":
            cycle = walked % (2.0 * length)
            return cycle if cycle <= length else 2.0 * length - cycle
        return min(walked, length)

    def position(self, t: float) -> GpsFix:
        """The hiker's GPS position at absolute time ``t``."""
        walked = max(0.0, t - self.start_time) * self.pace_m_per_s
        return self.path.position_at(self._effective_distance(walked))
