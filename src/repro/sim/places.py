"""Place profiles: the ground truth a field test measures.

A :class:`PlaceProfile` bundles everything the simulation needs to stand
in for a physical place: identity and location (what the 2D barcode
encodes), per-sensor ground-truth signals, and — for trails — the trail
geometry hikers walk.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.common.errors import ValidationError
from repro.common.geo import LatLon
from repro.sim.environment import SignalModel
from repro.sim.mobility import TrailPath


@dataclass
class PlaceProfile:
    """Ground truth for one target place."""

    place_id: str
    name: str
    category: str
    location: LatLon
    signals: Mapping[str, SignalModel] = field(default_factory=dict)
    trail: TrailPath | None = None
    # Motion roughness parameter: std (m/s²) of the vertical shaking a
    # walking phone experiences on this surface; drives the
    # accelerometer signal.
    surface_roughness: float = 0.1

    def __post_init__(self) -> None:
        if not self.place_id or not self.name or not self.category:
            raise ValidationError("place identity fields are required")
        if self.surface_roughness < 0:
            raise ValidationError("surface_roughness must be non-negative")

    def signal(self, sensor_type: str) -> SignalModel:
        """The ground-truth signal for ``sensor_type`` (raises if absent)."""
        try:
            return self.signals[sensor_type]
        except KeyError:
            raise ValidationError(
                f"place {self.place_id!r} has no signal for sensor "
                f"{sensor_type!r}"
            ) from None

    def has_signal(self, sensor_type: str) -> bool:
        """Whether this place models ``sensor_type``."""
        return sensor_type in self.signals
