"""A deterministic closed-loop load generator for the sensing server.

``repro loadgen`` drives an **in-process** :class:`SensingServer` with
the protocol mix a real deployment sees — participation requests,
sensed-data uploads, schedule pulls (idempotent participate replays) and
rank queries — for a population of phones drawn from the arrival models
in :mod:`repro.sim.arrivals`. The workload is fully determined by the
seed: phone identities, arrival order, app assignment, upload sizes and
the query mix never change between runs, so a load run is reproducible
and its *correctness* counters (sessions completed, replies matched,
errors) can be asserted in CI. Wall-clock numbers — sustained request
rate, p50/p99 handler latency out of the server's own
``sor_server_request_seconds`` histogram — vary with the machine, which
is what the benchmark gate thresholds are for.

The generator is *closed-loop*: ``spec.clients`` driver threads each
walk their share of the phone population in arrival order, sending the
next request as soon as the previous reply lands. Arrival timestamps
order the population and provide departure times; they are not slept
on — the point is to saturate the server, not to replay a timeline.

Two modes make the concurrency win measurable:

* ``concurrent`` — the server runs its worker pool behind the bounded
  admission queue (busy rejections are retried by the drivers'
  resilient clients, exactly like real phones);
* ``sequential`` — no pool, one driver thread: the pre-concurrency
  server, as a baseline.

With a non-zero ``io_delay_s`` (each request's simulated socket/disk
time) the pool overlaps the waiting that a single-threaded server
serializes; :func:`run_comparison` reports the speedup.
"""

from __future__ import annotations

import hashlib
import json
import tempfile
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np

from repro.common.clock import ManualClock
from repro.common.errors import TransportError, ValidationError
from repro.common.geo import LatLon
from repro.core.features import FeaturePipeline, FeatureSpec, MeanExtractor
from repro.net import Envelope, MessageType, NetworkConditions
from repro.net.http import HttpRequest
from repro.net.resilience import BreakerPolicy, ResilientClient, RetryPolicy
from repro.net.transport import Network
from repro.obs import MetricsRegistry, NullTracer
from repro.server.app_manager import Application
from repro.server.concurrency import ConcurrencyConfig
from repro.server.server import SensingServer
from repro.server.sharding import ShardCluster
from repro.sim.arrivals import fixed_count_arrivals

SERVER_HOST = "loadgen-server"
CATEGORY = "loadgen"
FEATURES = ("noise_db", "wifi_mbps", "occupancy")

#: Rank-query profiles phones rotate through (payload-dict form).
PROFILES: tuple[dict[str, Any], ...] = (
    {
        "name": "quiet",
        "preferences": {
            "noise_db": {"preferred": "min", "weight": 5},
            "wifi_mbps": {"preferred": "max", "weight": 2},
        },
    },
    {
        "name": "connected",
        "preferences": {
            "wifi_mbps": {"preferred": "max", "weight": 5},
            "occupancy": {"preferred": "min", "weight": 1},
        },
    },
    {
        "name": "balanced",
        "preferences": {
            "noise_db": {"preferred": 45.0, "weight": 3},
            "wifi_mbps": {"preferred": "max", "weight": 3},
            "occupancy": {"preferred": "min", "weight": 3},
        },
    },
)


@dataclass(frozen=True)
class LoadgenSpec:
    """Everything that determines a load run (the workload part exactly)."""

    phones: int = 1000
    seed: int = 0
    mode: str = "concurrent"  # or "sequential"
    clients: int = 8  # driver threads (forced to 1 in sequential mode)
    workers: int = 8  # server worker pool size (concurrent mode)
    queue_capacity: int = 64
    io_delay_s: float = 0.0  # simulated per-request socket/disk seconds
    period_s: float = 10800.0  # the paper's 3-hour sensing period
    budget: int = 5
    places: int = 8
    num_instants: int = 120
    pull_every: int = 4  # every Nth phone replays its participate
    rank_every: int = 16  # every Nth phone sends a rank query
    # Sharded deployment: with shards > 1 the drivers talk to a
    # ShardCluster's consistent-hash router instead of one server.
    # ``categories`` partitions the places into that many rankable
    # categories, pinned round-robin across the shards.
    shards: int = 1
    replicas: int = 1  # read-replicas per shard (sharded runs only)
    categories: int = 1

    def __post_init__(self) -> None:
        if self.phones < 1:
            raise ValidationError("phones must be at least 1")
        if self.mode not in ("concurrent", "sequential"):
            raise ValidationError("mode must be 'concurrent' or 'sequential'")
        if self.clients < 1 or self.workers < 1 or self.queue_capacity < 1:
            raise ValidationError("clients/workers/queue_capacity must be >= 1")
        if self.io_delay_s < 0:
            raise ValidationError("io_delay_s must be non-negative")
        if self.places < 1:
            raise ValidationError("places must be at least 1")
        if self.pull_every < 1 or self.rank_every < 1:
            raise ValidationError("pull_every/rank_every must be >= 1")
        if self.shards < 1:
            raise ValidationError("shards must be at least 1")
        if self.replicas < 0:
            raise ValidationError("replicas must be >= 0")
        if self.categories < 1:
            raise ValidationError("categories must be at least 1")
        if self.places % self.categories != 0:
            raise ValidationError("places must be a multiple of categories")
        if self.categories > 1 and self.places // self.categories < 2:
            raise ValidationError(
                "each category needs at least two places to rank"
            )

    @property
    def effective_clients(self) -> int:
        return 1 if self.mode == "sequential" else self.clients


@dataclass
class LoadgenReport:
    """What one load run produced; counters are seed-deterministic,
    timings are wall-clock."""

    spec: LoadgenSpec
    workload_digest: str
    requests_ok: int = 0
    requests_by_type: dict[str, int] = field(default_factory=dict)
    sessions_completed: int = 0
    error_replies: int = 0
    replay_mismatches: int = 0
    busy_rejections: int = 0
    retries: int = 0
    duration_s: float = 0.0
    requests_per_s: float = 0.0
    p50_ms: float = 0.0
    p99_ms: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        """A JSON-friendly dump (the CLI's ``--format json``)."""
        payload = dict(vars(self))
        payload["spec"] = dict(vars(self.spec))
        return payload


# ----------------------------------------------------------------------
# deterministic workload
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _PhoneScript:
    """One phone's precomputed session (everything but the task id)."""

    index: int
    user_id: str
    token: str
    app_id: str
    location: LatLon
    departure_time: float
    executed: int
    pull: bool
    rank_profile: int  # -1 = no rank query


def _place_location(place_index: int) -> LatLon:
    return LatLon(43.0 + 0.001 * place_index, -76.0)


def _place_category(spec: LoadgenSpec, place_index: int) -> str:
    """The category place ``place_index`` ranks in.

    With one category this is the historical ``loadgen`` name, so
    single-category workloads stay byte-identical to earlier releases.
    """
    if spec.categories == 1:
        return CATEGORY
    return f"{CATEGORY}-{place_index % spec.categories}"


def build_workload(spec: LoadgenSpec) -> list[_PhoneScript]:
    """The full phone population, in arrival order, from the seed alone."""
    rng = np.random.default_rng(spec.seed)
    users = fixed_count_arrivals(
        spec.phones, spec.period_s, spec.budget, rng, id_prefix="lg"
    )
    executed = rng.integers(0, spec.budget + 1, size=spec.phones)
    scripts = []
    for index, user in enumerate(users):
        place_index = index % spec.places
        scripts.append(
            _PhoneScript(
                index=index,
                user_id=f"u-{index}",
                token=f"t-{index}",
                app_id=f"app-place-{place_index}",
                location=_place_location(place_index),
                departure_time=user.departure,
                executed=int(executed[index]),
                pull=index % spec.pull_every == 0,
                rank_profile=(
                    (index // spec.rank_every) % len(PROFILES)
                    if index % spec.rank_every == 0
                    else -1
                ),
            )
        )
    return scripts


def workload_digest(spec: LoadgenSpec, scripts: list[_PhoneScript]) -> str:
    """A stable hash of the workload — equal seeds must produce equal
    digests, which the determinism test (and CI) asserts."""
    canonical = json.dumps(
        {
            "spec": {
                key: value
                for key, value in vars(spec).items()
                # Execution shape doesn't change what is sent.
                if key not in ("mode", "clients", "workers", "queue_capacity",
                               "io_delay_s", "shards", "replicas")
            },
            "phones": [
                [
                    s.index, s.user_id, s.token, s.app_id,
                    round(s.departure_time, 6), s.executed, s.pull,
                    s.rank_profile,
                ]
                for s in scripts
            ],
        },
        sort_keys=True,
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


# ----------------------------------------------------------------------
# the run
# ----------------------------------------------------------------------
def _loadgen_application(spec: LoadgenSpec, place_index: int) -> Application:
    return Application(
        app_id=f"app-place-{place_index}",
        creator="loadgen",
        place_id=f"place-{place_index}",
        place_name=f"Place {place_index}",
        category=_place_category(spec, place_index),
        location=_place_location(place_index),
        script="local data = {}\nreturn data",
        pipeline=FeaturePipeline(
            [
                FeatureSpec(feature, "microphone", MeanExtractor())
                for feature in FEATURES
            ]
        ),
        period_start=0.0,
        period_end=spec.period_s,
        num_instants=spec.num_instants,
    )


def _seed_features(spec: LoadgenSpec, server: SensingServer, place_index: int) -> None:
    # Seed feature data so rank queries exercise the full Algorithm 2
    # path (and the versioned ranking cache) instead of erroring out.
    for feature_index, feature in enumerate(FEATURES):
        server.database.table("feature_data").insert(
            {
                "place_id": f"place-{place_index}",
                "category": _place_category(spec, place_index),
                "feature": feature,
                "value": float(10.0 + 7.0 * place_index + 3.0 * feature_index),
                "computed_at": 0.0,
            }
        )


def _make_network(spec: LoadgenSpec, metrics: MetricsRegistry) -> Network:
    return Network(
        conditions=NetworkConditions(base_latency_s=0.0, jitter_s=0.0),
        rng=np.random.default_rng(spec.seed + 1),
        metrics=metrics,
    )


def _build_server(spec: LoadgenSpec, metrics: MetricsRegistry) -> SensingServer:
    network = _make_network(spec, metrics)
    concurrency = (
        ConcurrencyConfig(
            workers=spec.workers, queue_capacity=spec.queue_capacity
        )
        if spec.mode == "concurrent"
        else None
    )
    server = SensingServer(
        SERVER_HOST,
        network,
        ManualClock(0.0),  # simulated time: the period is [0, period_s]
        metrics=metrics,
        tracer=NullTracer(),
        # Generous: every keyed envelope of the run fits, so the FIFO
        # trim (a sort per insert) never runs inside the timed window.
        dedupe_capacity=3 * spec.phones + 64,
        concurrency=concurrency,
        io_delay_s=spec.io_delay_s,
    )
    for place_index in range(spec.places):
        server.create_application(_loadgen_application(spec, place_index))
        _seed_features(spec, server, place_index)
    return server


def _build_cluster(
    spec: LoadgenSpec, metrics: MetricsRegistry, base_dir: str
) -> ShardCluster:
    """A sharded deployment for the drivers to load through the router.

    Categories are pinned round-robin across the shards (directory
    placement), so the offered load splits evenly and the 1→N scaling
    the bench gates on measures shard capacity, not ring luck.
    """
    network = _make_network(spec, metrics)
    concurrency = (
        ConcurrencyConfig(
            workers=spec.workers, queue_capacity=spec.queue_capacity
        )
        if spec.mode == "concurrent"
        else None
    )
    cluster = ShardCluster(
        network,
        ManualClock(0.0),
        base_dir,
        num_shards=spec.shards,
        replicas_per_shard=spec.replicas,
        metrics=metrics,
        tracer=NullTracer(),
        concurrency=concurrency,
        replica_concurrency=concurrency,
        io_delay_s=spec.io_delay_s,
        replica_io_delay_s=spec.io_delay_s,
        fsync=False,
        router_client=ResilientClient(
            network,
            policy=RetryPolicy(
                max_attempts=8,
                base_backoff_s=0.001,
                max_backoff_s=0.02,
                deadline_s=60.0,
            ),
            breaker_policy=BreakerPolicy(
                failure_threshold=64, recovery_timeout_s=0.05
            ),
            rng=np.random.default_rng(spec.seed + 3),
            sleep=time.sleep,
            metrics=metrics,
            tracer=NullTracer(),
        ),
    )
    for place_index in range(spec.places):
        category_index = place_index % spec.categories
        primary = cluster.create_application(
            _loadgen_application(spec, place_index),
            pin_to=f"shard-{category_index % spec.shards}",
        )
        _seed_features(spec, primary, place_index)
    return cluster


class _Counts:
    """One driver thread's tallies, merged after the join.

    ``acked_schedules`` / ``acked_uploads`` record the task id of every
    positive reply the "phone" saw — the ground truth the shard chaos
    scenario audits against the surviving primaries' tables.
    """

    __slots__ = (
        "ok", "by_type", "sessions", "errors", "mismatches",
        "acked_schedules", "acked_uploads",
    )

    def __init__(self) -> None:
        self.ok = 0
        self.by_type: dict[str, int] = {}
        self.sessions = 0
        self.errors = 0
        self.mismatches = 0
        self.acked_schedules: list[str] = []
        self.acked_uploads: list[str] = []

    def count(self, kind: str, reply: Envelope) -> None:
        self.ok += 1
        self.by_type[kind] = self.by_type.get(kind, 0) + 1
        if reply.message_type is MessageType.ERROR:
            self.errors += 1


def _run_session(
    script: _PhoneScript,
    client: ResilientClient,
    counts: _Counts,
    spec: LoadgenSpec,
    host: str = SERVER_HOST,
) -> None:
    """Drive one phone's closed-loop session end to end."""

    def post(envelope: Envelope) -> Envelope:
        response = client.send(
            HttpRequest("POST", host, "/sor", envelope.to_bytes())
        )
        return Envelope.from_bytes(response.body)

    sender = f"phone-{script.index}"
    participate = Envelope(
        message_type=MessageType.PARTICIPATE,
        sender=sender,
        recipient=host,
        payload={
            "app_id": script.app_id,
            "user_id": script.user_id,
            "token": script.token,
            "budget": spec.budget,
            "latitude": script.location.latitude,
            "longitude": script.location.longitude,
            "departure_time": script.departure_time,
        },
    ).with_idempotency_key()
    schedule = post(participate)
    counts.count("participate", schedule)
    if schedule.message_type is not MessageType.SCHEDULE:
        return  # error reply already tallied; session abandoned
    task_id = schedule.payload["task_id"]
    counts.acked_schedules.append(task_id)
    if script.pull:
        # A schedule pull is a verbatim replay of the participate: the
        # idempotency layer must serve the *identical* stored reply.
        pulled = post(participate)
        counts.count("pull", pulled)
        if pulled.to_bytes() != schedule.to_bytes():
            counts.mismatches += 1
    upload = Envelope(
        message_type=MessageType.SENSED_DATA,
        sender=sender,
        recipient=host,
        payload={
            "task_id": task_id,
            "token": script.token,
            "status": "finished",
            "executed": script.executed,
            "readings": [script.index, script.executed],
        },
    ).with_idempotency_key()
    ack = post(upload)
    counts.count("upload", ack)
    if ack.message_type is not MessageType.ACK:
        return
    counts.acked_uploads.append(task_id)
    if script.rank_profile >= 0:
        rank = post(
            Envelope(
                message_type=MessageType.RANK_QUERY,
                sender=sender,
                recipient=host,
                payload={
                    "category": _place_category(
                        spec, script.index % spec.places
                    ),
                    "profiles": [PROFILES[script.rank_profile]],
                },
            )
        )
        counts.count("rank_query", rank)
        if rank.message_type is not MessageType.RANKING:
            return
    counts.sessions += 1


def run_loadgen(spec: LoadgenSpec) -> LoadgenReport:
    """Run one load generation pass and report counters + wall-clock."""
    metrics = MetricsRegistry()
    scripts = build_workload(spec)
    report = LoadgenReport(
        spec=spec, workload_digest=workload_digest(spec, scripts)
    )
    server: SensingServer | None = None
    cluster: ShardCluster | None = None
    tmp: tempfile.TemporaryDirectory | None = None
    if spec.shards > 1:
        tmp = tempfile.TemporaryDirectory(prefix="sor-loadgen-shards-")
        cluster = _build_cluster(spec, metrics, tmp.name)
        network = cluster.network
        target_host = cluster.router_host
        for script in scripts:
            cluster.register_user(
                script.user_id, script.user_id.title(), script.token
            )
        # Ship the seeded applications/features before taking traffic so
        # an early rank query never finds a replica without its category.
        cluster.sync_replicas()
        cluster.start_replication(0.01)
    else:
        server = _build_server(spec, metrics)
        network = server.network
        target_host = SERVER_HOST
        for script in scripts:
            server.register_user(
                script.user_id, script.user_id.title(), script.token
            )

    num_clients = spec.effective_clients
    clients = [
        ResilientClient(
            network,
            # Patient on purpose: a saturated admission queue rejects
            # most attempts, and the drivers must ride out the busy
            # wave rather than abandon the run.
            policy=RetryPolicy(
                max_attempts=64,
                base_backoff_s=0.002,
                max_backoff_s=0.05,
                deadline_s=600.0,
            ),
            breaker_policy=BreakerPolicy(
                failure_threshold=1_000_000, recovery_timeout_s=0.001
            ),
            rng=np.random.default_rng((spec.seed, 2, stream)),
            sleep=time.sleep,
            metrics=metrics,
            tracer=NullTracer(),
        )
        for stream in range(num_clients)
    ]
    all_counts = [_Counts() for _ in range(num_clients)]
    failures: list[BaseException] = []

    def drive(client_index: int) -> None:
        counts = all_counts[client_index]
        client = clients[client_index]
        try:
            for script in scripts[client_index::num_clients]:
                _run_session(script, client, counts, spec, host=target_host)
        except TransportError as exc:  # retries exhausted: report, don't hang
            failures.append(exc)

    started = time.perf_counter()
    if num_clients == 1:
        drive(0)
    else:
        threads = [
            threading.Thread(target=drive, args=(i,), name=f"lg-client-{i}")
            for i in range(num_clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    report.duration_s = max(time.perf_counter() - started, 1e-9)
    if cluster is not None:
        cluster.stop_replication()
        cluster.sync_replicas()  # drain replica lag before teardown
        cluster.close()
        assert tmp is not None
        tmp.cleanup()
    elif server is not None:
        server.close()

    if failures:
        raise TransportError(
            f"{len(failures)} driver thread(s) exhausted retries: {failures[0]}"
        )
    for counts in all_counts:
        report.requests_ok += counts.ok
        report.sessions_completed += counts.sessions
        report.error_replies += counts.errors
        report.replay_mismatches += counts.mismatches
        for kind, value in counts.by_type.items():
            report.requests_by_type[kind] = (
                report.requests_by_type.get(kind, 0) + value
            )
    report.requests_per_s = report.requests_ok / report.duration_s
    histogram = metrics.get("sor_server_request_seconds")
    if histogram is not None:
        report.p50_ms = 1000.0 * histogram.quantile(0.50)  # type: ignore[union-attr]
        report.p99_ms = 1000.0 * histogram.quantile(0.99)  # type: ignore[union-attr]
    busy = metrics.get("sor_server_busy_rejections_total")
    if busy is not None:
        report.busy_rejections = int(busy.value())  # type: ignore[union-attr]
    retries = metrics.get("sor_net_retries_total")
    if retries is not None:
        report.retries = int(retries.value(host=target_host))  # type: ignore[union-attr]
    return report


def run_comparison(spec: LoadgenSpec) -> tuple[LoadgenReport, LoadgenReport, float]:
    """Run ``spec`` concurrent and sequential; return both + the speedup.

    The speedup is sustained req/s concurrent over sequential. It only
    means something with ``io_delay_s > 0``: the pool's win is
    overlapping per-request I/O waits, which a zero-I/O workload does
    not have (the GIL serializes pure computation either way).
    """
    concurrent = run_loadgen(replace(spec, mode="concurrent"))
    sequential = run_loadgen(replace(spec, mode="sequential"))
    speedup = concurrent.requests_per_s / max(sequential.requests_per_s, 1e-9)
    return concurrent, sequential, speedup


def format_report(report: LoadgenReport) -> str:
    """The CLI's human-readable rendering of one run."""
    spec = report.spec
    by_type = ", ".join(
        f"{kind}={count}"
        for kind, count in sorted(report.requests_by_type.items())
    )
    lines = [
        f"loadgen — {spec.phones} phones, mode={spec.mode} "
        f"(clients={spec.effective_clients}, workers={spec.workers}, "
        f"queue={spec.queue_capacity}, io_delay={spec.io_delay_s * 1000:g}ms, "
        f"seed={spec.seed})",
        f"workload digest     : {report.workload_digest}",
        f"requests ok         : {report.requests_ok} ({by_type})",
        f"sessions completed  : {report.sessions_completed}/{spec.phones}",
        f"error replies       : {report.error_replies}"
        f" (replay mismatches {report.replay_mismatches})",
        f"busy rejections     : {report.busy_rejections}"
        f" (client retries {report.retries})",
        f"duration            : {report.duration_s:.3f}s",
        f"sustained rate      : {report.requests_per_s:,.0f} req/s",
        f"handler latency     : p50 {report.p50_ms:.3f}ms, "
        f"p99 {report.p99_ms:.3f}ms",
    ]
    return "\n".join(lines)
