"""User arrival models for the scheduling simulation (Section V-C).

The paper: "The arrival (leaving) times of mobile users were randomly
generated, following a uniform distribution between 0 (the corresponding
arrival time) and 10800 s" — i.e. arrival ~ U(0, T) and departure
~ U(arrival, T). :func:`poisson_arrivals` adds the standard alternative
(Poisson arrival process with exponential dwell times) for workload
sensitivity studies.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ValidationError
from repro.core.scheduling.problem import MobileUser


def uniform_arrivals(
    count: int,
    period_s: float,
    budget: int,
    rng: np.random.Generator,
    *,
    id_prefix: str = "user",
) -> list[MobileUser]:
    """Generate ``count`` users with the paper's uniform arrival model."""
    if count <= 0:
        raise ValidationError("count must be positive")
    if period_s <= 0:
        raise ValidationError("period_s must be positive")
    if budget < 0:
        raise ValidationError("budget must be non-negative")
    users = []
    for index in range(count):
        arrival = float(rng.uniform(0.0, period_s))
        departure = float(rng.uniform(arrival, period_s))
        users.append(
            MobileUser(
                user_id=f"{id_prefix}-{index}",
                arrival=arrival,
                departure=departure,
                budget=budget,
            )
        )
    return users


def fixed_count_arrivals(
    count: int,
    period_s: float,
    budget: int,
    rng: np.random.Generator,
    *,
    mean_dwell_s: float = 1800.0,
    id_prefix: str = "user",
) -> list[MobileUser]:
    """A Poisson arrival process conditioned on exactly ``count`` arrivals.

    Conditioned on N points in ``[0, period_s)`` a Poisson process is N
    sorted uniform draws, so this keeps :func:`poisson_arrivals`' shape
    (bursty inter-arrival gaps, exponential dwell clipped to the period)
    while letting callers — the load generator above all — fix the
    population size exactly instead of in expectation.
    """
    if count <= 0:
        raise ValidationError("count must be positive")
    if period_s <= 0:
        raise ValidationError("period_s must be positive")
    if budget < 0:
        raise ValidationError("budget must be non-negative")
    if mean_dwell_s <= 0:
        raise ValidationError("mean_dwell_s must be positive")
    arrivals = np.sort(rng.uniform(0.0, period_s, size=count))
    dwells = rng.exponential(mean_dwell_s, size=count)
    return [
        MobileUser(
            user_id=f"{id_prefix}-{index}",
            arrival=float(arrival),
            departure=float(min(period_s, arrival + dwell)),
            budget=budget,
        )
        for index, (arrival, dwell) in enumerate(zip(arrivals, dwells))
    ]


def poisson_arrivals(
    rate_per_hour: float,
    period_s: float,
    budget: int,
    rng: np.random.Generator,
    *,
    mean_dwell_s: float = 1800.0,
    id_prefix: str = "user",
) -> list[MobileUser]:
    """Poisson arrivals with exponential dwell times, clipped to the period.

    Models a venue where visitors trickle in at ``rate_per_hour`` and
    stay ``Exp(mean_dwell_s)``; useful for testing the scheduler under a
    non-uniform workload. The number of users returned is itself random.
    """
    if rate_per_hour <= 0:
        raise ValidationError("rate_per_hour must be positive")
    if period_s <= 0:
        raise ValidationError("period_s must be positive")
    if budget < 0:
        raise ValidationError("budget must be non-negative")
    if mean_dwell_s <= 0:
        raise ValidationError("mean_dwell_s must be positive")
    users = []
    t = 0.0
    index = 0
    rate_per_s = rate_per_hour / 3600.0
    while True:
        t += float(rng.exponential(1.0 / rate_per_s))
        if t >= period_s:
            break
        departure = min(period_s, t + float(rng.exponential(mean_dwell_s)))
        users.append(
            MobileUser(
                user_id=f"{id_prefix}-{index}",
                arrival=t,
                departure=departure,
                budget=budget,
            )
        )
        index += 1
    return users
