"""Ground-truth environment signal models.

A signal maps simulated time (seconds) to the true physical value a
perfect sensor would read. Providers add measurement noise on top; the
models here capture how the *world* varies: diurnal temperature cycles,
slowly wandering humidity, bursty crowd noise in a busy coffee shop.
"""

from __future__ import annotations

import math
from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from repro.common.errors import ValidationError


@runtime_checkable
class SignalModel(Protocol):
    """Anything that yields the true value of a quantity at time t."""

    def value(self, t: float) -> float:
        """The true value of the quantity at time ``t``."""
        ...


class ConstantSignal:
    """A constant quantity."""

    def __init__(self, level: float) -> None:
        self.level = float(level)

    def value(self, t: float) -> float:
        """The constant level, regardless of ``t``."""
        return self.level


class SinusoidSignal:
    """``offset + amplitude · sin(2πt/period + phase)``."""

    def __init__(
        self, offset: float, amplitude: float, period_s: float, phase: float = 0.0
    ) -> None:
        if period_s <= 0:
            raise ValidationError("period_s must be positive")
        self.offset = offset
        self.amplitude = amplitude
        self.period_s = period_s
        self.phase = phase

    def value(self, t: float) -> float:
        """The sinusoid evaluated at ``t``."""
        return self.offset + self.amplitude * math.sin(
            2.0 * math.pi * t / self.period_s + self.phase
        )


class DiurnalSignal:
    """A 24-hour cycle peaking at ``peak_hour`` (t = seconds since midnight)."""

    def __init__(self, mean: float, amplitude: float, peak_hour: float = 15.0) -> None:
        self.mean = mean
        self.amplitude = amplitude
        self.peak_hour = peak_hour

    def value(self, t: float) -> float:
        """The 24-hour cycle evaluated at ``t`` seconds since midnight."""
        hours = (t / 3600.0) % 24.0
        return self.mean + self.amplitude * math.cos(
            2.0 * math.pi * (hours - self.peak_hour) / 24.0
        )


class OrnsteinUhlenbeckSignal:
    """A mean-reverting random walk, precomputed on a regular grid.

    Models quantities that wander but stay near a level (humidity,
    Wi-Fi RSSI under interference). The path is generated once from the
    supplied generator so repeated evaluation is deterministic; values
    between grid points are linearly interpolated, before/after the grid
    clamped.
    """

    def __init__(
        self,
        mean: float,
        reversion_rate: float,
        volatility: float,
        rng: np.random.Generator,
        *,
        horizon_s: float = 86_400.0,
        step_s: float = 10.0,
        initial: float | None = None,
    ) -> None:
        if reversion_rate < 0 or volatility < 0:
            raise ValidationError("reversion_rate and volatility must be >= 0")
        if horizon_s <= 0 or step_s <= 0:
            raise ValidationError("horizon_s and step_s must be positive")
        self.mean = mean
        self.step_s = step_s
        steps = int(math.ceil(horizon_s / step_s)) + 1
        path = np.empty(steps)
        path[0] = mean if initial is None else initial
        noise_scale = volatility * math.sqrt(step_s)
        shocks = rng.normal(0.0, noise_scale, size=steps - 1)
        decay = math.exp(-reversion_rate * step_s)
        for index in range(1, steps):
            path[index] = mean + (path[index - 1] - mean) * decay + shocks[index - 1]
        self._path = path

    def value(self, t: float) -> float:
        """The precomputed OU path, linearly interpolated at ``t``."""
        position = t / self.step_s
        if position <= 0:
            return float(self._path[0])
        if position >= len(self._path) - 1:
            return float(self._path[-1])
        low = int(position)
        fraction = position - low
        return float(
            self._path[low] * (1.0 - fraction) + self._path[low + 1] * fraction
        )


class CrowdNoiseSignal:
    """Bursty background noise: a base level plus random busy episodes.

    Busy episodes start as a Poisson process and last an exponential
    time, raising the level by ``burst_gain``. Episode times are drawn
    once so the signal is a deterministic function of t afterwards.
    """

    def __init__(
        self,
        base_level: float,
        burst_gain: float,
        rng: np.random.Generator,
        *,
        bursts_per_hour: float = 6.0,
        mean_burst_s: float = 120.0,
        horizon_s: float = 86_400.0,
    ) -> None:
        if bursts_per_hour < 0 or mean_burst_s <= 0:
            raise ValidationError("invalid burst parameters")
        self.base_level = base_level
        self.burst_gain = burst_gain
        episodes: list[tuple[float, float]] = []
        t = 0.0
        rate_per_s = bursts_per_hour / 3600.0
        while t < horizon_s and rate_per_s > 0:
            t += float(rng.exponential(1.0 / rate_per_s))
            duration = float(rng.exponential(mean_burst_s))
            episodes.append((t, t + duration))
        self._episodes = episodes

    def value(self, t: float) -> float:
        """Base level plus the gain of episodes active at ``t``."""
        active = sum(1 for start, end in self._episodes if start <= t < end)
        return self.base_level + self.burst_gain * min(active, 3)


class CompositeSignal:
    """The sum of several signals (e.g. diurnal + OU wander)."""

    def __init__(self, components: Sequence[SignalModel]) -> None:
        if not components:
            raise ValidationError("composite needs at least one component")
        self.components = list(components)

    def value(self, t: float) -> float:
        """Sum of every component signal at ``t``."""
        return sum(component.value(t) for component in self.components)
