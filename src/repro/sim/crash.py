"""Crash-injection scenario: kill the sensing server mid-field-test.

The chaos harness (:mod:`repro.sim.chaos`) attacks the *network*; this
module attacks the *process*. A :class:`CrashInjector` kills the server
at seeded instants during the end-to-end field test — including at the
nastiest moments durability has to survive:

* ``plain`` — the process dies between requests,
* ``torn_tail`` — it dies inside ``write(2)``, leaving an uncommitted
  transaction and a half-written frame at the WAL tail,
* ``mid_checkpoint`` — it dies after writing the checkpoint temp file
  but before the atomic rename.

After each kill the server restarts from disk. The report counts the two
promises durability makes: every schedule and upload the phone received
an *acknowledgement* for survives recovery, and retried un-acked
envelopes are deduplicated by the durable idempotency table rather than
double-registering tasks or double-ingesting readings. Run the same
scenario with ``durability=False`` and the restarted server comes back
empty — the contrast asserted by
``tests/integration/test_crash_recovery.py`` and the CI ``crash-smoke``
job.
"""

from __future__ import annotations

from collections import Counter as TallyCounter
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.common.errors import SimulatedCrashError, ValidationError
from repro.db import DurabilityConfig, RecoveryReport
from repro.net import NetworkConditions
from repro.obs import MetricsRegistry, use_metrics
from repro.server.system import SORSystem
from repro.sim.scenarios import shop_feature_pipeline, syracuse_coffee_shops


@dataclass(frozen=True)
class CrashSpec:
    """One crash experiment: how often and how nastily the server dies."""

    kills: int = 2
    seed: int = 0
    durability: bool = True
    phones: int = 4
    budget: int = 5
    downtime_s: float = 30.0
    torn_tail_kill: bool = True
    mid_checkpoint_kill: bool = True
    request_drop: float = 0.0
    response_drop: float = 0.0
    checkpoint_every_records: int = 40

    def __post_init__(self) -> None:
        if self.kills < 1:
            raise ValidationError("need at least one kill")
        if self.phones < 1 or self.budget < 1:
            raise ValidationError("need at least one phone and a positive budget")
        if self.downtime_s <= 0:
            raise ValidationError("downtime must be positive")
        if not 0.0 <= self.request_drop <= 1.0:
            raise ValidationError("request_drop must be a probability")
        if not 0.0 <= self.response_drop <= 1.0:
            raise ValidationError("response_drop must be a probability")

    def kill_kinds(self) -> list[str]:
        """The kind of each scheduled kill, nastiest first."""
        kinds: list[str] = []
        if self.torn_tail_kill and self.durability:
            kinds.append("torn_tail")
        if self.mid_checkpoint_kill and self.durability:
            kinds.append("mid_checkpoint")
        while len(kinds) < self.kills:
            kinds.append("plain")
        return kinds[: self.kills]


@dataclass
class CrashReport:
    """What the kills did to acknowledged state, measured after recovery."""

    phones_deployed: int
    kills_executed: int
    acked_schedules: int
    acked_uploads: int
    lost_acked_schedules: int
    lost_acked_uploads: int
    duplicate_tasks: int
    duplicate_uploads: int
    records_replayed: int
    recovery_reports: list[RecoveryReport]
    metrics: MetricsRegistry = field(repr=False)

    @property
    def data_intact(self) -> bool:
        """No acknowledged write lost, nothing ingested twice."""
        return (
            self.lost_acked_schedules == 0
            and self.lost_acked_uploads == 0
            and self.duplicate_tasks == 0
            and self.duplicate_uploads == 0
        )


class CrashInjector:
    """Schedules seeded server kills and restarts inside a field test."""

    def __init__(self, system: SORSystem, *, downtime_s: float = 30.0) -> None:
        self.system = system
        self.downtime_s = downtime_s
        self.kills_executed = 0
        self.kill_log: list[tuple[float, str]] = []

    def schedule_kill(self, at_time: float, kind: str = "plain") -> None:
        """Arrange for the server to die at ``at_time`` (simulated)."""
        self.system.simulator.schedule_at(at_time, lambda: self._kill(kind))

    def _kill(self, kind: str) -> None:
        system = self.system
        manager = system.server.database.durability
        if manager is not None and not manager.closed:
            if kind == "torn_tail":
                # The on-disk wreckage of dying inside a commit: a
                # transaction with no commit marker, then half a frame.
                manager.simulate_partial_transaction(
                    [{"op": "insert", "table": "raw_data", "row": {"doomed": True}}]
                )
                manager.simulate_torn_append(
                    {"op": "insert", "table": "raw_data", "row": {"doomed": True}}
                )
            elif kind == "mid_checkpoint":
                manager.arm("checkpoint.pre_replace")
                try:
                    manager.checkpoint()
                except SimulatedCrashError:
                    pass
        system.kill_server()
        self.kills_executed += 1
        self.kill_log.append((system.simulator.now(), kind))
        system.simulator.schedule_at(
            system.simulator.now() + self.downtime_s, self._restart
        )

    def _restart(self) -> None:
        self.system.restart_server()


def run_crash_scenario(spec: CrashSpec, directory: str | Path) -> CrashReport:
    """Run one seeded field test with server kills per ``spec``.

    ``directory`` hosts the durable state (ignored when the spec turns
    durability off). The whole run executes against a fresh metrics
    registry, returned in the report.
    """
    registry = MetricsRegistry()
    with use_metrics(registry):
        durability = (
            DurabilityConfig(
                directory=Path(directory),
                checkpoint_every_records=spec.checkpoint_every_records,
            )
            if spec.durability
            else None
        )
        system = SORSystem(
            seed=spec.seed,
            network_conditions=NetworkConditions(
                drop_probability=spec.request_drop,
                response_drop_probability=spec.response_drop,
            ),
            resilient=True,
            durability=durability,
        )
        shop = syracuse_coffee_shops(np.random.default_rng(spec.seed))[0]
        system.deploy_place(shop, shop_feature_pipeline())
        for _ in range(spec.phones):
            system.deploy_phone(shop.place_id, budget=spec.budget)

        injector = CrashInjector(system, downtime_s=spec.downtime_s)
        span = system.end_time - system.start_time
        rng = np.random.default_rng(spec.seed + 1)
        # Kills land in the middle of the window, separated enough that
        # every restart completes well before the field test ends.
        fractions = np.linspace(0.3, 0.7, spec.kills)
        for fraction, kind in zip(fractions, spec.kill_kinds()):
            jitter = float(rng.uniform(-0.02, 0.02))
            at = system.start_time + (fraction + jitter) * span
            injector.schedule_kill(at, kind)
        system.run()
        # Post-run drain: give every phone one more tick so uploads that
        # failed during a downtime window are retried against the
        # recovered server.
        for deployed in system.phones:
            deployed.phone.tick()

        tasks = system.server.database.table("tasks").select()
        task_ids = {row["task_id"] for row in tasks}
        tasks_per_user = TallyCounter(row["user_id"] for row in tasks)
        raw_rows = system.server.database.table("raw_data").select()
        rows_per_task = TallyCounter(row["task_id"] for row in raw_rows)

        acked_schedule_ids = {
            deployed.task.task_id
            for deployed in system.phones
            if deployed.task is not None
        }
        acked_upload_ids: set[str] = set()
        for deployed in system.phones:
            acked_upload_ids.update(deployed.phone.acked_uploads)
        return CrashReport(
            phones_deployed=len(system.phones),
            kills_executed=injector.kills_executed,
            acked_schedules=len(acked_schedule_ids),
            acked_uploads=len(acked_upload_ids),
            lost_acked_schedules=len(acked_schedule_ids - task_ids),
            lost_acked_uploads=len(acked_upload_ids - set(rows_per_task)),
            duplicate_tasks=sum(count - 1 for count in tasks_per_user.values()),
            duplicate_uploads=sum(count - 1 for count in rows_per_task.values()),
            records_replayed=sum(
                report.records_replayed for report in system.recovery_reports
            ),
            recovery_reports=list(system.recovery_reports),
            metrics=registry,
        )
