"""WAL shipping: turn a primary's durability directory into a replication log.

The write-ahead log (:mod:`repro.db.wal`) already *is* a replication
log: an ordered stream of committed mutations with transaction markers,
checkpoints at segment boundaries, and a torn-tail discipline that makes
"acked" and "on disk" the same thing. This module reads that stream
incrementally so read-replicas can follow a primary without sharing its
:class:`~repro.db.database.Database` object:

* :class:`ReplicationCursor` — an immutable ``(segment seq, byte
  offset)`` bookmark into the primary's directory. Offsets always land
  on transaction boundaries because uncommitted tails are held back.
* :class:`WalShipper` — reads everything committed past a cursor and
  returns the records plus the advanced cursor. When the cursor's
  segment has been pruned by checkpoint compaction, the batch instead
  carries the newest checkpoint ``snapshot`` and the replica rebuilds
  from it (the normal bootstrap path for a replica joining late).
* :func:`apply_records` / :func:`bootstrap_database` — the replica-side
  apply loop, reusing the exact recovery replay code so a replica can
  never interpret a record differently than crash recovery would.

Shipping is pull-based and file-level: the shipper never touches the
primary's in-memory state, so it keeps working after the primary process
is "killed" (handles closed) — which is exactly what failover promotion
needs for its final catch-up read from the surviving directory.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.common.errors import DatabaseError, RecoveryError
from repro.db.database import Database
from repro.db.persistence import load_database
from repro.db.wal import (
    _apply_record,
    _resolve_transactions,
    _scan_directory,
    read_wal_file,
)
from repro.obs import MetricsRegistry


@dataclass(frozen=True)
class ReplicationCursor:
    """A bookmark into a primary's WAL: next byte to ship from.

    ``seq`` is the WAL segment sequence number, ``offset`` the byte
    position inside it. The initial cursor ``(1, 0)`` points at the
    beginning of history.
    """

    seq: int = 1
    offset: int = 0

    def __post_init__(self) -> None:
        if self.seq < 1:
            raise DatabaseError("replication cursor seq must be >= 1")
        if self.offset < 0:
            raise DatabaseError("replication cursor offset must be >= 0")


@dataclass
class ShippedBatch:
    """One pull's worth of replication: records and the advanced cursor.

    When ``snapshot`` is set the replica's history no longer reaches the
    cursor (segments were pruned); it must rebuild its database from the
    snapshot via :func:`bootstrap_database` *before* applying
    ``records``, which then continue from the snapshot's segment.
    """

    records: list[dict[str, Any]] = field(default_factory=list)
    cursor: ReplicationCursor = field(default_factory=ReplicationCursor)
    snapshot: dict[str, Any] | None = None

    def __len__(self) -> int:
        return len(self.records)


class WalShipper:
    """Incrementally reads committed WAL records from one primary directory."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)

    def pending(self, cursor: ReplicationCursor) -> int:
        """How many committed records are waiting past ``cursor`` (lag)."""
        return len(self.ship(cursor).records)

    def bootstrap(self) -> tuple[dict[str, Any] | None, ReplicationCursor]:
        """The newest checkpoint and the cursor to resume shipping from.

        The fast path for a replica joining an established primary —
        e.g. the replacement replica re-seeded after a failover: load
        the checkpoint via :func:`bootstrap_database` and ship only the
        records past it, instead of replaying history from segment 1
        (which may be pruned anyway). Returns ``(None, cursor-at-
        start-of-history)`` when the directory has no checkpoint yet.
        """
        if not self.directory.is_dir():
            return None, ReplicationCursor()
        checkpoints, _wals = _scan_directory(self.directory)
        if not checkpoints:
            return None, ReplicationCursor()
        seq = max(checkpoints)
        try:
            snapshot = json.loads(checkpoints[seq].read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise RecoveryError(
                f"{self.directory}: checkpoint {seq} unreadable: {exc!r}"
            ) from exc
        return snapshot, ReplicationCursor(seq=seq, offset=0)

    def ship(self, cursor: ReplicationCursor) -> ShippedBatch:
        """Everything committed past ``cursor``, plus where to resume.

        Uncommitted transaction tails in the live (final) segment are
        held back — they are not acked, so a replica must never see
        them. The returned cursor re-reads from the transaction's start
        next time in case its commit marker lands later.
        """
        if not self.directory.is_dir():
            return ShippedBatch(cursor=cursor)
        checkpoints, wals = _scan_directory(self.directory)
        if not wals:
            return ShippedBatch(cursor=cursor)
        max_seq = max(wals)

        batch = ShippedBatch(cursor=cursor)
        start_seq = cursor.seq
        if start_seq not in wals and start_seq <= max_seq:
            # The cursor's segment was pruned by checkpoint compaction:
            # bootstrap from the newest checkpoint at or before the tip.
            usable = [seq for seq in checkpoints if seq >= start_seq]
            if not usable:
                raise RecoveryError(
                    f"{self.directory}: WAL segment {start_seq} is gone and no "
                    "checkpoint covers it; replica cannot catch up"
                )
            snapshot_seq = max(usable)
            try:
                batch.snapshot = json.loads(
                    checkpoints[snapshot_seq].read_text(encoding="utf-8")
                )
            except (OSError, json.JSONDecodeError) as exc:
                raise RecoveryError(
                    f"{self.directory}: checkpoint {snapshot_seq} unreadable: "
                    f"{exc!r}"
                ) from exc
            cursor = ReplicationCursor(seq=snapshot_seq, offset=0)
            start_seq = snapshot_seq

        offset = cursor.offset
        final_cursor = cursor
        for seq in range(start_seq, max_seq + 1):
            path = wals.get(seq)
            if path is None:
                raise RecoveryError(
                    f"{self.directory}: missing WAL segment {seq} "
                    f"(have up to {max_seq})"
                )
            final = seq == max_seq
            try:
                entries, clean_bytes, torn = read_wal_file(path)
            except OSError as exc:
                # A segment can vanish between the scan and the read if
                # the primary checkpoints (prunes) concurrently; surface
                # a typed error so callers retry from a fresh scan.
                raise RecoveryError(f"{path.name}: unreadable: {exc!r}") from exc
            if torn and not final:
                raise RecoveryError(f"{path.name}: torn record in a non-final segment")
            if offset:
                entries = [entry for entry in entries if entry[1] >= offset]
            records, keep_bytes, _incomplete = _resolve_transactions(
                entries, clean_bytes, final_segment=final, path=path
            )
            batch.records.extend(records)
            if final:
                final_cursor = ReplicationCursor(seq=seq, offset=max(offset, keep_bytes))
            offset = 0
        batch.cursor = final_cursor
        return batch


def bootstrap_database(
    snapshot: dict[str, Any], *, metrics: MetricsRegistry | None = None
) -> Database:
    """Build a fresh replica database from a shipped checkpoint dump."""
    return load_database(snapshot, metrics=metrics)


def apply_records(
    database: Database, records: list[dict[str, Any]], *, source: str = "wal-ship"
) -> int:
    """Replay shipped records into a replica database; returns the count.

    Uses the recovery replay (:func:`repro.db.wal._apply_record`) so
    replicas and crash recovery can never diverge in interpretation.
    """
    label = Path(source)
    for record in records:
        _apply_record(database, record, label)
    return len(records)
