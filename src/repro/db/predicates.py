"""A small composable predicate algebra for WHERE clauses.

Predicates are callables over row dictionaries plus enough structure for
the table to recognize equality predicates it can serve from a hash
index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

RowPredicate = Callable[[dict[str, Any]], bool]


@dataclass(frozen=True)
class Predicate:
    """A named predicate over rows.

    ``index_hint`` is ``(column, value)`` when the predicate is a plain
    equality that a hash index can answer, otherwise ``None``.
    """

    description: str
    test: RowPredicate
    index_hint: tuple[str, Any] | None = None

    def __call__(self, row: dict[str, Any]) -> bool:
        return self.test(row)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Predicate({self.description})"


def _compare(column: str, op: str, value: Any, test: RowPredicate) -> Predicate:
    return Predicate(description=f"{column} {op} {value!r}", test=test)


def eq(column: str, value: Any) -> Predicate:
    """``column == value`` (indexable)."""
    return Predicate(
        description=f"{column} == {value!r}",
        test=lambda row: row.get(column) == value,
        index_hint=(column, value),
    )


def ne(column: str, value: Any) -> Predicate:
    """``column != value``."""
    return _compare(column, "!=", value, lambda row: row.get(column) != value)


def _ordered(column: str, op: str, value: Any, cmp: Callable[[Any, Any], bool]) -> Predicate:
    def test(row: dict[str, Any]) -> bool:
        current = row.get(column)
        return current is not None and cmp(current, value)

    return _compare(column, op, value, test)


def lt(column: str, value: Any) -> Predicate:
    """``column < value`` (NULLs never match)."""
    return _ordered(column, "<", value, lambda a, b: a < b)


def le(column: str, value: Any) -> Predicate:
    """``column <= value`` (NULLs never match)."""
    return _ordered(column, "<=", value, lambda a, b: a <= b)


def gt(column: str, value: Any) -> Predicate:
    """``column > value`` (NULLs never match)."""
    return _ordered(column, ">", value, lambda a, b: a > b)


def ge(column: str, value: Any) -> Predicate:
    """``column >= value`` (NULLs never match)."""
    return _ordered(column, ">=", value, lambda a, b: a >= b)


def between(column: str, low: Any, high: Any) -> Predicate:
    """``low <= column <= high`` (NULLs never match)."""

    def test(row: dict[str, Any]) -> bool:
        current = row.get(column)
        return current is not None and low <= current <= high

    return _compare(column, "between", (low, high), test)


def in_(column: str, values: Any) -> Predicate:
    """``column IN values``."""
    frozen = frozenset(values)
    return _compare(column, "in", sorted(map(repr, frozen)), lambda row: row.get(column) in frozen)


def is_null(column: str) -> Predicate:
    """``column IS NULL``."""
    return Predicate(
        description=f"{column} is null",
        test=lambda row: row.get(column) is None,
    )


def and_(*predicates: Predicate) -> Predicate:
    """Conjunction; inherits the first index hint among its children."""
    hint = next((p.index_hint for p in predicates if p.index_hint), None)
    return Predicate(
        description=" and ".join(f"({p.description})" for p in predicates),
        test=lambda row: all(p(row) for p in predicates),
        index_hint=hint,
    )


def or_(*predicates: Predicate) -> Predicate:
    """Disjunction (never indexable)."""
    return Predicate(
        description=" or ".join(f"({p.description})" for p in predicates),
        test=lambda row: any(p(row) for p in predicates),
    )


def not_(predicate: Predicate) -> Predicate:
    """Negation (never indexable)."""
    return Predicate(
        description=f"not ({predicate.description})",
        test=lambda row: not predicate(row),
    )
