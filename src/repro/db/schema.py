"""Table schemas: typed columns, primary keys, uniqueness."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.common.errors import DatabaseError, ValidationError
from repro.common.validation import require_non_empty


class ColumnType(enum.Enum):
    """Supported column types, mirroring the PostgreSQL types SOR uses."""

    INT = "int"
    REAL = "real"
    TEXT = "text"
    BOOL = "bool"
    BLOB = "blob"
    JSON = "json"

    def validate(self, value: Any) -> Any:
        """Coerce/validate ``value`` for this column type.

        Returns the (possibly coerced) value, or raises
        :class:`DatabaseError` if the value does not fit the type.
        """
        if value is None:
            return None
        if self is ColumnType.INT:
            if isinstance(value, bool) or not isinstance(value, int):
                raise DatabaseError(f"expected int, got {value!r}")
            return value
        if self is ColumnType.REAL:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise DatabaseError(f"expected real, got {value!r}")
            return float(value)
        if self is ColumnType.TEXT:
            if not isinstance(value, str):
                raise DatabaseError(f"expected text, got {value!r}")
            return value
        if self is ColumnType.BOOL:
            if not isinstance(value, bool):
                raise DatabaseError(f"expected bool, got {value!r}")
            return value
        if self is ColumnType.BLOB:
            if not isinstance(value, (bytes, bytearray)):
                raise DatabaseError(f"expected blob, got {value!r}")
            return bytes(value)
        if self is ColumnType.JSON:
            # Accept any JSON-compatible structure; stored by reference.
            if not isinstance(value, (dict, list, str, int, float, bool)):
                raise DatabaseError(f"expected JSON-compatible value, got {value!r}")
            return value
        raise DatabaseError(f"unknown column type {self!r}")  # pragma: no cover


@dataclass(frozen=True)
class Column:
    """A single typed column.

    ``auto_increment`` is only valid on an INT primary-key column; the
    table assigns 1, 2, 3, ... when the value is omitted on insert.
    """

    name: str
    type: ColumnType
    nullable: bool = True
    default: Any = None
    auto_increment: bool = False

    def __post_init__(self) -> None:
        require_non_empty(self.name, "column name")
        if self.auto_increment and self.type is not ColumnType.INT:
            raise ValidationError(
                f"auto_increment column {self.name!r} must be INT"
            )


@dataclass(frozen=True)
class Schema:
    """A table schema: ordered columns plus key constraints."""

    name: str
    columns: tuple[Column, ...]
    primary_key: str
    unique: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        require_non_empty(self.name, "table name")
        require_non_empty(self.columns, "columns")
        names = [column.name for column in self.columns]
        if len(set(names)) != len(names):
            raise ValidationError(f"duplicate column names in table {self.name!r}")
        if self.primary_key not in names:
            raise ValidationError(
                f"primary key {self.primary_key!r} is not a column of {self.name!r}"
            )
        for unique_column in self.unique:
            if unique_column not in names:
                raise ValidationError(
                    f"unique column {unique_column!r} is not a column of {self.name!r}"
                )
        pk_column = self.column(self.primary_key)
        if pk_column.nullable and not pk_column.auto_increment:
            raise ValidationError(
                f"primary key {self.primary_key!r} must be declared nullable=False "
                "(or auto_increment)"
            )

    def column(self, name: str) -> Column:
        """Return the column named ``name`` or raise :class:`DatabaseError`."""
        for column in self.columns:
            if column.name == name:
                return column
        raise DatabaseError(f"table {self.name!r} has no column {name!r}")

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(column.name for column in self.columns)

    def normalize_row(self, row: dict[str, Any]) -> dict[str, Any]:
        """Validate a row against this schema and fill in defaults.

        Auto-increment handling happens in the table (it needs the
        counter); here a missing auto-increment value passes through as
        ``None``.
        """
        unknown = set(row) - set(self.column_names)
        if unknown:
            raise DatabaseError(
                f"unknown columns {sorted(unknown)} for table {self.name!r}"
            )
        normalized: dict[str, Any] = {}
        for column in self.columns:
            if column.name in row:
                value = row[column.name]
            elif column.default is not None:
                value = column.default
            else:
                value = None
            value = column.type.validate(value)
            if value is None and not column.nullable and not column.auto_increment:
                raise DatabaseError(
                    f"column {column.name!r} of table {self.name!r} is NOT NULL"
                )
            normalized[column.name] = value
        return normalized
