"""A single table: row storage, key constraints and secondary indexes."""

from __future__ import annotations

import copy
from collections import defaultdict
from typing import Any, Callable, Iterable, Iterator

from repro.common.errors import DatabaseError
from repro.db.predicates import Predicate
from repro.db.schema import Schema


class Table:
    """Rows keyed by primary key, with hash indexes on selected columns.

    Rows are plain dictionaries. ``select`` returns deep copies so callers
    can never corrupt stored state by mutating results; ``insert`` copies
    on the way in for the same reason.
    """

    def __init__(
        self,
        schema: Schema,
        *,
        observer: Callable[[str], None] | None = None,
    ) -> None:
        self.schema = schema
        # Called with the operation name on every insert/select/update/
        # delete/count; the Database wires this to its metrics counter.
        self._observer = observer
        # Called with a mutation event dict after each successful write;
        # the Database wires this to the write-ahead log. None = no log.
        self.mutation_listener: Callable[[dict[str, Any]], None] | None = None
        # While a transaction is open the Database points this at its
        # undo journal; every write appends the entry that reverses it.
        # Rollback cost is therefore O(rows actually mutated), not
        # O(database size) — the property that lets the server run one
        # transaction per request under load.
        self._undo_journal: list[tuple["Table", str, Any]] | None = None
        self._rows: dict[Any, dict[str, Any]] = {}
        self._indexes: dict[str, dict[Any, set[Any]]] = {}
        self._unique_values: dict[str, dict[Any, Any]] = {
            column: {} for column in schema.unique
        }
        self._auto_counter = 0

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.schema.name

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self.select())

    @property
    def indexed_columns(self) -> tuple[str, ...]:
        return tuple(self._indexes)

    # ------------------------------------------------------------------
    # indexes
    # ------------------------------------------------------------------
    def create_index(self, column: str) -> None:
        """Create a hash index on ``column`` (idempotent)."""
        self.schema.column(column)  # validates existence
        if column in self._indexes:
            return
        index: dict[Any, set[Any]] = defaultdict(set)
        for pk, row in self._rows.items():
            index[row[column]].add(pk)
        self._indexes[column] = index
        if self._undo_journal is not None:
            self._undo_journal.append((self, "create_index", column))
        if self.mutation_listener is not None:
            self.mutation_listener(
                {"op": "create_index", "table": self.name, "column": column}
            )

    def _index_add(self, row: dict[str, Any]) -> None:
        pk = row[self.schema.primary_key]
        for column, index in self._indexes.items():
            index.setdefault(row[column], set()).add(pk)

    def _index_remove(self, row: dict[str, Any]) -> None:
        pk = row[self.schema.primary_key]
        for column, index in self._indexes.items():
            bucket = index.get(row[column])
            if bucket is not None:
                bucket.discard(pk)
                if not bucket:
                    del index[row[column]]

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def insert(self, row: dict[str, Any]) -> Any:
        """Insert a row; returns the primary key (assigned if auto)."""
        if self._observer is not None:
            self._observer("insert")
        normalized = self.schema.normalize_row(dict(row))
        pk_name = self.schema.primary_key
        pk_column = self.schema.column(pk_name)
        if normalized[pk_name] is None:
            if not pk_column.auto_increment:
                raise DatabaseError(
                    f"primary key {pk_name!r} missing on insert into {self.name!r}"
                )
            self._auto_counter += 1
            normalized[pk_name] = self._auto_counter
        elif pk_column.auto_increment:
            self._auto_counter = max(self._auto_counter, normalized[pk_name])
        pk = normalized[pk_name]
        if pk in self._rows:
            raise DatabaseError(
                f"duplicate primary key {pk!r} in table {self.name!r}"
            )
        for column, seen in self._unique_values.items():
            value = normalized[column]
            if value is not None and value in seen:
                raise DatabaseError(
                    f"unique constraint violated on {self.name}.{column} = {value!r}"
                )
        stored = copy.deepcopy(normalized)
        self._rows[pk] = stored
        self._index_add(stored)
        for column, seen in self._unique_values.items():
            if stored[column] is not None:
                seen[stored[column]] = pk
        if self._undo_journal is not None:
            self._undo_journal.append((self, "insert", pk))
        if self.mutation_listener is not None:
            self.mutation_listener(
                {"op": "insert", "table": self.name, "row": stored}
            )
        return pk

    def insert_many(self, rows: Iterable[dict[str, Any]]) -> list[Any]:
        """Insert several rows; returns their primary keys."""
        return [self.insert(row) for row in rows]

    def update(self, where: Predicate, changes: dict[str, Any]) -> int:
        """Update matching rows in place; returns the number updated."""
        if self._observer is not None:
            self._observer("update")
        if self.schema.primary_key in changes:
            raise DatabaseError("updating the primary key is not supported")
        for column in changes:
            self.schema.column(column)
        updated = 0
        for pk in [r[self.schema.primary_key] for r in self._match(where)]:
            old = self._rows[pk]
            candidate = dict(old)
            candidate.update(changes)
            normalized = self.schema.normalize_row(candidate)
            for column, seen in self._unique_values.items():
                value = normalized[column]
                if value is not None and seen.get(value, pk) != pk:
                    raise DatabaseError(
                        f"unique constraint violated on {self.name}.{column} = {value!r}"
                    )
            self._index_remove(old)
            for column, seen in self._unique_values.items():
                if old[column] is not None:
                    seen.pop(old[column], None)
            stored = copy.deepcopy(normalized)
            self._rows[pk] = stored
            self._index_add(stored)
            for column, seen in self._unique_values.items():
                if stored[column] is not None:
                    seen[stored[column]] = pk
            if self._undo_journal is not None:
                # Stored row dicts are only ever replaced, never mutated
                # in place, so keeping the old reference is safe.
                self._undo_journal.append((self, "update", (pk, old)))
            if self.mutation_listener is not None:
                self.mutation_listener(
                    {"op": "update", "table": self.name, "pk": pk, "row": stored}
                )
            updated += 1
        return updated

    def delete(self, where: Predicate) -> int:
        """Delete matching rows; returns the number deleted."""
        if self._observer is not None:
            self._observer("delete")
        victims = [row[self.schema.primary_key] for row in self._match(where)]
        for pk in victims:
            row = self._rows.pop(pk)
            self._index_remove(row)
            for column, seen in self._unique_values.items():
                if row[column] is not None:
                    seen.pop(row[column], None)
            if self._undo_journal is not None:
                self._undo_journal.append((self, "delete", row))
            if self.mutation_listener is not None:
                self.mutation_listener(
                    {"op": "delete", "table": self.name, "pk": pk}
                )
        return len(victims)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def _match(self, where: Predicate | None) -> list[dict[str, Any]]:
        """Return references to matching stored rows (internal use)."""
        if where is None:
            return list(self._rows.values())
        if where.index_hint is not None:
            column, value = where.index_hint
            if column == self.schema.primary_key:
                row = self._rows.get(value)
                candidates: list[dict[str, Any]] = [row] if row is not None else []
                return [row for row in candidates if where(row)]
            if column in self._indexes:
                pks = self._indexes[column].get(value, set())
                return [row for pk in pks if where(row := self._rows[pk])]
        return [row for row in self._rows.values() if where(row)]

    def select(
        self,
        where: Predicate | None = None,
        *,
        order_by: str | None = None,
        descending: bool = False,
        limit: int | None = None,
    ) -> list[dict[str, Any]]:
        """Return deep copies of matching rows."""
        if self._observer is not None:
            self._observer("select")
        rows = self._match(where)
        if order_by is not None:
            self.schema.column(order_by)
            # NULLs sort last regardless of direction, like PostgreSQL's
            # default for ascending order.
            rows.sort(
                key=lambda row: (row[order_by] is None, row[order_by]),
            )
            if descending:
                non_null = [row for row in rows if row[order_by] is not None]
                null = [row for row in rows if row[order_by] is None]
                rows = list(reversed(non_null)) + null
        if limit is not None:
            rows = rows[: max(0, limit)]
        return copy.deepcopy(rows)

    def get(self, pk: Any) -> dict[str, Any] | None:
        """Return a copy of the row with primary key ``pk``, or ``None``."""
        row = self._rows.get(pk)
        return copy.deepcopy(row) if row is not None else None

    def count(self, where: Predicate | None = None) -> int:
        """Count matching rows without copying them."""
        if self._observer is not None:
            self._observer("count")
        return len(self._match(where))

    # ------------------------------------------------------------------
    # undo (used by transaction rollback)
    # ------------------------------------------------------------------
    def _undo(self, op: str, data: Any) -> None:
        """Reverse one journalled write (no observer, listener or journal).

        Entries are applied newest-first by the transaction's rollback,
        so each reversal sees exactly the state its forward operation
        produced.
        """
        if op == "insert":
            row = self._rows.pop(data)
            self._index_remove(row)
            for column, seen in self._unique_values.items():
                if row[column] is not None:
                    seen.pop(row[column], None)
        elif op == "update":
            pk, old = data
            current = self._rows[pk]
            self._index_remove(current)
            for column, seen in self._unique_values.items():
                if current[column] is not None:
                    seen.pop(current[column], None)
            self._rows[pk] = old
            self._index_add(old)
            for column, seen in self._unique_values.items():
                if old[column] is not None:
                    seen[old[column]] = pk
        elif op == "delete":
            row = data
            pk = row[self.schema.primary_key]
            self._rows[pk] = row
            self._index_add(row)
            for column, seen in self._unique_values.items():
                if row[column] is not None:
                    seen[row[column]] = pk
        elif op == "create_index":
            self._indexes.pop(data, None)
        else:  # pragma: no cover - journal entries come from this module
            raise DatabaseError(f"unknown undo op {op!r}")

    # ------------------------------------------------------------------
    # snapshots (used by persistence dumps)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """Capture full table state for transaction rollback."""
        return {
            "rows": copy.deepcopy(self._rows),
            "auto_counter": self._auto_counter,
            "indexed": tuple(self._indexes),
            "unique": copy.deepcopy(self._unique_values),
        }

    def restore(self, snapshot: dict[str, Any]) -> None:
        """Restore state captured by :meth:`snapshot`.

        A rollback must leave no WAL trace, so the mutation listener is
        suppressed while indexes are rebuilt.
        """
        listener = self.mutation_listener
        self.mutation_listener = None
        try:
            self._rows = copy.deepcopy(snapshot["rows"])
            self._auto_counter = snapshot["auto_counter"]
            self._unique_values = copy.deepcopy(snapshot["unique"])
            self._indexes = {}
            for column in snapshot["indexed"]:
                self.create_index(column)
        finally:
            self.mutation_listener = listener
