"""The database object: named tables plus snapshot transactions."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator

from repro.common.errors import DatabaseError
from repro.db.schema import Schema
from repro.db.table import Table
from repro.obs import MetricsRegistry, get_metrics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.db.wal import DurabilityManager


class Transaction:
    """An undo-logged transaction over the whole database.

    Used as a context manager::

        with db.transaction():
            db.table("users").insert({...})
            db.table("tasks").insert({...})

    If the block raises, every write is reversed (newest first) from a
    per-mutation undo journal, so both entering a transaction and
    rolling one back cost O(rows actually touched) — not O(database
    size), which is what lets the concurrent server open one transaction
    per request while holding millions of rows. Tables created inside
    the block are dropped on rollback and tables dropped inside it are
    restored. Transactions do not nest (the sensing server never needs
    it, and PostgreSQL's savepoints are out of scope).

    With durability attached, the transaction's mutations hit the
    write-ahead log as one atomic batch when the block exits cleanly; a
    rolled-back transaction leaves no WAL trace. If the WAL append itself
    fails, the in-memory state is rolled back too, so memory never runs
    ahead of disk.
    """

    def __init__(self, database: "Database") -> None:
        self._database = database
        self._journal: list[tuple[Table, str, Any]] | None = None
        self._tables_before: dict[str, Table] = {}
        self._auto_counters: dict[int, int] = {}

    def __enter__(self) -> "Transaction":
        if self._database._active_transaction is not None:
            raise DatabaseError("transactions do not nest")
        self._journal = []
        self._tables_before = dict(self._database._tables)
        self._auto_counters = {
            id(table): table._auto_counter
            for table in self._tables_before.values()
        }
        for table in self._tables_before.values():
            table._undo_journal = self._journal
        self._database._active_transaction = self
        return self

    def _attach(self, table: Table) -> None:
        """Journal writes of a table created inside this transaction.

        Its entries are skipped on rollback (the whole table is dropped)
        but the journal hook must still be set in case the same name is
        later re-used after a drop.
        """
        table._undo_journal = self._journal

    def _roll_back(self) -> None:
        assert self._journal is not None
        before_ids = {id(table) for table in self._tables_before.values()}
        for table, op, data in reversed(self._journal):
            # Writes to tables born in this transaction need no undo:
            # restoring the pre-transaction table registry discards them.
            if id(table) in before_ids:
                table._undo(op, data)
        for table in self._tables_before.values():
            table._auto_counter = self._auto_counters[id(table)]
        self._database._tables = dict(self._tables_before)

    def _detach_journals(self) -> None:
        for table in self._tables_before.values():
            table._undo_journal = None
        for table in self._database._tables.values():
            table._undo_journal = None

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        assert self._journal is not None
        self._database._active_transaction = None
        pending = self._database._pending
        self._database._pending = []
        try:
            if exc_type is not None:
                self._roll_back()
            elif pending and self._database._durability is not None:
                try:
                    self._database._durability.commit(pending, transactional=True)
                except BaseException:
                    self._roll_back()
                    raise
        finally:
            self._detach_journals()
            self._journal = None
        return False  # never swallow the exception


class Database:
    """A collection of named tables with DDL and transactions."""

    def __init__(
        self, name: str = "sor", *, metrics: MetricsRegistry | None = None
    ) -> None:
        self.name = name
        self._tables: dict[str, Table] = {}
        self._active_transaction: Transaction | None = None
        self._durability: "DurabilityManager | None" = None
        self._pending: list[dict[str, Any]] = []
        self.metrics = metrics if metrics is not None else get_metrics()
        self._operations = self.metrics.counter(
            "sor_db_operations_total",
            "table operations executed (insert/select/update/delete/count)",
            labels=("db", "table", "op"),
        )

    def _make_observer(self, table_name: str):
        """A per-table operation callback with cached counter children."""
        children: dict[str, Any] = {}
        counter = self._operations
        db_name = self.name

        def observe(op: str) -> None:
            child = children.get(op)
            if child is None:
                child = counter.labels(db=db_name, table=table_name, op=op)
                children[op] = child
            child.inc()

        return observe

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------
    @property
    def durability(self) -> "DurabilityManager | None":
        return self._durability

    def attach_durability(self, manager: "DurabilityManager") -> None:
        """Route every committed mutation through ``manager``.

        Attach happens *after* recovery has replayed the on-disk state,
        so the replay itself is never re-logged.
        """
        if self._durability is not None:
            raise DatabaseError(
                f"database {self.name!r} already has durability attached"
            )
        self._durability = manager
        for table in self._tables.values():
            table.mutation_listener = self._on_mutation

    def _encode_event(self, event: dict[str, Any]) -> dict[str, Any]:
        # Local import: persistence imports Database for dump/load.
        from repro.db import persistence

        op = event["op"]
        if op in ("insert", "update"):
            schema = self._tables[event["table"]].schema
            record = {
                "op": op,
                "table": event["table"],
                "row": persistence.encode_row(schema, event["row"]),
            }
            if op == "update":
                record["pk"] = record["row"][schema.primary_key]
            return record
        if op == "delete":
            schema = self._tables[event["table"]].schema
            pk_column = schema.column(schema.primary_key)
            return {
                "op": "delete",
                "table": event["table"],
                "pk": persistence.encode_cell(pk_column, event["pk"]),
            }
        return dict(event)

    def _on_mutation(self, event: dict[str, Any]) -> None:
        if self._durability is None:
            return
        record = self._encode_event(event)
        if self._active_transaction is not None:
            self._pending.append(record)
        else:
            self._durability.commit([record])

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------
    def create_table(self, schema: Schema) -> Table:
        """Create a table from ``schema``; errors if the name is taken."""
        if schema.name in self._tables:
            raise DatabaseError(f"table {schema.name!r} already exists")
        table = Table(schema, observer=self._make_observer(schema.name))
        self._tables[schema.name] = table
        if self._active_transaction is not None:
            self._active_transaction._attach(table)
        if self._durability is not None:
            table.mutation_listener = self._on_mutation
            from repro.db import persistence

            self._on_mutation(
                {"op": "create_table", "schema": persistence.schema_to_dict(schema)}
            )
        return table

    def drop_table(self, name: str) -> None:
        """Drop the table named ``name``; errors if it does not exist."""
        if name not in self._tables:
            raise DatabaseError(f"no such table {name!r}")
        del self._tables[name]
        self._on_mutation({"op": "drop_table", "table": name})

    def table(self, name: str) -> Table:
        """Return the table named ``name``; errors if it does not exist."""
        try:
            return self._tables[name]
        except KeyError:
            raise DatabaseError(f"no such table {name!r}") from None

    def has_table(self, name: str) -> bool:
        """Whether a table named ``name`` exists."""
        return name in self._tables

    def table_names(self) -> list[str]:
        """Sorted names of all tables."""
        return sorted(self._tables)

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def transaction(self) -> Transaction:
        """Begin a snapshot transaction (use as a context manager)."""
        return Transaction(self)
