"""The database object: named tables plus snapshot transactions."""

from __future__ import annotations

from typing import Any, Iterator

from repro.common.errors import DatabaseError
from repro.db.schema import Schema
from repro.db.table import Table
from repro.obs import MetricsRegistry, get_metrics


class Transaction:
    """A snapshot transaction over the whole database.

    Used as a context manager::

        with db.transaction():
            db.table("users").insert({...})
            db.table("tasks").insert({...})

    If the block raises, every table is restored to its pre-transaction
    state. Transactions do not nest (the sensing server never needs it,
    and PostgreSQL's savepoints are out of scope).
    """

    def __init__(self, database: "Database") -> None:
        self._database = database
        self._snapshots: dict[str, dict[str, Any]] | None = None

    def __enter__(self) -> "Transaction":
        if self._database._active_transaction is not None:
            raise DatabaseError("transactions do not nest")
        self._snapshots = {
            name: table.snapshot() for name, table in self._database._tables.items()
        }
        self._database._active_transaction = self
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        assert self._snapshots is not None
        self._database._active_transaction = None
        if exc_type is not None:
            for name, snapshot in self._snapshots.items():
                self._database._tables[name].restore(snapshot)
            # Tables created during the failed transaction are dropped.
            created = set(self._database._tables) - set(self._snapshots)
            for name in created:
                del self._database._tables[name]
        self._snapshots = None
        return False  # never swallow the exception


class Database:
    """A collection of named tables with DDL and transactions."""

    def __init__(
        self, name: str = "sor", *, metrics: MetricsRegistry | None = None
    ) -> None:
        self.name = name
        self._tables: dict[str, Table] = {}
        self._active_transaction: Transaction | None = None
        self.metrics = metrics if metrics is not None else get_metrics()
        self._operations = self.metrics.counter(
            "sor_db_operations_total",
            "table operations executed (insert/select/update/delete/count)",
            labels=("db", "table", "op"),
        )

    def _make_observer(self, table_name: str):
        """A per-table operation callback with cached counter children."""
        children: dict[str, Any] = {}
        counter = self._operations
        db_name = self.name

        def observe(op: str) -> None:
            child = children.get(op)
            if child is None:
                child = counter.labels(db=db_name, table=table_name, op=op)
                children[op] = child
            child.inc()

        return observe

    def create_table(self, schema: Schema) -> Table:
        """Create a table from ``schema``; errors if the name is taken."""
        if schema.name in self._tables:
            raise DatabaseError(f"table {schema.name!r} already exists")
        table = Table(schema, observer=self._make_observer(schema.name))
        self._tables[schema.name] = table
        return table

    def drop_table(self, name: str) -> None:
        """Drop the table named ``name``; errors if it does not exist."""
        if name not in self._tables:
            raise DatabaseError(f"no such table {name!r}")
        del self._tables[name]

    def table(self, name: str) -> Table:
        """Return the table named ``name``; errors if it does not exist."""
        try:
            return self._tables[name]
        except KeyError:
            raise DatabaseError(f"no such table {name!r}") from None

    def has_table(self, name: str) -> bool:
        """Whether a table named ``name`` exists."""
        return name in self._tables

    def table_names(self) -> list[str]:
        """Sorted names of all tables."""
        return sorted(self._tables)

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def transaction(self) -> Transaction:
        """Begin a snapshot transaction (use as a context manager)."""
        return Transaction(self)
