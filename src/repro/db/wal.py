"""Write-ahead logging, checkpoints and crash recovery.

The real SOR deployment gets durability from PostgreSQL; this module
gives the in-memory :class:`~repro.db.database.Database` the same
guarantee: once a mutation is acknowledged it survives a process kill at
any instant.

Layout of a durability directory::

    wal-00000001.log          append-only mutation log, segment 1
    checkpoint-00000005.json  full dump taken at the *start* of segment 5
    wal-00000005.log          mutations after that checkpoint
    ...

Each WAL record is a JSON object framed as ``<u32 length><u32 crc32>``
followed by the payload. Sequence numbers tie checkpoints and segments
together: checkpoint ``G`` is the database state at the start of
``wal-G``, so recovery loads the newest *valid* checkpoint and replays
every segment with an equal or higher sequence number, in order. A
corrupted checkpoint degrades to the previous one (segments are retained
back to the oldest kept checkpoint); a torn final record — the signature
of a crash mid-append — is truncated away, as is the tail of a
transaction whose commit marker never made it to disk.

Checkpoints are written with the same temp-file + fsync + ``os.replace``
dance as :func:`repro.db.persistence.save_database`, so a crash during
compaction can never destroy the previous checkpoint.

The :class:`DurabilityManager` also carries one-shot crash hooks
(:meth:`~DurabilityManager.arm`) used by :mod:`repro.sim.crash` to kill
the process at the nastiest possible instants — mid-batch, pre-fsync,
between the checkpoint temp write and its rename.

:func:`attach_durability` is the inverse of recovery: it takes a
database that is already populated *in memory* (a promoted read-replica
rebuilt from shipped WAL records) and makes it durable in place — the
current state becomes a fresh checkpoint, the next WAL generation opens,
and commits resume. The directory may already hold the dead
predecessor's generations; the inherited final segment is sanitized
(torn frames and uncommitted transaction tails physically truncated,
exactly as recovery would) so a later recovery or replication pass can
replay straight across the generation boundary.
"""

from __future__ import annotations

import json
import os
import struct
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, BinaryIO, Callable

from repro.common.errors import DatabaseError, RecoveryError, SimulatedCrashError
from repro.db.database import Database
from repro.db.persistence import (
    decode_cell,
    decode_row,
    dump_database,
    fsync_directory,
    load_database,
    schema_from_dict,
)
from repro.db.predicates import eq
from repro.obs import MetricsRegistry

_FRAME_HEADER = struct.Struct("<II")  # payload length, crc32(payload)

_CHECKPOINT_PATTERN = "checkpoint-{seq:08d}.json"
_WAL_PATTERN = "wal-{seq:08d}.log"

# Histogram buckets for recovery time: sub-millisecond empty boots up to
# multi-second replays of long campaigns.
_RECOVERY_BUCKETS = (0.001, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0)


@dataclass(frozen=True)
class DurabilityConfig:
    """How a durable database writes to disk.

    ``checkpoint_every_records=0`` disables automatic compaction —
    checkpoints then only happen via an explicit
    :meth:`DurabilityManager.checkpoint` call.
    """

    directory: str | Path
    fsync: bool = True
    checkpoint_every_records: int = 0
    keep_checkpoints: int = 2

    def __post_init__(self) -> None:
        if self.checkpoint_every_records < 0:
            raise DatabaseError("checkpoint_every_records must be >= 0")
        if self.keep_checkpoints < 1:
            raise DatabaseError("keep_checkpoints must be >= 1")


@dataclass
class RecoveryReport:
    """What :func:`open_durable_database` found and did on boot."""

    checkpoint_seq: int = 0
    corrupt_checkpoints_skipped: int = 0
    wal_files_replayed: int = 0
    records_replayed: int = 0
    torn_tail_bytes_discarded: int = 0
    incomplete_transactions_discarded: int = 0
    duration_s: float = 0.0

    @property
    def clean_boot(self) -> bool:
        """True when nothing on disk was corrupt, torn or discarded."""
        return (
            self.corrupt_checkpoints_skipped == 0
            and self.torn_tail_bytes_discarded == 0
            and self.incomplete_transactions_discarded == 0
        )


def _encode_frame(record: dict[str, Any]) -> bytes:
    payload = json.dumps(record, separators=(",", ":"), sort_keys=True).encode(
        "utf-8"
    )
    return _FRAME_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


class WalWriter:
    """Appends framed records to one WAL segment file.

    The handle is opened unbuffered, so every :meth:`append` reaches the
    OS immediately — a simulated kill (closing the handle) can never lose
    a write that this class reported as done. ``fsync`` additionally
    flushes the OS cache for real-power-loss durability.
    """

    def __init__(self, path: str | Path, *, fsync: bool = True) -> None:
        self.path = Path(path)
        self._fsync = fsync
        self._handle: BinaryIO = open(self.path, "ab", buffering=0)

    def append(self, record: dict[str, Any]) -> int:
        """Write one framed record; returns the bytes appended."""
        frame = _encode_frame(record)
        self._handle.write(frame)
        return len(frame)

    def append_torn(self, record: dict[str, Any], keep: float = 0.5) -> int:
        """Write a deliberately truncated frame (crash simulation only)."""
        frame = _encode_frame(record)
        cut = min(len(frame) - 1, max(1, int(len(frame) * keep)))
        self._handle.write(frame[:cut])
        return cut

    def sync(self) -> None:
        """Flush the OS cache for this segment (no-op with fsync off)."""
        if self._fsync:
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        """Close the segment handle (idempotent)."""
        if not self._handle.closed:
            self._handle.close()


def read_wal_file(
    path: str | Path,
) -> tuple[list[tuple[dict[str, Any], int, int]], int, bool]:
    """Parse a WAL segment.

    Returns ``(entries, clean_bytes, torn)`` where each entry is
    ``(record, start_offset, end_offset)``, ``clean_bytes`` is the length
    of the valid prefix, and ``torn`` reports whether trailing garbage
    (short frame, CRC mismatch, bad JSON) was found after it.
    """
    data = Path(path).read_bytes()
    entries: list[tuple[dict[str, Any], int, int]] = []
    offset = 0
    while offset + _FRAME_HEADER.size <= len(data):
        length, crc = _FRAME_HEADER.unpack_from(data, offset)
        start = offset + _FRAME_HEADER.size
        end = start + length
        if end > len(data):
            break
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            break
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            break
        if not isinstance(record, dict):
            break
        entries.append((record, offset, end))
        offset = end
    return entries, offset, offset < len(data)


def _resolve_transactions(
    entries: list[tuple[dict[str, Any], int, int]],
    clean_bytes: int,
    *,
    final_segment: bool,
    path: Path,
) -> tuple[list[dict[str, Any]], int, int]:
    """Flatten begin/commit markers into an applicable record stream.

    Returns ``(records, keep_bytes, incomplete_discarded)``. Records of a
    transaction whose commit marker is missing at the tail of the *final*
    segment are dropped and ``keep_bytes`` moves back to where the
    transaction began; the same situation anywhere else is corruption.
    """
    applied: list[dict[str, Any]] = []
    open_txn: list[dict[str, Any]] | None = None
    txn_start = clean_bytes
    for record, start, _end in entries:
        op = record.get("op")
        if op == "begin":
            if open_txn is not None:
                raise RecoveryError(f"{path.name}: nested begin marker at byte {start}")
            open_txn = []
            txn_start = start
        elif op == "commit":
            if open_txn is None:
                raise RecoveryError(
                    f"{path.name}: commit marker without begin at byte {start}"
                )
            applied.extend(open_txn)
            open_txn = None
        elif open_txn is not None:
            open_txn.append(record)
        else:
            applied.append(record)
    if open_txn is None:
        return applied, clean_bytes, 0
    if not final_segment:
        raise RecoveryError(
            f"{path.name}: transaction without commit marker in a non-final segment"
        )
    return applied, txn_start, 1


def _apply_record(database: Database, record: dict[str, Any], path: Path) -> None:
    try:
        op = record["op"]
        if op == "create_table":
            database.create_table(schema_from_dict(record["schema"]))
        elif op == "drop_table":
            database.drop_table(record["table"])
        elif op == "create_index":
            database.table(record["table"]).create_index(record["column"])
        elif op == "insert":
            table = database.table(record["table"])
            table.insert(decode_row(table.schema, record["row"]))
        elif op == "update":
            table = database.table(record["table"])
            row = decode_row(table.schema, record["row"])
            pk_name = table.schema.primary_key
            pk = row.pop(pk_name)
            table.update(eq(pk_name, pk), row)
        elif op == "delete":
            table = database.table(record["table"])
            pk_name = table.schema.primary_key
            pk = decode_cell(table.schema.column(pk_name), record["pk"])
            table.delete(eq(pk_name, pk))
        else:
            raise RecoveryError(f"{path.name}: unknown WAL op {op!r}")
    except RecoveryError:
        raise
    except (DatabaseError, KeyError, TypeError, ValueError) as exc:
        raise RecoveryError(
            f"{path.name}: cannot replay {record.get('op')!r} record: {exc!r}"
        ) from exc


def _sanitize_segment_tail(path: Path) -> int:
    """Truncate a segment to its committed prefix; returns bytes removed.

    Applies the exact keep-bytes rule recovery uses for a *final*
    segment — torn frames and transactions whose commit marker never
    landed are cut off. Re-attach runs this on the generation it
    inherits so that segment, which is about to stop being final, can
    never trip the "torn record in a non-final segment" corruption
    check in recovery or replication.
    """
    entries, clean_bytes, _torn = read_wal_file(path)
    _records, keep_bytes, _incomplete = _resolve_transactions(
        entries, clean_bytes, final_segment=True, path=path
    )
    size = path.stat().st_size
    if keep_bytes >= size:
        return 0
    with open(path, "r+b") as handle:
        handle.truncate(keep_bytes)
        handle.flush()
        os.fsync(handle.fileno())
    return size - keep_bytes


def _scan_directory(directory: Path) -> tuple[dict[int, Path], dict[int, Path]]:
    checkpoints: dict[int, Path] = {}
    wals: dict[int, Path] = {}
    for entry in directory.iterdir():
        name = entry.name
        if name.startswith("checkpoint-") and name.endswith(".json"):
            try:
                checkpoints[int(name[len("checkpoint-") : -len(".json")])] = entry
            except ValueError:
                continue
        elif name.startswith("wal-") and name.endswith(".log"):
            try:
                wals[int(name[len("wal-") : -len(".log")])] = entry
            except ValueError:
                continue
    return checkpoints, wals


class DurabilityManager:
    """Owns the WAL writer, compaction and crash-injection hooks.

    Constructed by :func:`open_durable_database`; the database routes
    every committed mutation batch into :meth:`commit`.
    """

    def __init__(
        self,
        database: Database,
        config: DurabilityConfig,
        *,
        seq: int,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.config = config
        self.directory = Path(config.directory)
        self._database = database
        self._seq = seq
        self._writer = WalWriter(self._wal_path(seq), fsync=config.fsync)
        # The segment file itself must survive power loss, not just its
        # contents: a newly created directory entry lives in the parent
        # directory's data until that is flushed too.
        self._sync_directory()
        self._txn_counter = 0
        self._records_since_checkpoint = 0
        self._closed = False
        self._hooks: dict[str, Callable[[], None] | None] = {}
        registry = metrics if metrics is not None else database.metrics
        self._m_records = registry.counter(
            "sor_db_wal_records_total",
            "records appended to the write-ahead log",
            labels=("op",),
        )
        self._m_record_children: dict[str, Any] = {}
        self._m_bytes = registry.counter(
            "sor_db_wal_bytes", "bytes appended to the write-ahead log"
        )
        self._m_checkpoints = registry.counter(
            "sor_db_checkpoints_total", "checkpoints written"
        )

    # ------------------------------------------------------------------
    # crash-injection hooks
    # ------------------------------------------------------------------
    def arm(self, point: str, callback: Callable[[], None] | None = None) -> None:
        """Arm a one-shot crash at ``point``.

        When execution reaches the point, ``callback`` (if any) runs —
        typically unregistering the server from the network — and then
        :class:`SimulatedCrashError` is raised. Points:
        ``commit.pre_append``, ``commit.mid_append``, ``commit.pre_sync``,
        ``checkpoint.pre_replace``, ``checkpoint.post_replace``.
        """
        self._hooks[point] = callback

    def disarm(self, point: str) -> None:
        """Remove a previously armed crash point (no-op if absent)."""
        self._hooks.pop(point, None)

    def _fire(self, point: str) -> None:
        if point not in self._hooks:
            return
        callback = self._hooks.pop(point)
        if callback is not None:
            callback()
        raise SimulatedCrashError(f"simulated crash at {point}")

    # ------------------------------------------------------------------
    # commit path
    # ------------------------------------------------------------------
    @property
    def seq(self) -> int:
        return self._seq

    @property
    def closed(self) -> bool:
        return self._closed

    def _wal_path(self, seq: int) -> Path:
        return self.directory / _WAL_PATTERN.format(seq=seq)

    def _checkpoint_path(self, seq: int) -> Path:
        return self.directory / _CHECKPOINT_PATTERN.format(seq=seq)

    def _sync_directory(self) -> None:
        """Flush the directory entry table (gated on ``config.fsync``)."""
        if self.config.fsync:
            fsync_directory(self.directory)

    def _count_record(self, record: dict[str, Any], written: int) -> None:
        self._m_bytes.inc(written)
        op = str(record.get("op", "?"))
        child = self._m_record_children.get(op)
        if child is None:
            child = self._m_records.labels(op=op)
            self._m_record_children[op] = child
        child.inc()

    def commit(
        self, records: list[dict[str, Any]], *, transactional: bool = False
    ) -> None:
        """Append a committed mutation batch to the log and fsync it.

        ``transactional=True`` wraps the batch in begin/commit markers so
        recovery can discard it wholesale if the commit marker never hits
        disk. Raises if the manager is closed (the simulated process is
        dead).
        """
        if self._closed:
            raise DatabaseError("durability manager is closed")
        batch = list(records)
        if not batch:
            return
        mutations = len(batch)
        if transactional:
            self._txn_counter += 1
            txn = self._txn_counter
            batch = [
                {"op": "begin", "txn": txn},
                *batch,
                {"op": "commit", "txn": txn},
            ]
        self._fire("commit.pre_append")
        for position, record in enumerate(batch):
            written = self._writer.append(record)
            self._count_record(record, written)
            if position == 0 and len(batch) > 1:
                # After the first frame of a multi-record batch: the worst
                # place to die — a half-written transaction on disk.
                self._fire("commit.mid_append")
        self._fire("commit.pre_sync")
        self._writer.sync()
        self._records_since_checkpoint += mutations
        if (
            self.config.checkpoint_every_records > 0
            and self._records_since_checkpoint >= self.config.checkpoint_every_records
            and self._database._active_transaction is None
        ):
            self.checkpoint()

    # ------------------------------------------------------------------
    # checkpoints
    # ------------------------------------------------------------------
    def checkpoint(self) -> int:
        """Compact the log into a snapshot; returns the new sequence.

        Opens segment ``G+1`` first, then writes ``checkpoint-(G+1)``
        atomically, then prunes history. A crash at any step leaves a
        recoverable directory: the worst case re-replays segment ``G``.
        """
        if self._closed:
            raise DatabaseError("durability manager is closed")
        if self._database._active_transaction is not None:
            raise DatabaseError("cannot checkpoint during an active transaction")
        self._writer.sync()
        new_seq = self._seq + 1
        new_writer = WalWriter(self._wal_path(new_seq), fsync=self.config.fsync)
        self._sync_directory()  # the new segment's directory entry
        old_writer = self._writer
        self._writer = new_writer
        self._seq = new_seq
        old_writer.close()

        self._write_snapshot(new_seq)

        self._records_since_checkpoint = 0
        self._m_checkpoints.inc()
        self._prune()
        return new_seq

    def _write_snapshot(self, seq: int) -> None:
        """Dump the database into ``checkpoint-(seq)`` atomically.

        Temp file + fsync + ``os.replace`` + directory fsync: a crash at
        any step leaves either no checkpoint or a complete one, never a
        half-written file under the checkpoint name.
        """
        target = self._checkpoint_path(seq)
        payload = json.dumps(dump_database(self._database)).encode("utf-8")
        tmp = target.with_name(f".{target.name}.tmp")
        with open(tmp, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        self._fire("checkpoint.pre_replace")
        os.replace(tmp, target)
        self._sync_directory()
        self._fire("checkpoint.post_replace")

    def _prune(self) -> None:
        checkpoints, wals = _scan_directory(self.directory)
        kept = sorted(checkpoints, reverse=True)[: self.config.keep_checkpoints]
        for seq, path in checkpoints.items():
            if seq not in kept:
                path.unlink(missing_ok=True)
        if kept:
            horizon = min(kept)
            for seq, path in wals.items():
                if seq < horizon:
                    path.unlink(missing_ok=True)
        for stray in self.directory.glob(".*.tmp"):
            stray.unlink(missing_ok=True)

    def close(self) -> None:
        """Release the WAL handle. Used both for shutdown and as 'kill'."""
        if self._closed:
            return
        self._closed = True
        self._writer.close()

    def simulate_torn_append(self, record: dict[str, Any], keep: float = 0.5) -> int:
        """Leave a torn frame at the log tail, as if killed inside write(2)."""
        return self._writer.append_torn(record, keep)

    def simulate_partial_transaction(self, records: list[dict[str, Any]]) -> None:
        """Append a begin marker plus records with NO commit marker.

        Crash simulation: the on-disk signature of a process killed
        between a transaction's first append and its commit marker.
        Recovery must discard the whole batch.
        """
        self._txn_counter += 1
        self._writer.append({"op": "begin", "txn": self._txn_counter})
        for record in records:
            self._writer.append(record)


def open_durable_database(
    config: DurabilityConfig,
    *,
    name: str = "sor",
    metrics: MetricsRegistry | None = None,
) -> tuple[Database, RecoveryReport]:
    """Recover (or initialise) a durable database from ``config.directory``.

    Returns the live database — with a :class:`DurabilityManager`
    attached and accepting writes — and a :class:`RecoveryReport`
    describing what recovery found.
    """
    started = time.perf_counter()
    directory = Path(config.directory)
    directory.mkdir(parents=True, exist_ok=True)
    report = RecoveryReport()
    checkpoints, wals = _scan_directory(directory)

    database: Database | None = None
    for seq in sorted(checkpoints, reverse=True):
        try:
            data = json.loads(checkpoints[seq].read_text(encoding="utf-8"))
            database = load_database(data, metrics=metrics)
            report.checkpoint_seq = seq
            break
        except (OSError, json.JSONDecodeError, DatabaseError):
            report.corrupt_checkpoints_skipped += 1
    if database is None:
        if checkpoints and (not wals or min(wals) > 1):
            raise RecoveryError(
                f"{directory}: every checkpoint is corrupt and the WAL does not "
                "reach back to the beginning of history"
            )
        database = Database(name=name, metrics=metrics)
        report.checkpoint_seq = 0
    if wals and min(wals) > max(report.checkpoint_seq, 1):
        raise RecoveryError(
            f"{directory}: oldest WAL segment {min(wals)} is newer than "
            f"checkpoint {report.checkpoint_seq}; history has a gap"
        )

    if wals:
        start_seq = report.checkpoint_seq if report.checkpoint_seq else min(wals)
        max_seq = max(wals)
        for seq in range(start_seq, max_seq + 1):
            path = wals.get(seq)
            if path is None:
                raise RecoveryError(
                    f"{directory}: missing WAL segment {seq} "
                    f"(have up to {max_seq})"
                )
            final = seq == max_seq
            entries, clean_bytes, torn = read_wal_file(path)
            if torn and not final:
                raise RecoveryError(
                    f"{path.name}: torn record in a non-final segment"
                )
            records, keep_bytes, incomplete = _resolve_transactions(
                entries, clean_bytes, final_segment=final, path=path
            )
            size = path.stat().st_size
            if final and keep_bytes < size:
                with open(path, "r+b") as handle:
                    handle.truncate(keep_bytes)
                    handle.flush()
                    os.fsync(handle.fileno())
                report.torn_tail_bytes_discarded += size - keep_bytes
            report.incomplete_transactions_discarded += incomplete
            for record in records:
                _apply_record(database, record, path)
            report.records_replayed += len(records)
            report.wal_files_replayed += 1
        live_seq = max_seq
    else:
        live_seq = max(report.checkpoint_seq, 1)

    manager = DurabilityManager(database, config, seq=live_seq, metrics=metrics)
    database.attach_durability(manager)

    report.duration_s = time.perf_counter() - started
    registry = metrics if metrics is not None else database.metrics
    registry.counter(
        "sor_db_recovery_replayed_records",
        "WAL records replayed during recovery",
    ).inc(report.records_replayed)
    registry.histogram(
        "sor_db_recovery_seconds",
        "time spent recovering durable state at boot",
        buckets=_RECOVERY_BUCKETS,
    ).observe(report.duration_s)
    return database, report


def attach_durability(
    database: Database,
    directory: str | Path,
    *,
    fsync: bool = True,
    checkpoint_every_records: int = 0,
    keep_checkpoints: int = 2,
    metrics: MetricsRegistry | None = None,
) -> DurabilityManager:
    """Make an already-populated in-memory database durable in place.

    The inverse of :func:`open_durable_database`: instead of rebuilding
    memory from disk, the current in-memory state becomes the disk
    state. Used by shard failover — the promoted replica's database is
    a faithful replay of the dead primary's log, so snapshotting it
    *is* a checkpoint of that history.

    Steps, in crash-safe order:

    1. sanitize the inherited final segment (truncate torn frames and
       uncommitted transaction tails, exactly as recovery would) so it
       can safely stop being the final segment;
    2. open WAL segment ``G+1`` where ``G`` is the newest sequence
       number on disk (checkpoint or segment);
    3. write ``checkpoint-(G+1)`` atomically (temp + fsync +
       ``os.replace`` + directory fsync).

    A crash between 2 and 3 recovers through the *old* generations —
    the sanitized history replays to exactly the snapshotted state.
    Nothing is pruned here: the pre-kill generations stay on disk until
    the next regular checkpoint, so a corrupt re-attach checkpoint can
    still degrade to full-history replay. Returns the live manager
    (also attached to ``database``, which routes commits into it).
    """
    if database.durability is not None:
        raise DatabaseError("database already has durability attached")
    if database._active_transaction is not None:
        raise DatabaseError("cannot attach durability during an active transaction")
    config = DurabilityConfig(
        directory=directory,
        fsync=fsync,
        checkpoint_every_records=checkpoint_every_records,
        keep_checkpoints=keep_checkpoints,
    )
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    checkpoints, wals = _scan_directory(target)
    if wals:
        _sanitize_segment_tail(wals[max(wals)])
    seq = max([*checkpoints, *wals], default=0) + 1

    manager = DurabilityManager(database, config, seq=seq, metrics=metrics)
    manager._write_snapshot(seq)
    for stray in target.glob(".*.tmp"):
        stray.unlink(missing_ok=True)
    database.attach_durability(manager)

    registry = metrics if metrics is not None else database.metrics
    registry.counter(
        "sor_db_wal_reattach_total",
        "databases made durable in place by attach_durability",
    ).inc()
    return manager
