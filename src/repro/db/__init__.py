"""An in-memory relational mini-database.

The paper's sensing server stores everything — raw binary sensed data,
decoded readings, feature statistics, schedules and user records — in
PostgreSQL. This package provides a small but genuinely relational
substitute: typed schemas, primary keys and auto-increment columns,
secondary hash indexes, a composable predicate algebra for ``WHERE``
clauses, ordering and limits, and snapshot transactions.
"""

from repro.db.database import Database, Transaction
from repro.db.persistence import (
    dump_database,
    load_database,
    open_database,
    save_database,
)
from repro.db.predicates import (
    Predicate,
    and_,
    between,
    eq,
    ge,
    gt,
    in_,
    is_null,
    le,
    lt,
    ne,
    not_,
    or_,
)
from repro.db.schema import Column, ColumnType, Schema
from repro.db.table import Table
from repro.db.wal import (
    DurabilityConfig,
    DurabilityManager,
    RecoveryReport,
    attach_durability,
    open_durable_database,
)

__all__ = [
    "Column",
    "ColumnType",
    "Database",
    "DurabilityConfig",
    "DurabilityManager",
    "Predicate",
    "RecoveryReport",
    "Schema",
    "Table",
    "Transaction",
    "and_",
    "attach_durability",
    "between",
    "dump_database",
    "eq",
    "ge",
    "gt",
    "in_",
    "is_null",
    "le",
    "load_database",
    "lt",
    "ne",
    "not_",
    "open_database",
    "open_durable_database",
    "or_",
    "save_database",
]
