"""Dump and restore a database to/from JSON.

The sensing server's state (users, applications, tasks, raw blobs,
readings, feature data) survives restarts in the real system because
PostgreSQL is durable; this module gives the in-memory stand-in the same
property: :func:`dump_database` serializes schemas, rows, auto-increment
counters and index definitions to a JSON-compatible dict (blobs are
base64-encoded), and :func:`load_database` reconstructs an identical
database.

:func:`save_database` writes atomically (temp file + fsync +
``os.replace``), so a crash mid-dump can never leave a truncated,
unloadable file where a good one used to be — the write-ahead log
(:mod:`repro.db.wal`) builds its checkpoints on the same primitive.
"""

from __future__ import annotations

import base64
import binascii
import json
import os
from pathlib import Path
from typing import Any

from repro.common.errors import DatabaseError
from repro.db.database import Database
from repro.db.schema import Column, ColumnType, Schema
from repro.obs import MetricsRegistry

_FORMAT_VERSION = 1


def _encode_cell(column: Column, value: Any) -> Any:
    if value is None:
        return None
    if column.type is ColumnType.BLOB:
        return base64.b64encode(value).decode("ascii")
    return value


def _decode_cell(column: Column, value: Any) -> Any:
    if value is None:
        return None
    if column.type is ColumnType.BLOB:
        if not isinstance(value, str):
            raise DatabaseError(
                f"blob cell for column {column.name!r} is not base64 text"
            )
        try:
            return base64.b64decode(value.encode("ascii"), validate=True)
        except (binascii.Error, UnicodeEncodeError) as exc:
            raise DatabaseError(
                f"corrupt base64 blob in column {column.name!r}: {exc}"
            ) from exc
    return value


def encode_row(schema: Schema, row: dict[str, Any]) -> dict[str, Any]:
    """One stored row in JSON-compatible wire form (blobs base64'd)."""
    return {
        column.name: _encode_cell(column, row[column.name])
        for column in schema.columns
    }


def decode_row(schema: Schema, row: dict[str, Any]) -> dict[str, Any]:
    """Invert :func:`encode_row` back to storable Python values."""
    return {
        column.name: _decode_cell(column, row.get(column.name))
        for column in schema.columns
    }


def schema_to_dict(schema: Schema) -> dict[str, Any]:
    """A schema in JSON-compatible form (for dumps and WAL records)."""
    return {
        "name": schema.name,
        "primary_key": schema.primary_key,
        "unique": list(schema.unique),
        "columns": [
            {
                "name": column.name,
                "type": column.type.value,
                "nullable": column.nullable,
                # Blob defaults (e.g. b"") need the same base64 treatment
                # as blob cells to survive the JSON round trip.
                "default": _encode_cell(column, column.default),
                "auto_increment": column.auto_increment,
            }
            for column in schema.columns
        ],
    }


def schema_from_dict(data: dict[str, Any]) -> Schema:
    """Invert :func:`schema_to_dict` (raises DatabaseError on bad input)."""
    try:
        columns = []
        for column in data["columns"]:
            parsed = Column(
                name=column["name"],
                type=ColumnType(column["type"]),
                nullable=column["nullable"],
                default=None,
                auto_increment=column.get("auto_increment", False),
            )
            default = _decode_cell(parsed, column.get("default"))
            if default is not None:
                parsed = Column(
                    name=parsed.name,
                    type=parsed.type,
                    nullable=parsed.nullable,
                    default=default,
                    auto_increment=parsed.auto_increment,
                )
            columns.append(parsed)
        return Schema(
            name=data["name"],
            primary_key=data["primary_key"],
            unique=tuple(data.get("unique", [])),
            columns=tuple(columns),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise DatabaseError(f"malformed schema in dump: {exc!r}") from exc


def encode_cell(column: Column, value: Any) -> Any:
    """One cell in JSON-compatible wire form (blobs base64'd)."""
    return _encode_cell(column, value)


def decode_cell(column: Column, value: Any) -> Any:
    """Invert :func:`encode_cell` back to a storable Python value."""
    return _decode_cell(column, value)


# Backwards-compatible aliases (pre-WAL internal names).
_schema_to_dict = schema_to_dict
_schema_from_dict = schema_from_dict


def dump_database(database: Database) -> dict[str, Any]:
    """Serialize a database to a JSON-compatible dictionary."""
    tables = []
    for name in database.table_names():
        table = database.table(name)
        snapshot = table.snapshot()
        rows = [
            encode_row(table.schema, row) for row in snapshot["rows"].values()
        ]
        tables.append(
            {
                "schema": schema_to_dict(table.schema),
                "rows": rows,
                "auto_counter": snapshot["auto_counter"],
                "indexes": list(snapshot["indexed"]),
            }
        )
    return {"format": _FORMAT_VERSION, "name": database.name, "tables": tables}


def load_database(
    data: dict[str, Any], *, metrics: MetricsRegistry | None = None
) -> Database:
    """Reconstruct a database from :func:`dump_database` output.

    Every malformed input — unknown format version, missing keys, rows
    that do not fit their schema, base64-corrupt blob cells — raises
    :class:`DatabaseError` (never a bare ``KeyError``/``ValueError``),
    so callers can treat "this dump is unusable" as one failure mode.
    """
    if not isinstance(data, dict):
        raise DatabaseError(f"database dump is not an object: {type(data).__name__}")
    if data.get("format") != _FORMAT_VERSION:
        raise DatabaseError(f"unsupported dump format {data.get('format')!r}")
    name = data.get("name", "restored")
    if not isinstance(name, str):
        raise DatabaseError(f"dump name is not a string: {name!r}")
    database = Database(name=name, metrics=metrics)
    try:
        table_dumps = list(data["tables"])
    except (KeyError, TypeError) as exc:
        raise DatabaseError(f"dump has no table list: {exc!r}") from exc
    for table_data in table_dumps:
        if not isinstance(table_data, dict):
            raise DatabaseError("table entry in dump is not an object")
        try:
            schema = schema_from_dict(table_data["schema"])
            table = database.create_table(schema)
            for row in table_data["rows"]:
                table.insert(decode_row(schema, row))
            # Restore the counter even past the highest inserted key.
            table._auto_counter = max(
                table._auto_counter, int(table_data["auto_counter"])
            )
            for column_name in table_data["indexes"]:
                table.create_index(column_name)
        except DatabaseError:
            raise
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise DatabaseError(
                f"malformed table entry in dump: {exc!r}"
            ) from exc
    return database


def atomic_write_json(path: str | Path, data: Any) -> int:
    """Write ``data`` as JSON to ``path`` atomically; returns bytes written.

    The payload lands in a same-directory temp file which is fsynced and
    then ``os.replace``d over the target, so readers observe either the
    old complete file or the new complete file — never a torn prefix.
    The directory entry is fsynced too (best effort; not all platforms
    allow opening directories).
    """
    target = Path(path)
    payload = json.dumps(data).encode("utf-8")
    tmp = target.with_name(f".{target.name}.tmp")
    try:
        with open(tmp, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
    except OSError as exc:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise DatabaseError(f"cannot write {target}: {exc}") from exc
    fsync_directory(target.parent)
    return len(payload)


def fsync_directory(directory: Path) -> None:
    """Flush a directory entry to disk (best effort)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def save_database(database: Database, path: str | Path) -> None:
    """Write a database dump to ``path`` as JSON, atomically."""
    atomic_write_json(path, dump_database(database))


def open_database(
    path: str | Path, *, metrics: MetricsRegistry | None = None
) -> Database:
    """Load a database previously written by :func:`save_database`."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise DatabaseError(f"cannot open database dump {path}: {exc}") from exc
    return load_database(data, metrics=metrics)
