"""Dump and restore a database to/from JSON.

The sensing server's state (users, applications, tasks, raw blobs,
readings, feature data) survives restarts in the real system because
PostgreSQL is durable; this module gives the in-memory stand-in the same
property: :func:`dump_database` serializes schemas, rows, auto-increment
counters and index definitions to a JSON-compatible dict (blobs are
base64-encoded), and :func:`load_database` reconstructs an identical
database.
"""

from __future__ import annotations

import base64
import json
from pathlib import Path
from typing import Any

from repro.common.errors import DatabaseError
from repro.db.database import Database
from repro.db.schema import Column, ColumnType, Schema

_FORMAT_VERSION = 1


def _encode_cell(column: Column, value: Any) -> Any:
    if value is None:
        return None
    if column.type is ColumnType.BLOB:
        return base64.b64encode(value).decode("ascii")
    return value


def _decode_cell(column: Column, value: Any) -> Any:
    if value is None:
        return None
    if column.type is ColumnType.BLOB:
        return base64.b64decode(value.encode("ascii"))
    return value


def _schema_to_dict(schema: Schema) -> dict[str, Any]:
    return {
        "name": schema.name,
        "primary_key": schema.primary_key,
        "unique": list(schema.unique),
        "columns": [
            {
                "name": column.name,
                "type": column.type.value,
                "nullable": column.nullable,
                "default": column.default,
                "auto_increment": column.auto_increment,
            }
            for column in schema.columns
        ],
    }


def _schema_from_dict(data: dict[str, Any]) -> Schema:
    return Schema(
        name=data["name"],
        primary_key=data["primary_key"],
        unique=tuple(data.get("unique", [])),
        columns=tuple(
            Column(
                name=column["name"],
                type=ColumnType(column["type"]),
                nullable=column["nullable"],
                default=column.get("default"),
                auto_increment=column.get("auto_increment", False),
            )
            for column in data["columns"]
        ),
    )


def dump_database(database: Database) -> dict[str, Any]:
    """Serialize a database to a JSON-compatible dictionary."""
    tables = []
    for name in database.table_names():
        table = database.table(name)
        snapshot = table.snapshot()
        columns = table.schema.columns
        rows = [
            {
                column.name: _encode_cell(column, row[column.name])
                for column in columns
            }
            for row in snapshot["rows"].values()
        ]
        tables.append(
            {
                "schema": _schema_to_dict(table.schema),
                "rows": rows,
                "auto_counter": snapshot["auto_counter"],
                "indexes": list(snapshot["indexed"]),
            }
        )
    return {"format": _FORMAT_VERSION, "name": database.name, "tables": tables}


def load_database(data: dict[str, Any]) -> Database:
    """Reconstruct a database from :func:`dump_database` output."""
    if data.get("format") != _FORMAT_VERSION:
        raise DatabaseError(f"unsupported dump format {data.get('format')!r}")
    database = Database(name=data.get("name", "restored"))
    for table_data in data["tables"]:
        schema = _schema_from_dict(table_data["schema"])
        table = database.create_table(schema)
        for row in table_data["rows"]:
            decoded = {
                column.name: _decode_cell(column, row.get(column.name))
                for column in schema.columns
            }
            table.insert(decoded)
        # Restore the counter even past the highest inserted key.
        table._auto_counter = max(table._auto_counter, table_data["auto_counter"])
        for column_name in table_data["indexes"]:
            table.create_index(column_name)
    return database


def save_database(database: Database, path: str | Path) -> None:
    """Write a database dump to ``path`` as JSON."""
    Path(path).write_text(json.dumps(dump_database(database)), encoding="utf-8")


def open_database(path: str | Path) -> Database:
    """Load a database previously written by :func:`save_database`."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise DatabaseError(f"cannot open database dump {path}: {exc}") from exc
    return load_database(data)
