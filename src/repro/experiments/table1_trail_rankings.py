"""Table I: rankings of hiking trails computed by SOR.

Three virtual hikers (Fig. 7 profiles) rank the three trails from the
Fig. 6 feature data. The paper's Table I:

========  ============  ============  ================
User      No. 1         No. 2         No. 3
========  ============  ============  ================
Alice     Cliff Trail   Long Trail    Green Lake Trail
Bob       Long Trail    Cliff Trail   Green Lake Trail
Chris     Green Lake    Long Trail    Cliff Trail
========  ============  ============  ================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.features import build_feature_matrix
from repro.core.ranking import (
    PreferenceProfile,
    Ranking,
    aggregate_footrule,
    individual_rankings,
    preference_distance_matrix,
)
from repro.experiments.fig6_trail_features import Fig6Result, run_fig6
from repro.sim.scenarios import hiker_profiles, trail_feature_pipeline

TABLE1_EXPECTED = {
    "Alice": ["Cliff Trail", "Long Trail", "Green Lake Trail"],
    "Bob": ["Long Trail", "Cliff Trail", "Green Lake Trail"],
    "Chris": ["Green Lake Trail", "Long Trail", "Cliff Trail"],
}


@dataclass
class Table1Result:
    rankings: dict[str, Ranking]  # profile name → ranking of place names
    fig6: Fig6Result

    def as_rows(self) -> list[tuple[str, list[str]]]:
        """Table rows as (user, ranked place names)."""
        return [(name, list(ranking.items)) for name, ranking in self.rankings.items()]

    def matches_expected(self) -> bool:
        """Whether every user's row equals the paper's Table I."""
        return all(
            list(self.rankings[user].items) == expected
            for user, expected in TABLE1_EXPECTED.items()
        )


def rank_with_profile(
    features: dict[str, dict[str, float]],
    feature_names: list[str],
    profile: PreferenceProfile,
) -> Ranking:
    """The full Algorithm 2 pipeline on a feature-value mapping."""
    active = [name for name in feature_names if profile.weight(name) > 0]
    matrix, place_ids = build_feature_matrix(features, active)
    gamma = preference_distance_matrix(matrix, active, profile)
    individual = individual_rankings(gamma, place_ids)
    weights = [profile.weight(name) for name in active]
    return aggregate_footrule(individual, weights)


def run_table1(
    *, seed: int = 2014, fig6: Fig6Result | None = None
) -> Table1Result:
    """Compute Table I (reusing Fig. 6 data when supplied)."""
    result = fig6 if fig6 is not None else run_fig6(seed=seed)
    feature_names = trail_feature_pipeline().feature_names
    rankings = {
        profile.name: rank_with_profile(result.features, feature_names, profile)
        for profile in hiker_profiles()
    }
    return Table1Result(rankings=rankings, fig6=result)


def format_table1(result: Table1Result) -> str:
    """Render Table I as aligned text with a match verdict."""
    lines = [
        "Table I — rankings of hiking trails computed by SOR",
        f"{'User':<8}{'No. 1':<20}{'No. 2':<20}{'No. 3':<20}",
    ]
    for user, places in result.as_rows():
        lines.append(f"{user:<8}" + "".join(f"{place:<20}" for place in places))
    lines.append(
        f"matches paper: {'YES' if result.matches_expected() else 'NO'}"
    )
    return "\n".join(lines)
