"""Table II: rankings of coffee shops computed by SOR.

Two virtual customers (Fig. 11 profiles) rank the three shops from the
Fig. 10 feature data. The paper's Table II:

========  ==========  ============  ============
User      No. 1       No. 2         No. 3
========  ==========  ============  ============
David     Starbucks   B&N Cafe      Tim Hortons
Emma      B&N Cafe    Tim Hortons   Starbucks
========  ==========  ============  ============
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ranking import Ranking
from repro.experiments.fig10_shop_features import Fig10Result, run_fig10
from repro.experiments.table1_trail_rankings import rank_with_profile
from repro.sim.scenarios import customer_profiles, shop_feature_pipeline

TABLE2_EXPECTED = {
    "David": ["Starbucks", "B&N Cafe", "Tim Hortons"],
    "Emma": ["B&N Cafe", "Tim Hortons", "Starbucks"],
}


@dataclass
class Table2Result:
    rankings: dict[str, Ranking]
    fig10: Fig10Result

    def as_rows(self) -> list[tuple[str, list[str]]]:
        """Table rows as (user, ranked place names)."""
        return [(name, list(ranking.items)) for name, ranking in self.rankings.items()]

    def matches_expected(self) -> bool:
        """Whether every user's row equals the paper's Table II."""
        return all(
            list(self.rankings[user].items) == expected
            for user, expected in TABLE2_EXPECTED.items()
        )


def run_table2(
    *, seed: int = 2014, fig10: Fig10Result | None = None
) -> Table2Result:
    """Compute Table II (reusing Fig. 10 data when supplied)."""
    result = fig10 if fig10 is not None else run_fig10(seed=seed)
    feature_names = shop_feature_pipeline().feature_names
    rankings = {
        profile.name: rank_with_profile(result.features, feature_names, profile)
        for profile in customer_profiles()
    }
    return Table2Result(rankings=rankings, fig10=result)


def format_table2(result: Table2Result) -> str:
    """Render Table II as aligned text with a match verdict."""
    lines = [
        "Table II — rankings of coffee shops computed by SOR",
        f"{'User':<8}{'No. 1':<16}{'No. 2':<16}{'No. 3':<16}",
    ]
    for user, places in result.as_rows():
        lines.append(f"{user:<8}" + "".join(f"{place:<16}" for place in places))
    lines.append(
        f"matches paper: {'YES' if result.matches_expected() else 'NO'}"
    )
    return "\n".join(lines)
