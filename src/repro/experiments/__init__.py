"""Experiment harnesses: one module per paper table/figure.

Every module exposes a ``run_*`` function returning a structured result
plus a ``format_*`` helper that prints the same rows/series the paper
reports. The benchmarks under ``benchmarks/`` call these functions;
EXPERIMENTS.md records paper-vs-measured for each.

=================  ====================================================
paper artefact     module
=================  ====================================================
Fig. 6             :mod:`repro.experiments.fig6_trail_features`
Fig. 7 + Table I   :mod:`repro.experiments.table1_trail_rankings`
Fig. 10            :mod:`repro.experiments.fig10_shop_features`
Fig. 11 + Table II :mod:`repro.experiments.table2_shop_rankings`
Fig. 14(a)/(b)     :mod:`repro.experiments.fig14_scheduling`
(ablations, ours)  :mod:`repro.experiments.ablations`
(end-to-end, ours) :mod:`repro.experiments.end_to_end`
=================  ====================================================
"""

from repro.experiments.fig6_trail_features import run_fig6
from repro.experiments.fig10_shop_features import run_fig10
from repro.experiments.fig14_scheduling import run_fig14a, run_fig14b
from repro.experiments.table1_trail_rankings import TABLE1_EXPECTED, run_table1
from repro.experiments.table2_shop_rankings import TABLE2_EXPECTED, run_table2

__all__ = [
    "TABLE1_EXPECTED",
    "TABLE2_EXPECTED",
    "run_fig6",
    "run_fig10",
    "run_fig14a",
    "run_fig14b",
    "run_table1",
    "run_table2",
]
