"""End-to-end system experiment: the whole protocol on one simulator.

Runs a complete deployment (barcodes, phones, server, scripts, uploads,
decoding, ranking) for the coffee-shop scenario, and reports both the
produced rankings and protocol-level statistics — message counts, bytes
on the wire, phone energy, script executions — which the e2e benchmark
tracks for regressions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.ranking import Ranking
from repro.server import SORSystem
from repro.sim.scenarios import (
    customer_profiles,
    shop_feature_pipeline,
    syracuse_coffee_shops,
)


@dataclass
class EndToEndResult:
    rankings: dict[str, list[str]]  # profile name → ranked place names
    features: dict[str, dict[str, float]]
    messages_sent: int
    bytes_sent: int
    bytes_received: int
    events_processed: int
    blobs_decoded: int
    total_phone_energy_mj: float


def run_end_to_end(
    *, seed: int = 42, phones_per_shop: int = 12, budget: int = 30
) -> EndToEndResult:
    """Run the coffee-shop deployment through the full SOR protocol."""
    system = SORSystem(seed=seed)
    rng = np.random.default_rng(seed)
    shops = syracuse_coffee_shops(rng)
    pipeline = shop_feature_pipeline()
    for shop in shops:
        system.deploy_place(shop, pipeline)
        for _ in range(phones_per_shop):
            system.deploy_phone(shop.place_id, budget=budget)
    system.run()
    reports = system.process_and_rank("coffee_shop", customer_profiles())
    place_names = {
        place_id: deployed.place.name for place_id, deployed in system.places.items()
    }

    def named(ranking: Ranking) -> list[str]:
        return [place_names[place_id] for place_id in ranking.items]

    total_energy = sum(
        deployed.phone.battery.capacity_mj - deployed.phone.battery.remaining_mj
        for deployed in system.phones
    )
    return EndToEndResult(
        rankings={name: named(report.ranking) for name, report in reports.items()},
        features=system.feature_values("coffee_shop"),
        messages_sent=system.network.stats.requests_sent,
        bytes_sent=system.network.stats.bytes_sent,
        bytes_received=system.network.stats.bytes_received,
        events_processed=system.simulator.events_processed,
        blobs_decoded=system.server.data_processor.blobs_decoded,
        total_phone_energy_mj=total_energy,
    )
