"""Generate a full reproduction report: markdown + SVG figures.

``write_report(output_dir)`` runs every experiment and writes:

* ``report.md`` — all tables with pass/fail marks,
* ``fig6_<feature>.svg`` ×5, ``fig10_<feature>.svg`` ×4 — the field-test
  feature bar charts,
* ``fig14a.svg`` / ``fig14b.svg`` — the scheduling sweep line charts,
* ``features_trails.csv`` / ``features_shops.csv`` — raw feature data.

Used by ``examples/generate_report.py``.
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments.fig6_trail_features import (
    FEATURE_ORDER as TRAIL_FEATURES,
    run_fig6,
)
from repro.experiments.fig10_shop_features import (
    FEATURE_ORDER as SHOP_FEATURES,
    run_fig10,
)
from repro.experiments.fig14_scheduling import run_fig14a, run_fig14b
from repro.experiments.table1_trail_rankings import (
    TABLE1_EXPECTED,
    run_table1,
)
from repro.experiments.table2_shop_rankings import (
    TABLE2_EXPECTED,
    run_table2,
)
from repro.server.svg_charts import bar_chart_svg, line_chart_svg
from repro.server.visualization import to_csv


def _ranking_table(expected: dict, rankings: dict) -> list[str]:
    lines = [
        "| user | paper | measured | match |",
        "|---|---|---|---|",
    ]
    for user, paper_order in expected.items():
        measured = list(rankings[user].items)
        mark = "✅" if measured == paper_order else "❌"
        lines.append(
            f"| {user} | {', '.join(paper_order)} | {', '.join(measured)} | {mark} |"
        )
    return lines


def write_report(
    output_dir: str | Path, *, seed: int = 2014, sweep_runs: int = 10
) -> Path:
    """Run all experiments and write the report; returns report.md path."""
    output = Path(output_dir)
    output.mkdir(parents=True, exist_ok=True)
    sections: list[str] = ["# SOR reproduction report", ""]

    # Field tests -------------------------------------------------------
    fig6 = run_fig6(seed=seed)
    sections.append("## Fig. 6 — hiking-trail feature data")
    sections.append("")
    for feature in TRAIL_FEATURES:
        values = {name: fig6.features[name][feature] for name in fig6.features}
        svg_path = output / f"fig6_{feature}.svg"
        svg_path.write_text(
            bar_chart_svg(f"Fig. 6 — {feature}", values), encoding="utf-8"
        )
        sections.append(f"![{feature}]({svg_path.name})")
    sections.append("")
    sections.append(
        f"orderings match paper ground truth: "
        f"{'✅' if fig6.matches_expected() else '❌'}"
    )
    (output / "features_trails.csv").write_text(
        to_csv(fig6.features, TRAIL_FEATURES), encoding="utf-8"
    )

    table1 = run_table1(fig6=fig6)
    sections.append("")
    sections.append("## Table I — trail rankings")
    sections.append("")
    sections.extend(_ranking_table(TABLE1_EXPECTED, table1.rankings))

    fig10 = run_fig10(seed=seed)
    sections.append("")
    sections.append("## Fig. 10 — coffee-shop feature data")
    sections.append("")
    for feature in SHOP_FEATURES:
        values = {name: fig10.features[name][feature] for name in fig10.features}
        svg_path = output / f"fig10_{feature}.svg"
        svg_path.write_text(
            bar_chart_svg(f"Fig. 10 — {feature}", values), encoding="utf-8"
        )
        sections.append(f"![{feature}]({svg_path.name})")
    sections.append("")
    sections.append(
        f"orderings match paper ground truth: "
        f"{'✅' if fig10.matches_expected() else '❌'}"
    )
    (output / "features_shops.csv").write_text(
        to_csv(fig10.features, SHOP_FEATURES), encoding="utf-8"
    )

    table2 = run_table2(fig10=fig10)
    sections.append("")
    sections.append("## Table II — coffee-shop rankings")
    sections.append("")
    sections.extend(_ranking_table(TABLE2_EXPECTED, table2.rankings))

    # Scheduling sweeps -------------------------------------------------
    for name, runner, x_label in (
        ("fig14a", run_fig14a, "number of mobile users"),
        ("fig14b", run_fig14b, "budget"),
    ):
        sweep = runner(runs=sweep_runs, seed=0)
        svg_path = output / f"{name}.svg"
        svg_path.write_text(
            line_chart_svg(
                f"Fig. 14 — average coverage vs {x_label}",
                {
                    "greedy": sweep.greedy_series(),
                    "baseline": sweep.baseline_series(),
                },
                x_label=x_label,
                y_label="average coverage probability",
            ),
            encoding="utf-8",
        )
        sections.append("")
        sections.append(f"## Fig. 14 — coverage vs {x_label}")
        sections.append("")
        sections.append(f"![{name}]({svg_path.name})")
        sections.append("")
        sections.append(
            f"mean improvement of greedy over baseline: "
            f"**{sweep.mean_improvement:.0%}** (paper: 65% overall)"
        )

    report_path = output / "report.md"
    report_path.write_text("\n".join(sections) + "\n", encoding="utf-8")
    return report_path
