"""Ablation studies for design choices DESIGN.md calls out.

Not in the paper — these quantify the impact of the choices the paper
leaves implicit:

* ``run_sigma_ablation`` — how the coverage-kernel width changes both
  algorithms' coverage (a small σ models fast-changing features;
  schedules must spread much more),
* ``run_lazy_ablation`` — lazy-heap greedy vs the paper's O(N²) loop:
  identical schedules, very different runtimes,
* ``run_aggregation_ablation`` — footrule-flow aggregation vs Borda
  count vs the exact (NP-hard) Kemeny optimum on random instances, plus
  the local-search refinement,
* ``run_online_ablation`` — the price of online operation: the server's
  arrival-order incremental greedy (each user scheduled the moment they
  scan, over their remaining window, without revisiting earlier users)
  vs the offline greedy that sees all participants up front.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.ranking import (
    Ranking,
    aggregate_footrule,
    borda_count,
    brute_force_kemeny,
    refine_by_adjacent_swaps,
    weighted_kemeny_distance,
)
from repro.core.scheduling import (
    GaussianKernel,
    GreedyScheduler,
    PeriodicBaselineScheduler,
    SchedulingPeriod,
    SchedulingProblem,
)
from repro.sim.arrivals import uniform_arrivals

PERIOD_S = 10_800.0


# ----------------------------------------------------------------------
# kernel width
# ----------------------------------------------------------------------
@dataclass
class SigmaPoint:
    sigma_s: float
    greedy_coverage: float
    baseline_coverage: float


def run_sigma_ablation(
    *,
    sigmas: tuple[float, ...] = (2.0, 5.0, 10.0, 30.0, 60.0),
    users: int = 40,
    budget: int = 17,
    runs: int = 5,
    seed: int = 0,
) -> list[SigmaPoint]:
    """Sweep the Gaussian kernel width for both schedulers."""
    period = SchedulingPeriod(0.0, PERIOD_S, 1080)
    points = []
    for sigma in sigmas:
        greedy_values, baseline_values = [], []
        for run in range(runs):
            rng = np.random.default_rng(seed + run)
            problem = SchedulingProblem(
                period,
                uniform_arrivals(users, PERIOD_S, budget, rng),
                GaussianKernel(sigma=sigma),
            )
            greedy_values.append(GreedyScheduler().solve(problem).average_coverage)
            baseline_values.append(
                PeriodicBaselineScheduler().solve(problem).average_coverage
            )
        points.append(
            SigmaPoint(
                sigma_s=sigma,
                greedy_coverage=float(np.mean(greedy_values)),
                baseline_coverage=float(np.mean(baseline_values)),
            )
        )
    return points


# ----------------------------------------------------------------------
# lazy vs naive greedy
# ----------------------------------------------------------------------
@dataclass
class LazyPoint:
    num_instants: int
    lazy_seconds: float
    naive_seconds: float
    identical_schedules: bool

    @property
    def speedup(self) -> float:
        return self.naive_seconds / self.lazy_seconds if self.lazy_seconds else 0.0


def run_lazy_ablation(
    *,
    instant_counts: tuple[int, ...] = (180, 360, 720, 1080),
    users: int = 30,
    budget: int = 17,
    seed: int = 0,
    backend: str = "reference",
) -> list[LazyPoint]:
    """Time both greedy variants; assert they agree.

    Defaults to the scalar reference backend, where accelerated
    evaluation means the classic lazy heap and the comparison against
    the paper's O(N²) loop is the one DESIGN.md discusses. On the numpy
    backend the objective maintains its gains array, so both variants
    read O(1) gains and the gap collapses by design — use
    :func:`run_backend_ablation` for the speedup that backend delivers.
    """
    points = []
    for num_instants in instant_counts:
        rng = np.random.default_rng(seed)
        period = SchedulingPeriod(0.0, PERIOD_S, num_instants)
        problem = SchedulingProblem(
            period,
            uniform_arrivals(users, PERIOD_S, budget, rng),
            GaussianKernel(sigma=10.0),
        )
        start = time.perf_counter()
        lazy = GreedyScheduler(lazy=True, backend=backend).solve(problem)
        lazy_seconds = time.perf_counter() - start
        start = time.perf_counter()
        naive = GreedyScheduler(lazy=False, backend=backend).solve(problem)
        naive_seconds = time.perf_counter() - start
        points.append(
            LazyPoint(
                num_instants=num_instants,
                lazy_seconds=lazy_seconds,
                naive_seconds=naive_seconds,
                identical_schedules=lazy.assignments == naive.assignments,
            )
        )
    return points


# ----------------------------------------------------------------------
# numpy vs reference scheduling backend
# ----------------------------------------------------------------------
@dataclass
class BackendPoint:
    num_instants: int
    sigma_s: float
    reference_seconds: float
    numpy_seconds: float
    identical_schedules: bool

    @property
    def speedup(self) -> float:
        if not self.numpy_seconds:
            return 0.0
        return self.reference_seconds / self.numpy_seconds


def run_backend_ablation(
    *,
    instant_counts: tuple[int, ...] = (360, 1000),
    users: int = 30,
    budget: int = 17,
    sigma: float = 10.0,
    seed: int = 0,
    lazy: bool = False,
    rounds: int = 3,
) -> list[BackendPoint]:
    """Time the numpy backend against the scalar reference; assert they agree.

    ``lazy=False`` (default) compares the paper-literal O(N²) greedy on
    both backends — the cost the vectorization actually removes: the
    reference re-walks every instant's kernel window per pick, while the
    numpy objective maintains its gains array and answers each sweep in
    O(N). ``lazy=True`` compares the accelerated variants instead
    (reference lazy heap vs numpy dense argmax), a much tighter race.

    Each backend is timed ``rounds`` times, interleaved, and the best
    round is kept — shared machines stall either backend for tens of
    milliseconds at a time, and the minimum is the standard robust
    estimator for "how fast does this code actually run".
    """
    points = []
    for num_instants in instant_counts:
        rng = np.random.default_rng(seed)
        period = SchedulingPeriod(0.0, PERIOD_S, num_instants)
        problem = SchedulingProblem(
            period,
            uniform_arrivals(users, PERIOD_S, budget, rng),
            GaussianKernel(sigma=sigma),
        )
        reference_seconds = float("inf")
        numpy_seconds = float("inf")
        reference = vectorized = None
        for _ in range(max(1, rounds)):
            start = time.perf_counter()
            reference = GreedyScheduler(lazy=lazy, backend="reference").solve(problem)
            reference_seconds = min(reference_seconds, time.perf_counter() - start)
            start = time.perf_counter()
            vectorized = GreedyScheduler(lazy=lazy, backend="numpy").solve(problem)
            numpy_seconds = min(numpy_seconds, time.perf_counter() - start)
        points.append(
            BackendPoint(
                num_instants=num_instants,
                sigma_s=sigma,
                reference_seconds=reference_seconds,
                numpy_seconds=numpy_seconds,
                identical_schedules=reference.assignments == vectorized.assignments,
            )
        )
    return points


# ----------------------------------------------------------------------
# city-scale horizon (banded representation + stochastic greedy)
# ----------------------------------------------------------------------
@dataclass
class ScalingPoint:
    """One horizon length on the lazy-vs-stochastic scaling curve."""

    num_instants: int
    sigma_s: float
    total_budget: int
    lazy_seconds: float
    stochastic_seconds: float
    lazy_value: float
    stochastic_value: float
    #: tracemalloc peak of one banded stochastic solve (objective + loop).
    peak_bytes: int

    @property
    def speedup(self) -> float:
        if not self.stochastic_seconds:
            return 0.0
        return self.lazy_seconds / self.stochastic_seconds

    @property
    def value_ratio(self) -> float:
        if not self.lazy_value:
            return 0.0
        return self.stochastic_value / self.lazy_value

    @property
    def peak_bytes_per_instant(self) -> float:
        return self.peak_bytes / max(1, self.num_instants)


def run_scaling_ablation(
    *,
    instant_counts: tuple[int, ...] = (2_000, 20_000, 100_000),
    users: int = 50,
    budget: int = 20,
    seed: int = 2014,
    rounds: int = 3,
    sample_epsilon: float = 0.1,
    measure_memory: bool = True,
) -> list[ScalingPoint]:
    """Exact lazy greedy vs stochastic greedy as the horizon grows.

    The kernel width shrinks with the instant spacing (``sigma_s =
    100000 / N`` seconds) so the banded kernel stays ~60 instants wide
    at every point — the curve then isolates how the *horizon* scales:
    the exact sweep pays O(N) per pick, the sampled pick pays
    O((N/B)·log(1/ε)) with a horizon-independent constant. The total
    budget is ``users × budget`` picks (1000 by default) at every N.

    Each point also records the tracemalloc peak of one untimed banded
    stochastic solve — the committed scaling gate asserts it stays
    linear in N (the dense |T|×|T| representation would need 80 GB at
    N = 10⁵; the band needs a few hundred bytes per instant).
    """
    points = []
    for num_instants in instant_counts:
        sigma = 100_000.0 / num_instants
        rng = np.random.default_rng(seed)
        period = SchedulingPeriod(0.0, PERIOD_S, num_instants)
        problem = SchedulingProblem(
            period,
            uniform_arrivals(users, PERIOD_S, budget, rng),
            GaussianKernel(sigma=sigma),
        )
        lazy_seconds = stochastic_seconds = float("inf")
        lazy_schedule = stochastic_schedule = None
        for _ in range(max(1, rounds)):
            start = time.perf_counter()
            lazy_schedule = GreedyScheduler(mode="lazy").solve(problem)
            lazy_seconds = min(lazy_seconds, time.perf_counter() - start)
            start = time.perf_counter()
            stochastic_schedule = GreedyScheduler(
                mode="stochastic", seed=seed, sample_epsilon=sample_epsilon
            ).solve(problem)
            stochastic_seconds = min(
                stochastic_seconds, time.perf_counter() - start
            )
        peak_bytes = 0
        if measure_memory:
            import tracemalloc

            from repro.core.scheduling import clear_kernel_matrix_cache

            # The cache would hide the objective's allocations (and a
            # dense leftover from another test would dwarf them).
            clear_kernel_matrix_cache()
            tracemalloc.start()
            GreedyScheduler(
                mode="stochastic", seed=seed, sample_epsilon=sample_epsilon
            ).solve(problem)
            _, peak_bytes = tracemalloc.get_traced_memory()
            tracemalloc.stop()
        points.append(
            ScalingPoint(
                num_instants=num_instants,
                sigma_s=sigma,
                total_budget=users * budget,
                lazy_seconds=lazy_seconds,
                stochastic_seconds=stochastic_seconds,
                lazy_value=lazy_schedule.objective_value,
                stochastic_value=stochastic_schedule.objective_value,
                peak_bytes=peak_bytes,
            )
        )
    return points


# ----------------------------------------------------------------------
# multi-kernel (per-feature σ) scheduling
# ----------------------------------------------------------------------
@dataclass
class MultiKernelPoint:
    """Per-feature coverage achieved by each scheduling strategy."""

    strategy: str
    slow_feature_coverage: float  # wide kernel (e.g. temperature)
    fast_feature_coverage: float  # narrow kernel (e.g. acceleration)
    blended_value: float


def run_multikernel_ablation(
    *,
    users: int = 20,
    budget: int = 17,
    runs: int = 5,
    slow_sigma: float = 60.0,
    fast_sigma: float = 5.0,
    seed: int = 0,
) -> list[MultiKernelPoint]:
    """Schedule for one kernel vs the blend; report per-feature coverage.

    The paper assigns different σ per feature class but schedules with a
    single kernel; this quantifies what that costs when one application
    senses both a slow feature (wide σ) and a fast one (narrow σ) in the
    same bursts.
    """
    from repro.core.scheduling.multikernel import (
        FeatureKernel,
        MultiKernelGreedyScheduler,
        MultiKernelObjective,
    )

    period = SchedulingPeriod(0.0, PERIOD_S, 1080)
    features = [
        FeatureKernel("slow", GaussianKernel(slow_sigma), weight=1.0),
        FeatureKernel("fast", GaussianKernel(fast_sigma), weight=1.0),
    ]
    strategies = {
        "single slow kernel": GreedyScheduler(),
        "single fast kernel": GreedyScheduler(),
        "blended kernels": MultiKernelGreedyScheduler(features),
    }
    accumulators = {
        name: {"slow": [], "fast": [], "value": []} for name in strategies
    }
    for run in range(runs):
        rng = np.random.default_rng(seed + run)
        arrivals = uniform_arrivals(users, PERIOD_S, budget, rng)
        for name in strategies:
            if name == "single slow kernel":
                problem = SchedulingProblem(
                    period, arrivals, GaussianKernel(slow_sigma)
                )
                schedule = GreedyScheduler().solve(problem)
            elif name == "single fast kernel":
                problem = SchedulingProblem(
                    period, arrivals, GaussianKernel(fast_sigma)
                )
                schedule = GreedyScheduler().solve(problem)
            else:
                problem = SchedulingProblem(
                    period, arrivals, GaussianKernel(slow_sigma)
                )
                schedule = MultiKernelGreedyScheduler(features).solve(problem)
            evaluation = MultiKernelObjective(period, features)
            for instant in schedule.pooled_instants:
                evaluation.add(instant)
            coverage = evaluation.per_feature_coverage()
            accumulators[name]["slow"].append(coverage["slow"])
            accumulators[name]["fast"].append(coverage["fast"])
            accumulators[name]["value"].append(evaluation.value())
    return [
        MultiKernelPoint(
            strategy=name,
            slow_feature_coverage=float(np.mean(data["slow"])),
            fast_feature_coverage=float(np.mean(data["fast"])),
            blended_value=float(np.mean(data["value"])),
        )
        for name, data in accumulators.items()
    ]


# ----------------------------------------------------------------------
# spam resistance of the aggregation
# ----------------------------------------------------------------------
@dataclass
class SpamPoint:
    """How far one spam ranking drags each aggregator from the honest
    consensus (Kemeny distance; 0 = unaffected)."""

    spam_weight: int
    footrule_drift: float
    borda_drift: float


def run_spam_resistance_ablation(
    *,
    num_items: int = 7,
    honest_rankings: int = 5,
    swaps_per_honest: int = 3,
    spam_weights: tuple[int, ...] = (0, 1, 2, 3, 4, 5),
    instances: int = 20,
    seed: int = 0,
) -> list[SpamPoint]:
    """Quantify the paper's reason for choosing the Kemeny distance.

    The honest inputs are noisy copies of one true ranking (a few random
    adjacent swaps each, weight 1); the spammer submits the *reversed*
    true ranking with growing weight. We measure the Kemeny distance of
    each aggregate from the true ranking, averaged over instances: a
    median-like aggregator (footrule/Kemeny family) should resist the
    outlier far better than the mean-like Borda count.
    """
    from repro.core.ranking.distances import kemeny_distance

    rng = np.random.default_rng(seed)
    items = [f"item-{index}" for index in range(num_items)]
    drifts: dict[int, list[list[float]]] = {w: [] for w in spam_weights}
    for _ in range(instances):
        truth = Ranking(rng.permutation(items).tolist())
        honest = []
        for _ in range(honest_rankings):
            order = list(truth.items)
            for _ in range(swaps_per_honest):
                position = int(rng.integers(0, num_items - 1))
                order[position], order[position + 1] = (
                    order[position + 1],
                    order[position],
                )
            honest.append(Ranking(order))
        spam = Ranking(reversed(truth.items))
        for weight in spam_weights:
            collection = honest + ([spam] if weight > 0 else [])
            weights = [1] * honest_rankings + ([weight] if weight > 0 else [])
            flow = aggregate_footrule(collection, weights)
            borda = borda_count(collection, weights)
            drifts[weight].append(
                [
                    float(kemeny_distance(flow, truth)),
                    float(kemeny_distance(borda, truth)),
                ]
            )
    return [
        SpamPoint(
            spam_weight=weight,
            footrule_drift=float(np.mean([pair[0] for pair in drifts[weight]])),
            borda_drift=float(np.mean([pair[1] for pair in drifts[weight]])),
        )
        for weight in spam_weights
    ]


# ----------------------------------------------------------------------
# online vs offline greedy
# ----------------------------------------------------------------------
@dataclass
class OnlinePoint:
    users: int
    online_coverage: float
    offline_coverage: float

    @property
    def ratio(self) -> float:
        """Online / offline coverage (1.0 = no price paid)."""
        if self.offline_coverage == 0:
            return 1.0
        return self.online_coverage / self.offline_coverage


def _online_coverage(problem: SchedulingProblem) -> float:
    """Simulate the server's arrival-order incremental scheduling.

    Users are processed in arrival order; each spends their budget
    greedily over [arrival, departure] given everything already
    committed — exactly what
    :class:`repro.server.scheduler_service.SensingSchedulerService` does
    per PARTICIPATE request.
    """
    from repro.core.scheduling.objective import CoverageObjective

    objective = CoverageObjective(problem.period, problem.kernel)
    order = sorted(range(len(problem.users)), key=lambda i: problem.users[i].arrival)
    for user_index in order:
        lo, hi = problem.user_window(user_index)
        if hi <= lo:
            continue
        taken: set[int] = set()
        for _ in range(problem.users[user_index].budget):
            gains = objective.gains_fast()[lo:hi]
            for instant in taken:
                gains[instant - lo] = -np.inf
            best = int(np.argmax(gains))
            if gains[best] <= 1e-12:
                break
            objective.add(lo + best)
            taken.add(lo + best)
    return objective.average_coverage()


def run_online_ablation(
    *,
    user_counts: tuple[int, ...] = (10, 20, 30, 40, 50),
    budget: int = 17,
    runs: int = 5,
    seed: int = 0,
) -> list[OnlinePoint]:
    """Compare arrival-order online scheduling with offline greedy."""
    period = SchedulingPeriod(0.0, PERIOD_S, 1080)
    kernel = GaussianKernel(sigma=10.0)
    points = []
    for users in user_counts:
        online_values, offline_values = [], []
        for run in range(runs):
            rng = np.random.default_rng(seed + run)
            problem = SchedulingProblem(
                period, uniform_arrivals(users, PERIOD_S, budget, rng), kernel
            )
            online_values.append(_online_coverage(problem))
            offline_values.append(
                GreedyScheduler().solve(problem).average_coverage
            )
        points.append(
            OnlinePoint(
                users=users,
                online_coverage=float(np.mean(online_values)),
                offline_coverage=float(np.mean(offline_values)),
            )
        )
    return points


# ----------------------------------------------------------------------
# aggregation quality
# ----------------------------------------------------------------------
@dataclass
class AggregationStats:
    """Mean weighted-Kemeny ratios vs the exact optimum (1.0 = optimal)."""

    instances: int = 0
    footrule_ratio: float = 0.0
    refined_ratio: float = 0.0
    borda_ratio: float = 0.0
    footrule_optimal_fraction: float = 0.0
    per_instance: list[dict] = field(default_factory=list)


def run_aggregation_ablation(
    *,
    instances: int = 40,
    num_items: int = 6,
    num_rankings: int = 4,
    seed: int = 0,
) -> AggregationStats:
    """Compare aggregation heuristics against the exact Kemeny optimum."""
    rng = np.random.default_rng(seed)
    items = [f"item-{index}" for index in range(num_items)]
    footrule_ratios, refined_ratios, borda_ratios = [], [], []
    optimal_hits = 0
    stats = AggregationStats()
    for _ in range(instances):
        collection = [
            Ranking(rng.permutation(items).tolist()) for _ in range(num_rankings)
        ]
        weights = [int(value) for value in rng.integers(1, 6, size=num_rankings)]
        optimum = brute_force_kemeny(collection, weights)
        optimum_value = weighted_kemeny_distance(optimum, collection, weights)
        flow = aggregate_footrule(collection, weights)
        refined = refine_by_adjacent_swaps(flow, collection, weights)
        borda = borda_count(collection, weights)

        def ratio(candidate: Ranking) -> float:
            value = weighted_kemeny_distance(candidate, collection, weights)
            if optimum_value == 0:
                return 1.0 if value == 0 else float("inf")
            return value / optimum_value

        footrule_ratio = ratio(flow)
        footrule_ratios.append(footrule_ratio)
        refined_ratios.append(ratio(refined))
        borda_ratios.append(ratio(borda))
        if footrule_ratio <= 1.0 + 1e-12:
            optimal_hits += 1
        stats.per_instance.append(
            {
                "optimum": optimum_value,
                "footrule": weighted_kemeny_distance(flow, collection, weights),
                "refined": weighted_kemeny_distance(refined, collection, weights),
                "borda": weighted_kemeny_distance(borda, collection, weights),
            }
        )
    stats.instances = instances
    stats.footrule_ratio = float(np.mean(footrule_ratios))
    stats.refined_ratio = float(np.mean(refined_ratios))
    stats.borda_ratio = float(np.mean(borda_ratios))
    stats.footrule_optimal_fraction = optimal_hits / instances
    return stats
