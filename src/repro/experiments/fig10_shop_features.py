"""Figure 10: feature data for the three coffee shops.

Four features (temperature, brightness, background noise, Wi-Fi signal
strength) over Tim Hortons, B&N Cafe and Starbucks, from a simulated
field test with 12 phones per shop.

Shape to hold (paper ground truths, Figs. 12/13): Starbucks is crowded,
noisy and dark; Tim Hortons is colder than B&N but the brightest; B&N is
quiet, bright and warm with the best Wi-Fi.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.server.visualization import bar_chart, feature_table
from repro.sim.fieldtest import FieldTestConfig, FieldTestResult, run_field_test
from repro.sim.scenarios import (
    SHOP_PHONES,
    shop_feature_pipeline,
    syracuse_coffee_shops,
)

FEATURE_ORDER = ["temperature", "brightness", "noise", "wifi"]

EXPECTED_ORDERINGS = {
    "temperature": ["Tim Hortons", "B&N Cafe", "Starbucks"],
    "brightness": ["Starbucks", "B&N Cafe", "Tim Hortons"],
    "noise": ["B&N Cafe", "Tim Hortons", "Starbucks"],
    "wifi": ["Starbucks", "Tim Hortons", "B&N Cafe"],
}


@dataclass
class Fig10Result:
    features: dict[str, dict[str, float]]
    raw: dict[str, FieldTestResult]

    def ordering(self, feature: str) -> list[str]:
        """Place names sorted ascending by ``feature``."""
        return sorted(self.features, key=lambda name: self.features[name][feature])

    def matches_expected(self) -> bool:
        """Whether every feature ordering matches the paper's ground truth."""
        return all(
            self.ordering(feature) == expected
            for feature, expected in EXPECTED_ORDERINGS.items()
        )


def run_fig10(
    *, seed: int = 2014, budget: int = 40, phones: int = SHOP_PHONES
) -> Fig10Result:
    """Run the coffee-shop field tests and collect Fig. 10's data."""
    rng = np.random.default_rng(seed)
    pipeline = shop_feature_pipeline()
    config = FieldTestConfig(phones=phones, budget=budget)
    features: dict[str, dict[str, float]] = {}
    raw: dict[str, FieldTestResult] = {}
    for place in syracuse_coffee_shops(rng):
        result = run_field_test(place, pipeline, config, rng)
        features[place.name] = result.features
        raw[place.name] = result
    return Fig10Result(features=features, raw=raw)


def format_fig10(result: Fig10Result) -> str:
    """Render Fig. 10 as text bar charts plus the feature table."""
    sections = [feature_table(result.features, FEATURE_ORDER), ""]
    for feature in FEATURE_ORDER:
        values = {name: result.features[name][feature] for name in result.features}
        sections.append(bar_chart(f"Fig. 10 — {feature}", values))
        sections.append("")
    return "\n".join(sections)
