"""Figure 14: performance of the sensing scheduling algorithm.

The paper's setup (Section V-C): a 3-hour scheduling period divided into
1080 instants (10 s spacing); user arrivals uniform in [0, 10800] with
departures uniform in [arrival, 10800]; Gaussian coverage kernel with
μ = 0, σ = 10 s; the baseline senses every 10 s from arrival for the
budget; every point is the mean over 10 runs.

* Fig. 14(a): users ∈ {10, 15, …, 50}, budget fixed at 17.
* Fig. 14(b): budget ∈ {15, 16, …, 25}, users fixed at 40.

Shapes to hold: greedy dominates the baseline everywhere; coverage rises
with users and budget; the baseline sits near 0.5 at 40 users where
greedy exceeds 0.8; the average improvement is on the order of the
paper's reported 65%.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.scheduling import (
    DEFAULT_BACKEND,
    GaussianKernel,
    GreedyScheduler,
    PeriodicBaselineScheduler,
    SchedulingPeriod,
    SchedulingProblem,
)
from repro.sim.arrivals import uniform_arrivals

PERIOD_S = 10_800.0
NUM_INSTANTS = 1080
SIGMA_S = 10.0
BASELINE_INTERVAL_S = 10.0
DEFAULT_RUNS = 10

USER_SWEEP = list(range(10, 51, 5))
FIXED_BUDGET = 17
BUDGET_SWEEP = list(range(15, 26))
FIXED_USERS = 40


@dataclass
class SweepPoint:
    """One x-axis point: mean and std over the runs, both algorithms."""

    x: int
    greedy_mean: float
    greedy_std: float
    baseline_mean: float
    baseline_std: float

    @property
    def improvement(self) -> float:
        """Relative improvement of greedy over the baseline."""
        if self.baseline_mean == 0:
            return float("inf")
        return (self.greedy_mean - self.baseline_mean) / self.baseline_mean


@dataclass
class SweepResult:
    """A full Fig. 14 panel."""

    x_label: str
    points: list[SweepPoint] = field(default_factory=list)

    @property
    def mean_improvement(self) -> float:
        return float(np.mean([point.improvement for point in self.points]))

    def greedy_series(self) -> list[tuple[int, float]]:
        """The greedy curve as (x, mean coverage) pairs."""
        return [(point.x, point.greedy_mean) for point in self.points]

    def baseline_series(self) -> list[tuple[int, float]]:
        """The baseline curve as (x, mean coverage) pairs."""
        return [(point.x, point.baseline_mean) for point in self.points]


def _one_point(
    *, users_count: int, budget: int, runs: int, seed: int,
    backend: str = DEFAULT_BACKEND,
) -> SweepPoint:
    period = SchedulingPeriod(0.0, PERIOD_S, NUM_INSTANTS)
    kernel = GaussianKernel(sigma=SIGMA_S)
    greedy = GreedyScheduler(backend=backend)
    baseline = PeriodicBaselineScheduler(interval_s=BASELINE_INTERVAL_S)
    greedy_values = []
    baseline_values = []
    for run in range(runs):
        rng = np.random.default_rng(seed + run)
        users = uniform_arrivals(users_count, PERIOD_S, budget, rng)
        problem = SchedulingProblem(period, users, kernel)
        greedy_values.append(greedy.solve(problem).average_coverage)
        baseline_values.append(baseline.solve(problem).average_coverage)
    return SweepPoint(
        x=users_count if budget == FIXED_BUDGET else budget,
        greedy_mean=float(np.mean(greedy_values)),
        greedy_std=float(np.std(greedy_values)),
        baseline_mean=float(np.mean(baseline_values)),
        baseline_std=float(np.std(baseline_values)),
    )


def run_fig14a(
    *, runs: int = DEFAULT_RUNS, seed: int = 0, backend: str = DEFAULT_BACKEND
) -> SweepResult:
    """Fig. 14(a): average coverage vs number of mobile users."""
    result = SweepResult(x_label="number of mobile users")
    for users_count in USER_SWEEP:
        result.points.append(
            _one_point(
                users_count=users_count,
                budget=FIXED_BUDGET,
                runs=runs,
                seed=seed,
                backend=backend,
            )
        )
    return result


def run_fig14b(
    *, runs: int = DEFAULT_RUNS, seed: int = 0, backend: str = DEFAULT_BACKEND
) -> SweepResult:
    """Fig. 14(b): average coverage vs sensing budget."""
    result = SweepResult(x_label="budget")
    for budget in BUDGET_SWEEP:
        point = _one_point(
            users_count=FIXED_USERS,
            budget=budget,
            runs=runs,
            seed=seed,
            backend=backend,
        )
        point.x = budget
        result.points.append(point)
    return result


def format_sweep(result: SweepResult, title: str) -> str:
    """Render a panel as the series the paper plots."""
    lines = [
        title,
        f"{result.x_label:>24}  {'greedy':>10}  {'(std)':>8}  "
        f"{'baseline':>10}  {'(std)':>8}  {'improv.':>8}",
    ]
    for point in result.points:
        lines.append(
            f"{point.x:>24}  {point.greedy_mean:>10.4f}  {point.greedy_std:>8.4f}  "
            f"{point.baseline_mean:>10.4f}  {point.baseline_std:>8.4f}  "
            f"{point.improvement * 100:>7.1f}%"
        )
    lines.append(f"mean improvement: {result.mean_improvement * 100:.1f}%")
    return "\n".join(lines)
