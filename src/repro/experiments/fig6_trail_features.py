"""Figure 6: feature data for the three hiking trails.

The paper's Fig. 6 shows five bar charts (temperature, humidity,
roughness, curvature, altitude change) over Green Lake Trail, Long Trail
and Cliff Trail. The reproduction runs the simulated field test
(7 phones per trail, 11:00–14:00) and reports the same five features.

Shape to hold (from the paper's ground truths, Figs. 8/9): Green Lake is
the most humid, coolest, flattest and smoothest; Cliff is the roughest,
twistiest and has the largest altitude change; Long sits between on
difficulty and is the driest.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.server.visualization import bar_chart, feature_table
from repro.sim.fieldtest import FieldTestConfig, FieldTestResult, run_field_test
from repro.sim.scenarios import (
    TRAIL_PHONES,
    syracuse_trails,
    trail_feature_pipeline,
)

FEATURE_ORDER = ["temperature", "humidity", "roughness", "curvature", "altitude_change"]

# The orderings Fig. 6 must show (ascending place order per feature).
EXPECTED_ORDERINGS = {
    "temperature": ["Green Lake Trail", "Cliff Trail", "Long Trail"],
    "humidity": ["Long Trail", "Cliff Trail", "Green Lake Trail"],
    "roughness": ["Green Lake Trail", "Long Trail", "Cliff Trail"],
    "curvature": ["Green Lake Trail", "Long Trail", "Cliff Trail"],
    "altitude_change": ["Green Lake Trail", "Long Trail", "Cliff Trail"],
}


@dataclass
class Fig6Result:
    """Feature data per trail plus the field-test diagnostics."""

    features: dict[str, dict[str, float]]  # place name → feature → value
    raw: dict[str, FieldTestResult]

    def ordering(self, feature: str) -> list[str]:
        """Place names sorted ascending by ``feature``."""
        return sorted(self.features, key=lambda name: self.features[name][feature])

    def matches_expected(self) -> bool:
        """Whether every feature ordering matches the paper's ground truth."""
        return all(
            self.ordering(feature) == expected
            for feature, expected in EXPECTED_ORDERINGS.items()
        )


def run_fig6(
    *, seed: int = 2014, budget: int = 40, phones: int = TRAIL_PHONES
) -> Fig6Result:
    """Run the hiking-trail field tests and collect Fig. 6's data."""
    rng = np.random.default_rng(seed)
    pipeline = trail_feature_pipeline()
    config = FieldTestConfig(phones=phones, budget=budget)
    features: dict[str, dict[str, float]] = {}
    raw: dict[str, FieldTestResult] = {}
    for place in syracuse_trails(rng):
        result = run_field_test(place, pipeline, config, rng)
        features[place.name] = result.features
        raw[place.name] = result
    return Fig6Result(features=features, raw=raw)


def format_fig6(result: Fig6Result) -> str:
    """Render the figure as text: one bar chart per feature, plus H."""
    sections = [feature_table(result.features, FEATURE_ORDER), ""]
    for feature in FEATURE_ORDER:
        values = {name: result.features[name][feature] for name in result.features}
        sections.append(bar_chart(f"Fig. 6 — {feature}", values))
        sections.append("")
    return "\n".join(sections)
