"""AST node definitions for LuaLite.

All nodes carry the source line where they start, so runtime errors can
point back at the script the server shipped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union


@dataclass(frozen=True)
class Node:
    line: int


# ----------------------------------------------------------------------
# expressions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class NilLiteral(Node):
    pass


@dataclass(frozen=True)
class BoolLiteral(Node):
    value: bool


@dataclass(frozen=True)
class NumberLiteral(Node):
    value: int | float


@dataclass(frozen=True)
class StringLiteral(Node):
    value: str


@dataclass(frozen=True)
class Name(Node):
    identifier: str


@dataclass(frozen=True)
class BinaryOp(Node):
    operator: str
    left: "Expression"
    right: "Expression"


@dataclass(frozen=True)
class UnaryOp(Node):
    operator: str
    operand: "Expression"


@dataclass(frozen=True)
class Index(Node):
    """``obj[key]`` or ``obj.key`` (the latter parses to a string key)."""

    obj: "Expression"
    key: "Expression"


@dataclass(frozen=True)
class Call(Node):
    callee: "Expression"
    arguments: tuple["Expression", ...]


@dataclass(frozen=True)
class FunctionExpr(Node):
    parameters: tuple[str, ...]
    body: "Block"


@dataclass(frozen=True)
class TableField:
    """One entry of a table constructor.

    ``key`` is ``None`` for positional (array-part) entries.
    """

    key: Union["Expression", None]
    value: "Expression"


@dataclass(frozen=True)
class TableConstructor(Node):
    fields: tuple[TableField, ...]


Expression = Union[
    NilLiteral,
    BoolLiteral,
    NumberLiteral,
    StringLiteral,
    Name,
    BinaryOp,
    UnaryOp,
    Index,
    Call,
    FunctionExpr,
    TableConstructor,
]


# ----------------------------------------------------------------------
# statements
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Block:
    statements: tuple["Statement", ...] = field(default_factory=tuple)


@dataclass(frozen=True)
class LocalAssign(Node):
    names: tuple[str, ...]
    values: tuple[Expression, ...]


@dataclass(frozen=True)
class Assign(Node):
    """Assignment to names and/or table fields."""

    targets: tuple[Expression, ...]  # Name or Index nodes
    values: tuple[Expression, ...]


@dataclass(frozen=True)
class ExpressionStatement(Node):
    expression: Expression  # must be a Call in Lua; we enforce that in the parser


@dataclass(frozen=True)
class If(Node):
    """``if``/``elseif`` chain: list of (condition, block), optional else."""

    branches: tuple[tuple[Expression, Block], ...]
    otherwise: Block | None


@dataclass(frozen=True)
class While(Node):
    condition: Expression
    body: Block


@dataclass(frozen=True)
class NumericFor(Node):
    variable: str
    start: Expression
    stop: Expression
    step: Expression | None
    body: Block


@dataclass(frozen=True)
class GenericFor(Node):
    """``for k, v in expr do ... end`` (single iterator expression)."""

    names: tuple[str, ...]
    iterator: Expression
    body: Block


@dataclass(frozen=True)
class FunctionDecl(Node):
    """``function name(...)`` or ``local function name(...)``."""

    name: str
    function: FunctionExpr
    is_local: bool


@dataclass(frozen=True)
class Return(Node):
    value: Expression | None


@dataclass(frozen=True)
class Break(Node):
    pass


Statement = Union[
    LocalAssign,
    Assign,
    ExpressionStatement,
    If,
    While,
    NumericFor,
    GenericFor,
    FunctionDecl,
    Return,
    Break,
]
