"""Recursive-descent parser for LuaLite.

Operator precedence follows Lua 5.1 (lowest first)::

    or
    and
    <  >  <=  >=  ~=  ==
    ..            (right associative)
    +  -
    *  /  %
    not  #  -     (unary)
    ^             (right associative, binds tighter than unary)
"""

from __future__ import annotations

from repro.common.errors import ScriptSyntaxError
from repro.script import ast_nodes as ast
from repro.script.lexer import Token, TokenKind, tokenize

_COMPARISON_OPS = ("<", ">", "<=", ">=", "~=", "==")
_ADDITIVE_OPS = ("+", "-")
_MULTIPLICATIVE_OPS = ("*", "/", "%")


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.position = 0

    # ------------------------------------------------------------------
    # token plumbing
    # ------------------------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.current
        if token.kind is not TokenKind.EOF:
            self.position += 1
        return token

    def error(self, message: str, token: Token | None = None) -> ScriptSyntaxError:
        token = token or self.current
        return ScriptSyntaxError(message, token.line, token.column)

    def expect_operator(self, symbol: str) -> Token:
        if not self.current.is_operator(symbol):
            raise self.error(f"expected {symbol!r}, found {self.current.value!r}")
        return self.advance()

    def expect_keyword(self, word: str) -> Token:
        if not self.current.is_keyword(word):
            raise self.error(f"expected {word!r}, found {self.current.value!r}")
        return self.advance()

    def expect_name(self) -> str:
        if self.current.kind is not TokenKind.NAME:
            raise self.error(f"expected a name, found {self.current.value!r}")
        return str(self.advance().value)

    def at_block_end(self) -> bool:
        token = self.current
        return token.kind is TokenKind.EOF or (
            token.kind is TokenKind.KEYWORD
            and token.value in ("end", "else", "elseif")
        )

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def parse_block(self) -> ast.Block:
        statements: list[ast.Statement] = []
        while not self.at_block_end():
            if self.current.is_operator(";"):
                self.advance()
                continue
            statement = self.parse_statement()
            statements.append(statement)
            if isinstance(statement, (ast.Return, ast.Break)):
                # Lua requires return/break to end a block.
                break
        return ast.Block(statements=tuple(statements))

    def parse_statement(self) -> ast.Statement:
        token = self.current
        if token.is_keyword("local"):
            return self.parse_local()
        if token.is_keyword("if"):
            return self.parse_if()
        if token.is_keyword("while"):
            return self.parse_while()
        if token.is_keyword("for"):
            return self.parse_for()
        if token.is_keyword("function"):
            return self.parse_function_decl(is_local=False)
        if token.is_keyword("return"):
            self.advance()
            value: ast.Expression | None = None
            if not self.at_block_end() and not self.current.is_operator(";"):
                value = self.parse_expression()
            if self.current.is_operator(";"):
                self.advance()
            return ast.Return(line=token.line, value=value)
        if token.is_keyword("break"):
            self.advance()
            return ast.Break(line=token.line)
        if token.is_keyword("do"):
            raise self.error("bare do...end blocks are not supported in LuaLite")
        return self.parse_expression_or_assignment()

    def parse_local(self) -> ast.Statement:
        token = self.expect_keyword("local")
        if self.current.is_keyword("function"):
            return self.parse_function_decl(is_local=True, local_token=token)
        names = [self.expect_name()]
        while self.current.is_operator(","):
            self.advance()
            names.append(self.expect_name())
        values: list[ast.Expression] = []
        if self.current.is_operator("="):
            self.advance()
            values.append(self.parse_expression())
            while self.current.is_operator(","):
                self.advance()
                values.append(self.parse_expression())
        return ast.LocalAssign(
            line=token.line, names=tuple(names), values=tuple(values)
        )

    def parse_if(self) -> ast.If:
        token = self.expect_keyword("if")
        branches: list[tuple[ast.Expression, ast.Block]] = []
        condition = self.parse_expression()
        self.expect_keyword("then")
        branches.append((condition, self.parse_block()))
        otherwise: ast.Block | None = None
        while True:
            if self.current.is_keyword("elseif"):
                self.advance()
                condition = self.parse_expression()
                self.expect_keyword("then")
                branches.append((condition, self.parse_block()))
                continue
            if self.current.is_keyword("else"):
                self.advance()
                otherwise = self.parse_block()
            self.expect_keyword("end")
            break
        return ast.If(line=token.line, branches=tuple(branches), otherwise=otherwise)

    def parse_while(self) -> ast.While:
        token = self.expect_keyword("while")
        condition = self.parse_expression()
        self.expect_keyword("do")
        body = self.parse_block()
        self.expect_keyword("end")
        return ast.While(line=token.line, condition=condition, body=body)

    def parse_for(self) -> "ast.NumericFor | ast.GenericFor":
        token = self.expect_keyword("for")
        names = [self.expect_name()]
        while self.current.is_operator(","):
            self.advance()
            names.append(self.expect_name())
        if self.current.is_keyword("in"):
            self.advance()
            iterator = self.parse_expression()
            self.expect_keyword("do")
            body = self.parse_block()
            self.expect_keyword("end")
            return ast.GenericFor(
                line=token.line, names=tuple(names), iterator=iterator, body=body
            )
        if len(names) != 1:
            raise self.error("numeric for takes exactly one variable", token)
        variable = names[0]
        self.expect_operator("=")
        start = self.parse_expression()
        self.expect_operator(",")
        stop = self.parse_expression()
        step: ast.Expression | None = None
        if self.current.is_operator(","):
            self.advance()
            step = self.parse_expression()
        self.expect_keyword("do")
        body = self.parse_block()
        self.expect_keyword("end")
        return ast.NumericFor(
            line=token.line,
            variable=variable,
            start=start,
            stop=stop,
            step=step,
            body=body,
        )

    def parse_function_decl(
        self, *, is_local: bool, local_token: Token | None = None
    ) -> ast.FunctionDecl:
        token = local_token or self.current
        self.expect_keyword("function")
        name = self.expect_name()
        function = self.parse_function_body(token.line)
        return ast.FunctionDecl(
            line=token.line, name=name, function=function, is_local=is_local
        )

    def parse_function_body(self, line: int) -> ast.FunctionExpr:
        self.expect_operator("(")
        parameters: list[str] = []
        if not self.current.is_operator(")"):
            parameters.append(self.expect_name())
            while self.current.is_operator(","):
                self.advance()
                parameters.append(self.expect_name())
        self.expect_operator(")")
        body = self.parse_block()
        self.expect_keyword("end")
        return ast.FunctionExpr(line=line, parameters=tuple(parameters), body=body)

    def parse_expression_or_assignment(self) -> ast.Statement:
        token = self.current
        first = self.parse_prefix_expression()
        if self.current.is_operator("=") or self.current.is_operator(","):
            targets = [first]
            while self.current.is_operator(","):
                self.advance()
                targets.append(self.parse_prefix_expression())
            self.expect_operator("=")
            values = [self.parse_expression()]
            while self.current.is_operator(","):
                self.advance()
                values.append(self.parse_expression())
            for target in targets:
                if not isinstance(target, (ast.Name, ast.Index)):
                    raise self.error("invalid assignment target", token)
            return ast.Assign(
                line=token.line, targets=tuple(targets), values=tuple(values)
            )
        if not isinstance(first, ast.Call):
            raise self.error("expression statements must be function calls", token)
        return ast.ExpressionStatement(line=token.line, expression=first)

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def parse_expression(self) -> ast.Expression:
        return self.parse_or()

    def _binary_chain(self, operators: tuple[str, ...], parse_next) -> ast.Expression:
        left = parse_next()
        while self.current.kind is TokenKind.OPERATOR and self.current.value in operators:
            operator_token = self.advance()
            right = parse_next()
            left = ast.BinaryOp(
                line=operator_token.line,
                operator=str(operator_token.value),
                left=left,
                right=right,
            )
        return left

    def parse_or(self) -> ast.Expression:
        left = self.parse_and()
        while self.current.is_keyword("or"):
            token = self.advance()
            right = self.parse_and()
            left = ast.BinaryOp(line=token.line, operator="or", left=left, right=right)
        return left

    def parse_and(self) -> ast.Expression:
        left = self.parse_comparison()
        while self.current.is_keyword("and"):
            token = self.advance()
            right = self.parse_comparison()
            left = ast.BinaryOp(line=token.line, operator="and", left=left, right=right)
        return left

    def parse_comparison(self) -> ast.Expression:
        return self._binary_chain(_COMPARISON_OPS, self.parse_concat)

    def parse_concat(self) -> ast.Expression:
        left = self.parse_additive()
        if self.current.is_operator(".."):
            token = self.advance()
            right = self.parse_concat()  # right associative
            return ast.BinaryOp(line=token.line, operator="..", left=left, right=right)
        return left

    def parse_additive(self) -> ast.Expression:
        return self._binary_chain(_ADDITIVE_OPS, self.parse_multiplicative)

    def parse_multiplicative(self) -> ast.Expression:
        return self._binary_chain(_MULTIPLICATIVE_OPS, self.parse_unary)

    def parse_unary(self) -> ast.Expression:
        token = self.current
        if token.is_keyword("not") or token.is_operator("-") or token.is_operator("#"):
            self.advance()
            operand = self.parse_unary()
            operator = "not" if token.is_keyword("not") else str(token.value)
            return ast.UnaryOp(line=token.line, operator=operator, operand=operand)
        return self.parse_power()

    def parse_power(self) -> ast.Expression:
        base = self.parse_prefix_expression()
        if self.current.is_operator("^"):
            token = self.advance()
            # Lua: ^ is right associative and binds tighter than unary on
            # the right operand.
            exponent = self.parse_unary()
            return ast.BinaryOp(line=token.line, operator="^", left=base, right=exponent)
        return base

    def parse_prefix_expression(self) -> ast.Expression:
        expression = self.parse_atom()
        while True:
            token = self.current
            if token.is_operator("."):
                self.advance()
                name = self.expect_name()
                expression = ast.Index(
                    line=token.line,
                    obj=expression,
                    key=ast.StringLiteral(line=token.line, value=name),
                )
            elif token.is_operator("["):
                self.advance()
                key = self.parse_expression()
                self.expect_operator("]")
                expression = ast.Index(line=token.line, obj=expression, key=key)
            elif token.is_operator("("):
                self.advance()
                arguments: list[ast.Expression] = []
                if not self.current.is_operator(")"):
                    arguments.append(self.parse_expression())
                    while self.current.is_operator(","):
                        self.advance()
                        arguments.append(self.parse_expression())
                self.expect_operator(")")
                expression = ast.Call(
                    line=token.line, callee=expression, arguments=tuple(arguments)
                )
            elif token.kind is TokenKind.STRING and isinstance(expression, (ast.Name, ast.Index)):
                # Lua sugar: f "literal" calls f with one string argument.
                self.advance()
                expression = ast.Call(
                    line=token.line,
                    callee=expression,
                    arguments=(
                        ast.StringLiteral(line=token.line, value=str(token.value)),
                    ),
                )
            else:
                return expression

    def parse_atom(self) -> ast.Expression:
        token = self.current
        if token.kind is TokenKind.NUMBER:
            self.advance()
            assert isinstance(token.value, (int, float))
            return ast.NumberLiteral(line=token.line, value=token.value)
        if token.kind is TokenKind.STRING:
            self.advance()
            return ast.StringLiteral(line=token.line, value=str(token.value))
        if token.is_keyword("nil"):
            self.advance()
            return ast.NilLiteral(line=token.line)
        if token.is_keyword("true"):
            self.advance()
            return ast.BoolLiteral(line=token.line, value=True)
        if token.is_keyword("false"):
            self.advance()
            return ast.BoolLiteral(line=token.line, value=False)
        if token.kind is TokenKind.NAME:
            self.advance()
            return ast.Name(line=token.line, identifier=str(token.value))
        if token.is_keyword("function"):
            self.advance()
            return self.parse_function_body(token.line)
        if token.is_operator("("):
            self.advance()
            expression = self.parse_expression()
            self.expect_operator(")")
            return expression
        if token.is_operator("{"):
            return self.parse_table_constructor()
        raise self.error(f"unexpected token {token.value!r}")

    def parse_table_constructor(self) -> ast.TableConstructor:
        token = self.expect_operator("{")
        fields: list[ast.TableField] = []
        while not self.current.is_operator("}"):
            if self.current.is_operator("["):
                self.advance()
                key: ast.Expression | None = self.parse_expression()
                self.expect_operator("]")
                self.expect_operator("=")
                value = self.parse_expression()
            elif (
                self.current.kind is TokenKind.NAME
                and self.tokens[self.position + 1].is_operator("=")
            ):
                name = self.expect_name()
                key = ast.StringLiteral(line=token.line, value=name)
                self.expect_operator("=")
                value = self.parse_expression()
            else:
                key = None
                value = self.parse_expression()
            fields.append(ast.TableField(key=key, value=value))
            if self.current.is_operator(",") or self.current.is_operator(";"):
                self.advance()
            elif not self.current.is_operator("}"):
                raise self.error("expected ',' or '}' in table constructor")
        self.expect_operator("}")
        return ast.TableConstructor(line=token.line, fields=tuple(fields))


def parse(source: str) -> ast.Block:
    """Parse LuaLite ``source`` into a :class:`~repro.script.ast_nodes.Block`."""
    parser = _Parser(tokenize(source))
    block = parser.parse_block()
    if parser.current.kind is not TokenKind.EOF:
        raise parser.error(f"unexpected {parser.current.value!r} after block")
    return block
