"""The sandboxed environment sensing scripts run in.

Section II-A: "security can be enforced here by only allowing a white
list of unharmful functions to be called." The sandbox builds a global
environment containing exactly:

* a small pure standard library (``math``/``string``/``table`` helpers,
  ``tostring``/``tonumber``/``type``/``print``),
* whatever data-acquisition functions the host registers (on the phone,
  the Sensor Manager registers ``get_*_readings``-style functions).

Calling any other global raises
:class:`~repro.common.errors.ScriptSecurityError`; the task instance
reports that back to the server as a failed task.
"""

from __future__ import annotations

import math
from typing import Any, Callable

from repro.common.errors import ScriptRuntimeError
from repro.script.interpreter import (
    Environment,
    Interpreter,
    LuaIterator,
    LuaTable,
    from_python,
    is_truthy,
    lua_tostring,
    lua_type_name,
)
from repro.script.parser import parse


def _check_number(value: Any, what: str) -> int | float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ScriptRuntimeError(f"{what} expects a number, got {lua_type_name(value)}")
    return value


def _lua_tonumber(value: Any = None) -> Any:
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return value
    if isinstance(value, str):
        try:
            return int(value)
        except ValueError:
            try:
                return float(value)
            except ValueError:
                return None
    return None


def _string_sub(text: Any, start: Any, stop: Any = None) -> str:
    if not isinstance(text, str):
        raise ScriptRuntimeError("string.sub expects a string")
    length = len(text)
    i = int(_check_number(start, "string.sub"))
    j = int(_check_number(stop, "string.sub")) if stop is not None else -1
    if i < 0:
        i = max(length + i + 1, 1)
    elif i == 0:
        i = 1
    if j < 0:
        j = length + j + 1
    elif j > length:
        j = length
    if i > j:
        return ""
    return text[i - 1 : j]


def _table_insert(table: Any, value: Any) -> None:
    if not isinstance(table, LuaTable):
        raise ScriptRuntimeError("table.insert expects a table")
    table.set(table.length() + 1, value)


def _table_remove(table: Any, position: Any = None) -> Any:
    if not isinstance(table, LuaTable):
        raise ScriptRuntimeError("table.remove expects a table")
    length = table.length()
    if length == 0:
        return None
    index = int(_check_number(position, "table.remove")) if position is not None else length
    removed = table.get(index)
    for current in range(index, length):
        table.set(current, table.get(current + 1))
    table.set(length, None)
    return removed


def _table_concat(table: Any, separator: Any = "") -> str:
    if not isinstance(table, LuaTable):
        raise ScriptRuntimeError("table.concat expects a table")
    if not isinstance(separator, str):
        raise ScriptRuntimeError("table.concat separator must be a string")
    return separator.join(lua_tostring(item) for item in table.array_items())


def _make_math_table() -> LuaTable:
    table = LuaTable()
    entries: dict[str, Any] = {
        "floor": lambda value: math.floor(_check_number(value, "math.floor")),
        "ceil": lambda value: math.ceil(_check_number(value, "math.ceil")),
        "abs": lambda value: abs(_check_number(value, "math.abs")),
        "sqrt": lambda value: math.sqrt(_check_number(value, "math.sqrt")),
        "exp": lambda value: math.exp(_check_number(value, "math.exp")),
        "log": lambda value: math.log(_check_number(value, "math.log")),
        "min": lambda *values: min(_check_number(v, "math.min") for v in values),
        "max": lambda *values: max(_check_number(v, "math.max") for v in values),
        "pi": math.pi,
        "huge": math.inf,
    }
    for name, value in entries.items():
        table.set(name, value)
    return table


def _make_string_table() -> LuaTable:
    table = LuaTable()
    entries: dict[str, Any] = {
        "len": lambda text: len(text)
        if isinstance(text, str)
        else (_ for _ in ()).throw(ScriptRuntimeError("string.len expects a string")),
        "sub": _string_sub,
        "upper": lambda text: str(text).upper(),
        "lower": lambda text: str(text).lower(),
        "rep": lambda text, count: str(text) * int(_check_number(count, "string.rep")),
    }
    for name, value in entries.items():
        table.set(name, value)
    return table


def _make_table_table() -> LuaTable:
    table = LuaTable()
    for name, value in {
        "insert": _table_insert,
        "remove": _table_remove,
        "concat": _table_concat,
    }.items():
        table.set(name, value)
    return table


def build_base_environment(print_sink: Callable[[str], None] | None = None) -> Environment:
    """Build the pure (acquisition-free) global environment."""
    environment = Environment()
    environment.declare("math", _make_math_table())
    environment.declare("string", _make_string_table())
    environment.declare("table", _make_table_table())
    environment.declare("tostring", lua_tostring)
    environment.declare("tonumber", _lua_tonumber)
    environment.declare("type", lua_type_name)

    def lua_print(*values: Any) -> None:
        line = "\t".join(lua_tostring(value) for value in values)
        if print_sink is not None:
            print_sink(line)

    environment.declare("print", lua_print)

    def lua_assert(value: Any, message: Any = None) -> Any:
        if not is_truthy(value):
            raise ScriptRuntimeError(
                lua_tostring(message) if message is not None else "assertion failed!"
            )
        return value

    environment.declare("assert", lua_assert)

    def lua_pairs(table: Any) -> LuaIterator:
        if not isinstance(table, LuaTable):
            raise ScriptRuntimeError(
                f"pairs expects a table, got {lua_type_name(table)}"
            )
        return LuaIterator(table.items())

    def lua_ipairs(table: Any) -> LuaIterator:
        if not isinstance(table, LuaTable):
            raise ScriptRuntimeError(
                f"ipairs expects a table, got {lua_type_name(table)}"
            )
        return LuaIterator(
            [(index, table.get(index)) for index in range(1, table.length() + 1)]
        )

    environment.declare("pairs", lua_pairs)
    environment.declare("ipairs", lua_ipairs)
    return environment


class Sandbox:
    """A ready-to-run script environment with a host-controlled whitelist.

    >>> sandbox = Sandbox()
    >>> sandbox.register_function("get_answer", lambda: 42)
    >>> sandbox.run("return get_answer() + 1")
    43
    """

    def __init__(self, *, max_steps: int = 2_000_000) -> None:
        self._prints: list[str] = []
        self.environment = build_base_environment(print_sink=self._prints.append)
        self.interpreter = Interpreter(self.environment, max_steps=max_steps)

    @property
    def printed_lines(self) -> list[str]:
        """Lines the script printed (for diagnostics/telemetry)."""
        return list(self._prints)

    def register_function(self, name: str, function: Callable[..., Any]) -> None:
        """Whitelist a native function under ``name``.

        Values are converted at the boundary: table arguments arrive as
        plain Python lists/dicts, and Python lists/dicts returned by the
        function become Lua tables.
        """

        def bridge(*arguments: Any) -> Any:
            converted = [
                argument.to_python() if isinstance(argument, LuaTable) else argument
                for argument in arguments
            ]
            return from_python(function(*converted))

        self.environment.declare(name, bridge)

    def register_value(self, name: str, value: Any) -> None:
        """Expose a constant or table to scripts (converted from Python)."""
        self.environment.declare(name, from_python(value))

    def run(self, source: str) -> Any:
        """Parse and execute ``source``; returns the script's return value.

        Tables are returned as :class:`LuaTable`; call
        :meth:`LuaTable.to_python` (or use :meth:`run_to_python`) when the
        host wants plain Python structures.
        """
        return self.interpreter.run(parse(source))

    def run_to_python(self, source: str) -> Any:
        """Like :meth:`run` but deep-converts the result to Python types."""
        result = self.run(source)
        if isinstance(result, LuaTable):
            return result.to_python()
        return result
