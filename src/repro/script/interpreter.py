"""Tree-walking interpreter for LuaLite.

Semantics follow Lua where it matters to sensing scripts:

* ``nil`` and ``false`` are falsy, everything else (including 0) truthy,
* tables are associative with a 1-based array part; ``#`` is the border
  of the array part,
* ``and``/``or`` short-circuit and return operands, not booleans,
* functions are first-class closures,
* arithmetic on non-numbers and calling non-functions raise
  :class:`~repro.common.errors.ScriptRuntimeError` with the line number.

A step budget caps total evaluation work so a malicious or buggy script
shipped to a phone cannot spin forever.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable

from repro.common.errors import (
    ScriptRuntimeError,
    ScriptSecurityError,
)
from repro.script import ast_nodes as ast

LuaValue = Any  # None | bool | int | float | str | LuaTable | callable | LuaFunction


class LuaTable:
    """A Lua table: hash part plus 1-based array behaviour.

    Keys may be any hashable non-nil Lua value. Float keys with integral
    values are normalized to ints, as Lua does.
    """

    def __init__(self, initial: dict[Any, Any] | None = None) -> None:
        self._data: dict[Any, Any] = {}
        if initial:
            for key, value in initial.items():
                self.set(key, value)

    @staticmethod
    def _normalize_key(key: Any) -> Any:
        if isinstance(key, float) and key.is_integer():
            return int(key)
        return key

    def get(self, key: Any) -> Any:
        """The value at ``key`` (nil -> None)."""
        return self._data.get(self._normalize_key(key))

    def set(self, key: Any, value: Any) -> None:
        """Set ``key`` to ``value``; assigning nil deletes the key."""
        if key is None:
            raise ScriptRuntimeError("table index is nil")
        key = self._normalize_key(key)
        if value is None:
            self._data.pop(key, None)
        else:
            self._data[key] = value

    def length(self) -> int:
        """The ``#`` border: largest n with 1..n all present."""
        n = 0
        while (n + 1) in self._data:
            n += 1
        return n

    def keys(self) -> list[Any]:
        """All keys, in insertion order."""
        return list(self._data.keys())

    def items(self) -> list[tuple[Any, Any]]:
        """All (key, value) pairs, in insertion order."""
        return list(self._data.items())

    def array_items(self) -> list[Any]:
        """The array part ``t[1] .. t[#t]`` as a Python list."""
        return [self._data[index] for index in range(1, self.length() + 1)]

    def to_python(self) -> Any:
        """Deep-convert to Python: pure array parts become lists, else dicts."""
        length = self.length()
        if length == len(self._data):
            return [_to_python(value) for value in self.array_items()]
        return {key: _to_python(value) for key, value in self._data.items()}

    def __eq__(self, other: object) -> bool:
        return self is other  # Lua tables compare by identity

    def __hash__(self) -> int:
        return id(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LuaTable({self._data!r})"


def _to_python(value: Any) -> Any:
    return value.to_python() if isinstance(value, LuaTable) else value


def from_python(value: Any) -> LuaValue:
    """Convert a Python structure into Lua values (lists become 1-based)."""
    if isinstance(value, dict):
        table = LuaTable()
        for key, item in value.items():
            table.set(key, from_python(item))
        return table
    if isinstance(value, (list, tuple)):
        table = LuaTable()
        for index, item in enumerate(value, start=1):
            table.set(index, from_python(item))
        return table
    return value


class LuaIterator:
    """What ``pairs``/``ipairs`` return: a snapshot of (k, v) entries.

    LuaLite's generic ``for`` consumes these directly instead of Lua's
    stateless iterator-function protocol; the observable semantics for
    sensing scripts are the same.
    """

    def __init__(self, entries: list[tuple[Any, ...]]) -> None:
        self.entries = list(entries)


@dataclass
class LuaFunction:
    """A closure: parameters, body and the defining environment."""

    parameters: tuple[str, ...]
    body: ast.Block
    closure: "Environment"
    name: str = "<anonymous>"


class Environment:
    """A lexical scope chained to its parent."""

    __slots__ = ("_values", "parent")

    def __init__(self, parent: "Environment | None" = None) -> None:
        self._values: dict[str, Any] = {}
        self.parent = parent

    def declare(self, name: str, value: Any) -> None:
        """Introduce a new local binding in this scope."""
        self._values[name] = value

    def lookup(self, name: str) -> tuple["Environment", Any] | None:
        """Find the scope holding ``name``; None if unbound anywhere."""
        scope: Environment | None = self
        while scope is not None:
            if name in scope._values:
                return scope, scope._values[name]
            scope = scope.parent
        return None

    def assign(self, name: str, value: Any) -> None:
        """Assign to the nearest binding, or create a global."""
        scope: Environment | None = self
        while scope is not None:
            if name in scope._values:
                scope._values[name] = value
                return
            if scope.parent is None:
                # Reached the global scope without finding the name.
                scope._values[name] = value
                return
            scope = scope.parent

    def globals(self) -> "Environment":
        """The root (global) scope of this chain."""
        scope = self
        while scope.parent is not None:
            scope = scope.parent
        return scope


class _BreakSignal(Exception):
    pass


class _ReturnSignal(Exception):
    def __init__(self, value: Any) -> None:
        self.value = value


def lua_type_name(value: Any) -> str:
    """Lua's name for the type of ``value``."""
    if value is None:
        return "nil"
    if isinstance(value, bool):
        return "boolean"
    if isinstance(value, (int, float)):
        return "number"
    if isinstance(value, str):
        return "string"
    if isinstance(value, LuaTable):
        return "table"
    if isinstance(value, LuaFunction) or callable(value):
        return "function"
    return type(value).__name__


def is_truthy(value: Any) -> bool:
    """Lua truthiness: only nil and false are falsy."""
    return value is not None and value is not False


def lua_tostring(value: Any) -> str:
    """Render a value the way Lua's ``tostring`` would (approximately)."""
    if value is None:
        return "nil"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, float) and value.is_integer() and abs(value) < 1e15:
        return f"{value:.1f}"
    return str(value)


class Interpreter:
    """Evaluates LuaLite ASTs against an environment.

    ``max_steps`` bounds the number of AST nodes evaluated; exceeding it
    raises :class:`ScriptRuntimeError`, which the phone reports back to
    the server as a failed task.
    """

    def __init__(
        self,
        global_environment: Environment | None = None,
        *,
        max_steps: int = 2_000_000,
    ) -> None:
        self.globals = global_environment or Environment()
        self.max_steps = max_steps
        self._steps = 0

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------
    def run(self, block: ast.Block) -> Any:
        """Execute a chunk; returns the value of a top-level ``return``."""
        self._steps = 0
        environment = Environment(parent=self.globals)
        try:
            self.execute_block(block, environment)
        except _ReturnSignal as signal:
            return signal.value
        except _BreakSignal:
            raise ScriptRuntimeError("break outside of a loop") from None
        return None

    def call_function(self, function: Any, arguments: list[Any]) -> Any:
        """Call a Lua or native function with already-evaluated arguments."""
        return self._call(function, arguments, line=0)

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def _tick(self, line: int) -> None:
        self._steps += 1
        if self._steps > self.max_steps:
            raise ScriptRuntimeError(
                f"script exceeded its step budget of {self.max_steps} (line {line})"
            )

    def execute_block(self, block: ast.Block, environment: Environment) -> None:
        """Execute every statement of ``block`` in ``environment``."""
        for statement in block.statements:
            self.execute_statement(statement, environment)

    def execute_statement(self, statement: ast.Statement, environment: Environment) -> None:
        """Execute one statement in ``environment``."""
        self._tick(statement.line)
        if isinstance(statement, ast.LocalAssign):
            values = [self.evaluate(value, environment) for value in statement.values]
            for index, name in enumerate(statement.names):
                environment.declare(
                    name, values[index] if index < len(values) else None
                )
        elif isinstance(statement, ast.Assign):
            values = [self.evaluate(value, environment) for value in statement.values]
            for index, target in enumerate(statement.targets):
                value = values[index] if index < len(values) else None
                if isinstance(target, ast.Name):
                    environment.assign(target.identifier, value)
                else:
                    assert isinstance(target, ast.Index)
                    obj = self.evaluate(target.obj, environment)
                    key = self.evaluate(target.key, environment)
                    if not isinstance(obj, LuaTable):
                        raise ScriptRuntimeError(
                            f"line {target.line}: cannot index a "
                            f"{lua_type_name(obj)} value"
                        )
                    obj.set(key, value)
        elif isinstance(statement, ast.ExpressionStatement):
            self.evaluate(statement.expression, environment)
        elif isinstance(statement, ast.If):
            for condition, block in statement.branches:
                if is_truthy(self.evaluate(condition, environment)):
                    self.execute_block(block, Environment(parent=environment))
                    return
            if statement.otherwise is not None:
                self.execute_block(statement.otherwise, Environment(parent=environment))
        elif isinstance(statement, ast.While):
            while is_truthy(self.evaluate(statement.condition, environment)):
                self._tick(statement.line)
                try:
                    self.execute_block(statement.body, Environment(parent=environment))
                except _BreakSignal:
                    break
        elif isinstance(statement, ast.NumericFor):
            self._execute_numeric_for(statement, environment)
        elif isinstance(statement, ast.GenericFor):
            self._execute_generic_for(statement, environment)
        elif isinstance(statement, ast.FunctionDecl):
            function = LuaFunction(
                parameters=statement.function.parameters,
                body=statement.function.body,
                closure=environment,
                name=statement.name,
            )
            if statement.is_local:
                environment.declare(statement.name, function)
            else:
                environment.assign(statement.name, function)
        elif isinstance(statement, ast.Return):
            value = (
                self.evaluate(statement.value, environment)
                if statement.value is not None
                else None
            )
            raise _ReturnSignal(value)
        elif isinstance(statement, ast.Break):
            raise _BreakSignal()
        else:  # pragma: no cover - parser produces no other nodes
            raise ScriptRuntimeError(f"unknown statement {type(statement).__name__}")

    def _execute_numeric_for(
        self, statement: ast.NumericFor, environment: Environment
    ) -> None:
        start = self._require_number(
            self.evaluate(statement.start, environment), statement.line, "for start"
        )
        stop = self._require_number(
            self.evaluate(statement.stop, environment), statement.line, "for stop"
        )
        if statement.step is not None:
            step = self._require_number(
                self.evaluate(statement.step, environment), statement.line, "for step"
            )
        else:
            step = 1
        if step == 0:
            raise ScriptRuntimeError(f"line {statement.line}: for step is zero")
        value = start
        while (step > 0 and value <= stop) or (step < 0 and value >= stop):
            self._tick(statement.line)
            scope = Environment(parent=environment)
            scope.declare(statement.variable, value)
            try:
                self.execute_block(statement.body, scope)
            except _BreakSignal:
                break
            value = value + step

    def _execute_generic_for(
        self, statement: ast.GenericFor, environment: Environment
    ) -> None:
        iterator = self.evaluate(statement.iterator, environment)
        if isinstance(iterator, LuaTable):
            # `for k, v in t` sugar: iterate the table's pairs directly.
            iterator = LuaIterator(iterator.items())
        if not isinstance(iterator, LuaIterator):
            raise ScriptRuntimeError(
                f"line {statement.line}: generic for needs pairs()/ipairs() "
                f"(got {lua_type_name(iterator)})"
            )
        for entry in iterator.entries:
            self._tick(statement.line)
            scope = Environment(parent=environment)
            values = entry if isinstance(entry, tuple) else (entry,)
            for index, name in enumerate(statement.names):
                scope.declare(name, values[index] if index < len(values) else None)
            try:
                self.execute_block(statement.body, scope)
            except _BreakSignal:
                break

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def evaluate(self, expression: ast.Expression, environment: Environment) -> Any:
        """Evaluate an expression to a Lua value."""
        self._tick(expression.line)
        if isinstance(expression, ast.NilLiteral):
            return None
        if isinstance(expression, ast.BoolLiteral):
            return expression.value
        if isinstance(expression, ast.NumberLiteral):
            return expression.value
        if isinstance(expression, ast.StringLiteral):
            return expression.value
        if isinstance(expression, ast.Name):
            found = environment.lookup(expression.identifier)
            return found[1] if found is not None else None
        if isinstance(expression, ast.BinaryOp):
            return self._evaluate_binary(expression, environment)
        if isinstance(expression, ast.UnaryOp):
            return self._evaluate_unary(expression, environment)
        if isinstance(expression, ast.Index):
            obj = self.evaluate(expression.obj, environment)
            key = self.evaluate(expression.key, environment)
            if isinstance(obj, LuaTable):
                return obj.get(key)
            raise ScriptRuntimeError(
                f"line {expression.line}: cannot index a {lua_type_name(obj)} value"
            )
        if isinstance(expression, ast.Call):
            callee = self.evaluate(expression.callee, environment)
            if callee is None and isinstance(expression.callee, ast.Name):
                raise ScriptSecurityError(
                    f"line {expression.line}: call to unknown function "
                    f"{expression.callee.identifier!r} (not whitelisted)"
                )
            arguments = [
                self.evaluate(argument, environment)
                for argument in expression.arguments
            ]
            return self._call(callee, arguments, expression.line)
        if isinstance(expression, ast.FunctionExpr):
            return LuaFunction(
                parameters=expression.parameters,
                body=expression.body,
                closure=environment,
            )
        if isinstance(expression, ast.TableConstructor):
            table = LuaTable()
            array_index = 1
            for field in expression.fields:
                value = self.evaluate(field.value, environment)
                if field.key is None:
                    table.set(array_index, value)
                    array_index += 1
                else:
                    table.set(self.evaluate(field.key, environment), value)
            return table
        raise ScriptRuntimeError(  # pragma: no cover
            f"unknown expression {type(expression).__name__}"
        )

    def _call(self, callee: Any, arguments: list[Any], line: int) -> Any:
        if isinstance(callee, LuaFunction):
            scope = Environment(parent=callee.closure)
            for index, parameter in enumerate(callee.parameters):
                scope.declare(
                    parameter, arguments[index] if index < len(arguments) else None
                )
            try:
                self.execute_block(callee.body, scope)
            except _ReturnSignal as signal:
                return signal.value
            return None
        if callable(callee):
            try:
                return callee(*arguments)
            except (ScriptRuntimeError, ScriptSecurityError):
                raise
            except TypeError as exc:
                raise ScriptRuntimeError(f"line {line}: bad call: {exc}") from exc
        raise ScriptRuntimeError(
            f"line {line}: cannot call a {lua_type_name(callee)} value"
        )

    @staticmethod
    def _require_number(value: Any, line: int, what: str) -> int | float:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ScriptRuntimeError(
                f"line {line}: {what} must be a number, got {lua_type_name(value)}"
            )
        return value

    def _evaluate_binary(self, node: ast.BinaryOp, environment: Environment) -> Any:
        operator = node.operator
        if operator == "and":
            left = self.evaluate(node.left, environment)
            return self.evaluate(node.right, environment) if is_truthy(left) else left
        if operator == "or":
            left = self.evaluate(node.left, environment)
            return left if is_truthy(left) else self.evaluate(node.right, environment)
        left = self.evaluate(node.left, environment)
        right = self.evaluate(node.right, environment)
        if operator == "==":
            return self._lua_equals(left, right)
        if operator == "~=":
            return not self._lua_equals(left, right)
        if operator == "..":
            if not isinstance(left, (str, int, float)) or isinstance(left, bool):
                raise ScriptRuntimeError(
                    f"line {node.line}: cannot concatenate a {lua_type_name(left)}"
                )
            if not isinstance(right, (str, int, float)) or isinstance(right, bool):
                raise ScriptRuntimeError(
                    f"line {node.line}: cannot concatenate a {lua_type_name(right)}"
                )
            return lua_tostring(left) + lua_tostring(right)
        if operator in ("<", "<=", ">", ">="):
            return self._lua_compare(operator, left, right, node.line)
        # arithmetic
        left_number = self._require_number(left, node.line, "left operand")
        right_number = self._require_number(right, node.line, "right operand")
        if operator == "+":
            return left_number + right_number
        if operator == "-":
            return left_number - right_number
        if operator == "*":
            return left_number * right_number
        if operator == "/":
            if right_number == 0:
                # Lua yields inf/nan for division by zero.
                if left_number == 0:
                    return math.nan
                return math.inf if left_number > 0 else -math.inf
            return left_number / right_number
        if operator == "%":
            if right_number == 0:
                return math.nan
            # Lua's floored modulo, computed via fmod so non-finite
            # operands yield NaN/identity instead of crashing (this is
            # how Lua 5.3 implements float %). Python's fmod raises on
            # an infinite dividend where C returns NaN — match C/Lua.
            if math.isinf(left_number):
                return math.nan
            result = math.fmod(left_number, right_number)
            if result != 0 and (result < 0) != (right_number < 0):
                result += right_number
            return result
        if operator == "^":
            return float(left_number) ** float(right_number)
        raise ScriptRuntimeError(  # pragma: no cover
            f"line {node.line}: unknown operator {operator!r}"
        )

    @staticmethod
    def _lua_equals(left: Any, right: Any) -> bool:
        # Lua does not coerce across types for equality; beware Python's
        # bool/int and int/float unification.
        if isinstance(left, bool) or isinstance(right, bool):
            return left is right
        if isinstance(left, (int, float)) and isinstance(right, (int, float)):
            return float(left) == float(right)
        if type(left) is not type(right):
            return False
        return left == right

    @staticmethod
    def _lua_compare(operator: str, left: Any, right: Any, line: int) -> bool:
        numbers = (
            isinstance(left, (int, float))
            and not isinstance(left, bool)
            and isinstance(right, (int, float))
            and not isinstance(right, bool)
        )
        strings = isinstance(left, str) and isinstance(right, str)
        if not numbers and not strings:
            raise ScriptRuntimeError(
                f"line {line}: cannot compare {lua_type_name(left)} "
                f"with {lua_type_name(right)}"
            )
        if operator == "<":
            return left < right
        if operator == "<=":
            return left <= right
        if operator == ">":
            return left > right
        return left >= right

    def _evaluate_unary(self, node: ast.UnaryOp, environment: Environment) -> Any:
        operand = self.evaluate(node.operand, environment)
        if node.operator == "not":
            return not is_truthy(operand)
        if node.operator == "-":
            number = self._require_number(operand, node.line, "operand of unary minus")
            return -number
        if node.operator == "#":
            if isinstance(operand, str):
                return len(operand)
            if isinstance(operand, LuaTable):
                return operand.length()
            raise ScriptRuntimeError(
                f"line {node.line}: cannot take length of a {lua_type_name(operand)}"
            )
        raise ScriptRuntimeError(  # pragma: no cover
            f"line {node.line}: unknown unary operator {node.operator!r}"
        )


NativeFunction = Callable[..., Any]
