"""LuaLite — the sensing-task scripting language.

SOR describes *how to sense* with Lua scripts shipped from the server to
the phone (Section II-A): the script calls data-acquisition functions
like ``get_light_readings()`` which the interpreter maps onto native
callbacks, and only a whitelist of unharmful functions may be called.

This package implements a compatible subset of Lua from scratch:

* :mod:`repro.script.lexer` — tokenizer,
* :mod:`repro.script.parser` — recursive-descent parser producing an AST,
* :mod:`repro.script.interpreter` — tree-walking evaluator with Lua
  truthiness, closures, tables, numeric ``for``, and a step budget,
* :mod:`repro.script.sandbox` — the whitelist environment; unknown
  global calls raise :class:`~repro.common.errors.ScriptSecurityError`.

Supported syntax: ``local`` declarations, assignment (including table
fields), ``if/elseif/else``, ``while``, numeric ``for``, generic
``for k, v in pairs(t)`` / ``ipairs(t)``, ``function`` definitions and
closures, ``return``, ``break``, table constructors, indexing
(``t.x`` / ``t[k]``), arithmetic, comparison, ``and/or/not``, string
concatenation ``..``, length ``#`` and ``--`` comments.
"""

from repro.script.interpreter import Interpreter, LuaTable
from repro.script.lexer import tokenize
from repro.script.parser import parse
from repro.script.sandbox import Sandbox, build_base_environment

__all__ = [
    "Interpreter",
    "LuaTable",
    "Sandbox",
    "build_base_environment",
    "parse",
    "tokenize",
]
