"""Tokenizer for LuaLite."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common.errors import ScriptSyntaxError

KEYWORDS = frozenset(
    {
        "and",
        "break",
        "do",
        "else",
        "elseif",
        "end",
        "false",
        "for",
        "function",
        "if",
        "in",
        "local",
        "nil",
        "not",
        "or",
        "return",
        "then",
        "true",
        "while",
    }
)

# Multi-character operators must be matched before their prefixes.
_OPERATORS = (
    "==",
    "~=",
    "<=",
    ">=",
    "..",
    "+",
    "-",
    "*",
    "/",
    "%",
    "^",
    "#",
    "<",
    ">",
    "=",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ",",
    ";",
    ".",
    ":",
)


class TokenKind(enum.Enum):
    """Lexical categories of LuaLite tokens."""
    NUMBER = "number"
    STRING = "string"
    NAME = "name"
    KEYWORD = "keyword"
    OPERATOR = "operator"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    value: str | int | float
    line: int
    column: int

    def is_keyword(self, word: str) -> bool:
        """Whether this token is the keyword ``word``."""
        return self.kind is TokenKind.KEYWORD and self.value == word

    def is_operator(self, symbol: str) -> bool:
        """Whether this token is the operator ``symbol``."""
        return self.kind is TokenKind.OPERATOR and self.value == symbol


class _Scanner:
    def __init__(self, source: str) -> None:
        self.source = source
        self.position = 0
        self.line = 1
        self.column = 1

    def peek(self, ahead: int = 0) -> str:
        index = self.position + ahead
        return self.source[index] if index < len(self.source) else ""

    def advance(self) -> str:
        char = self.source[self.position]
        self.position += 1
        if char == "\n":
            self.line += 1
            self.column = 1
        else:
            self.column += 1
        return char

    @property
    def exhausted(self) -> bool:
        return self.position >= len(self.source)

    def error(self, message: str) -> ScriptSyntaxError:
        return ScriptSyntaxError(message, self.line, self.column)


def _scan_number(scanner: _Scanner) -> Token:
    line, column = scanner.line, scanner.column
    text = []
    is_float = False
    while scanner.peek().isdigit():
        text.append(scanner.advance())
    if scanner.peek() == "." and scanner.peek(1).isdigit():
        is_float = True
        text.append(scanner.advance())
        while scanner.peek().isdigit():
            text.append(scanner.advance())
    if scanner.peek() in ("e", "E"):
        lookahead = 1
        if scanner.peek(1) in ("+", "-"):
            lookahead = 2
        if scanner.peek(lookahead).isdigit():
            is_float = True
            for _ in range(lookahead):
                text.append(scanner.advance())
            while scanner.peek().isdigit():
                text.append(scanner.advance())
    literal = "".join(text)
    value: int | float = float(literal) if is_float else int(literal)
    return Token(TokenKind.NUMBER, value, line, column)


_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "\\": "\\", '"': '"', "'": "'", "0": "\0"}


def _scan_string(scanner: _Scanner) -> Token:
    line, column = scanner.line, scanner.column
    quote = scanner.advance()
    chars: list[str] = []
    while True:
        if scanner.exhausted:
            raise ScriptSyntaxError("unterminated string", line, column)
        char = scanner.advance()
        if char == quote:
            break
        if char == "\n":
            raise ScriptSyntaxError("unterminated string", line, column)
        if char == "\\":
            if scanner.exhausted:
                raise ScriptSyntaxError("unterminated escape", scanner.line, scanner.column)
            escape = scanner.advance()
            if escape not in _ESCAPES:
                raise ScriptSyntaxError(
                    f"unknown escape \\{escape}", scanner.line, scanner.column
                )
            chars.append(_ESCAPES[escape])
        else:
            chars.append(char)
    return Token(TokenKind.STRING, "".join(chars), line, column)


def _scan_name(scanner: _Scanner) -> Token:
    line, column = scanner.line, scanner.column
    chars = []
    while scanner.peek().isalnum() or scanner.peek() == "_":
        chars.append(scanner.advance())
    word = "".join(chars)
    kind = TokenKind.KEYWORD if word in KEYWORDS else TokenKind.NAME
    return Token(kind, word, line, column)


def tokenize(source: str) -> list[Token]:
    """Tokenize LuaLite ``source``; the result always ends with EOF."""
    scanner = _Scanner(source)
    tokens: list[Token] = []
    while not scanner.exhausted:
        char = scanner.peek()
        if char in " \t\r\n":
            scanner.advance()
            continue
        if char == "-" and scanner.peek(1) == "-":
            while not scanner.exhausted and scanner.peek() != "\n":
                scanner.advance()
            continue
        if char.isdigit():
            tokens.append(_scan_number(scanner))
            continue
        if char in ("'", '"'):
            tokens.append(_scan_string(scanner))
            continue
        if char.isalpha() or char == "_":
            tokens.append(_scan_name(scanner))
            continue
        matched = False
        for operator in _OPERATORS:
            if scanner.source.startswith(operator, scanner.position):
                line, column = scanner.line, scanner.column
                for _ in operator:
                    scanner.advance()
                tokens.append(Token(TokenKind.OPERATOR, operator, line, column))
                matched = True
                break
        if not matched:
            raise scanner.error(f"unexpected character {char!r}")
    tokens.append(Token(TokenKind.EOF, "", scanner.line, scanner.column))
    return tokens
