"""The mobile phone: all frontend components wired together."""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.barcode import BitMatrix, decode_place_barcode
from repro.common.clock import Clock
from repro.common.errors import ParticipationError
from repro.common.geo import LatLon
from repro.net import CloudMessenger, Envelope, HttpRequest, HttpResponse, MessageType
from repro.net.resilience import ResilientClient
from repro.net.transport import Network
from repro.phone.message_handler import PhoneMessageHandler
from repro.phone.power import Battery, WakeLockManager
from repro.phone.preferences import LocalPreferenceManager
from repro.phone.sensor_manager import ProviderRegister, SensorManager
from repro.phone.task import TaskInstance
from repro.phone.task_manager import TaskManager
from repro.sensors.provider import Provider


class MobilePhone:
    """One participating smartphone.

    The phone is driven by virtual time: the owner (simulation or
    example script) advances the shared clock and calls :meth:`tick`,
    which executes any sensing instants that came due and uploads
    completed tasks.
    """

    def __init__(
        self,
        user_id: str,
        token: str,
        network: Network,
        clock: Clock,
        *,
        gcm: CloudMessenger | None = None,
        battery_capacity_mj: float = 40_000.0,
        rng: np.random.Generator | None = None,
        client: ResilientClient | None = None,
    ) -> None:
        self.user_id = user_id
        self.token = token
        self.host = f"phone-{token}"
        self.clock = clock
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.battery = Battery(capacity_mj=battery_capacity_mj)
        self.wake_locks = WakeLockManager(clock, self.battery)
        self.preferences = LocalPreferenceManager()
        self.provider_register = ProviderRegister()
        self.sensor_manager = SensorManager(
            self.provider_register, self.preferences, self.battery
        )
        self.task_manager = TaskManager()
        self.message_handler = PhoneMessageHandler(
            self.host, network, self.wake_locks, gcm=gcm, gcm_token=token,
            client=client,
        )
        self.message_handler.on(MessageType.SCHEDULE, self._on_schedule)
        self.message_handler.on(MessageType.PING, self._on_ping)
        self.message_handler.on(MessageType.LOCATION_QUERY, self._on_location_query)
        self.message_handler.on_push(self._on_gcm_push)
        self._location_source: Callable[[float], LatLon] | None = None
        self._last_server: str | None = None
        self._uploaded_tasks: set[str] = set()
        self._scan_counter = 0
        network.register(self.host, self)

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    def add_provider(self, provider: Provider) -> None:
        """Integrate a sensor: register its provider (the paper's
        scalability story — one provider per new sensor)."""
        self.provider_register.register(provider)

    def set_location_source(self, source: Callable[[float], LatLon]) -> None:
        """Where this phone physically is at time t."""
        self._location_source = source

    def current_location(self) -> LatLon:
        """The phone's physical location right now."""
        if self._location_source is None:
            raise ParticipationError(
                f"phone {self.host} has no location source configured"
            )
        return self._location_source(self.clock.now())

    # ------------------------------------------------------------------
    # user actions
    # ------------------------------------------------------------------
    def scan_barcode(
        self,
        matrix: BitMatrix,
        *,
        budget: int,
        departure_time: float | None = None,
    ) -> TaskInstance | None:
        """Scan the 2D code at a place and volunteer to sense.

        Decodes the barcode, sends a PARTICIPATE message with the phone's
        identity, location, sensing budget and (optionally) expected
        departure time, and — when the server replies with a schedule —
        creates the task instance. Returns the task, or None if the
        server rejected or the network dropped.
        """
        payload = decode_place_barcode(matrix)
        location = self.current_location()
        message_payload = {
            "user_id": self.user_id,
            "token": self.token,
            "app_id": payload.app_id,
            "place_id": payload.place_id,
            "latitude": location.latitude,
            "longitude": location.longitude,
            "budget": budget,
            "supported_sensors": self.provider_register.supported_sensors(),
            "denied_sensors": self.preferences.denied_sensors(),
        }
        if departure_time is not None:
            message_payload["departure_time"] = float(departure_time)
        # Each scan is a fresh user operation: a per-scan nonce key means
        # transport retries of this scan dedupe server-side, while a
        # deliberate re-scan (identical content) still creates a new task.
        self._scan_counter += 1
        envelope = Envelope(
            message_type=MessageType.PARTICIPATE,
            sender=self.host,
            recipient=payload.server_host,
            payload=message_payload,
        ).with_idempotency_key(f"{self.host}:scan:{self._scan_counter}")
        reply = self.message_handler.send(payload.server_host, envelope)
        if reply is None or reply.message_type is not MessageType.SCHEDULE:
            return None
        self._last_server = payload.server_host
        return self._install_schedule(reply.payload)

    def send_preferences(self, server_host: str) -> bool:
        """Push local sensing preferences to a server."""
        envelope = Envelope(
            message_type=MessageType.PREFERENCES,
            sender=self.host,
            recipient=server_host,
            payload={
                "user_id": self.user_id,
                "token": self.token,
                **self.preferences.to_payload(),
            },
        )
        reply = self.message_handler.send(server_host, envelope)
        return reply is not None and reply.message_type is MessageType.ACK

    # ------------------------------------------------------------------
    # time-driven behaviour
    # ------------------------------------------------------------------
    def tick(self) -> int:
        """Execute due sensing instants and upload finished tasks.

        Returns the number of script executions performed.
        """
        if self.battery.is_dead:
            return 0
        executed = self.task_manager.execute_due(self.clock.now())
        for task in self.task_manager.finished_unreported():
            if task.task_id not in self._uploaded_tasks:
                if self._upload(task):
                    self._uploaded_tasks.add(task.task_id)
        return executed

    def next_wakeup(self) -> float | None:
        """When this phone next needs to run (for the event scheduler)."""
        return self.task_manager.next_sensing_time()

    @property
    def acked_uploads(self) -> frozenset[str]:
        """Task ids whose SENSED_DATA upload the server acknowledged.

        The crash harness asserts that everything in this set survives
        server recovery: an acknowledged upload is a promise.
        """
        return frozenset(self._uploaded_tasks)

    def _upload(self, task: TaskInstance) -> bool:
        if self._last_server is None:
            return False
        envelope = Envelope(
            message_type=MessageType.SENSED_DATA,
            sender=self.host,
            recipient=self._last_server,
            payload={
                "task_id": task.task_id,
                "token": self.token,
                "status": task.status.value,
                "error": task.error or "",
                "executed": len(task.script_results),
                "bursts": task.collected_payload(),
            },
        )
        # Radio energy: proportional-ish to payload, simplified constant.
        self.battery.drain(20.0, reason="radio:upload")
        reply = self.message_handler.send(self._last_server, envelope)
        return reply is not None and reply.message_type is MessageType.ACK

    # ------------------------------------------------------------------
    # incoming messages
    # ------------------------------------------------------------------
    def handle_request(self, request: HttpRequest) -> HttpResponse:
        """Serve a server-initiated HTTP request."""
        return self.message_handler.handle_request(request)

    def _install_schedule(self, payload: dict[str, Any]) -> TaskInstance | None:
        task_id = payload.get("task_id")
        script = payload.get("script")
        times = payload.get("times")
        if not isinstance(task_id, str) or not isinstance(script, str):
            return None
        if not isinstance(times, list):
            return None
        existing = self.task_manager.get(task_id)
        if existing is not None:
            return existing
        task = TaskInstance(
            task_id=task_id,
            app_id=str(payload.get("app_id", "")),
            script_source=script,
            sensing_times=[float(time) for time in times],
            sensor_manager=self.sensor_manager,
        )
        self.task_manager.add(task)
        return task

    def _on_schedule(self, envelope: Envelope) -> Envelope:
        self._last_server = envelope.sender
        self._install_schedule(envelope.payload)
        return envelope.reply(MessageType.ACK)

    def _on_ping(self, envelope: Envelope) -> Envelope:
        return envelope.reply(MessageType.PONG, {"token": self.token})

    def _on_location_query(self, envelope: Envelope) -> Envelope:
        location = self.current_location()
        return envelope.reply(
            MessageType.LOCATION_REPORT,
            {
                "token": self.token,
                "latitude": location.latitude,
                "longitude": location.longitude,
            },
        )

    def _on_gcm_push(self, payload: dict[str, Any]) -> None:
        """A GCM wake-up: ping the server so it can find us again."""
        server = payload.get("server")
        if not isinstance(server, str):
            return
        envelope = Envelope(
            message_type=MessageType.PONG,
            sender=self.host,
            recipient=server,
            payload={"token": self.token, "host": self.host},
        )
        self.message_handler.send(server, envelope)
