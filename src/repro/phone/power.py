"""Energy accounting: battery and wake locks.

The paper's message handler "can prevent a mobile phone from going to
sleep during communications with a server"
(``powerManager.newWakeupLock()``). We model wake locks as named,
possibly nested holds whose total held time drains the battery at a
fixed rate, and sensing/radio costs as discrete charges.
"""

from __future__ import annotations

from repro.common.clock import Clock
from repro.common.errors import ValidationError


class Battery:
    """A finite energy store in millijoules."""

    def __init__(self, capacity_mj: float = 40_000.0) -> None:
        if capacity_mj <= 0:
            raise ValidationError("battery capacity must be positive")
        self.capacity_mj = capacity_mj
        self.remaining_mj = capacity_mj
        self.drained_by: dict[str, float] = {}

    @property
    def is_dead(self) -> bool:
        return self.remaining_mj <= 0

    @property
    def level(self) -> float:
        """Remaining fraction in [0, 1]."""
        return max(0.0, self.remaining_mj / self.capacity_mj)

    def drain(self, amount_mj: float, reason: str) -> None:
        """Consume energy; clamps at zero (the phone just dies)."""
        if amount_mj < 0:
            raise ValidationError("cannot drain a negative amount")
        self.remaining_mj = max(0.0, self.remaining_mj - amount_mj)
        self.drained_by[reason] = self.drained_by.get(reason, 0.0) + amount_mj


class WakeLockManager:
    """Named, re-entrant wake locks; held time drains the battery."""

    def __init__(
        self, clock: Clock, battery: Battery, *, drain_mw: float = 50.0
    ) -> None:
        self.clock = clock
        self.battery = battery
        self.drain_mw = drain_mw
        self._holds: dict[str, int] = {}
        self._since: float | None = None
        self.total_held_s = 0.0

    @property
    def is_held(self) -> bool:
        return bool(self._holds)

    def acquire(self, name: str) -> None:
        """Take (or re-enter) the wake lock ``name``."""
        if not self._holds:
            self._since = self.clock.now()
        self._holds[name] = self._holds.get(name, 0) + 1

    def release(self, name: str) -> None:
        """Release one hold of ``name``; the battery is charged when the
        last hold goes away."""
        if name not in self._holds:
            raise ValidationError(f"wake lock {name!r} is not held")
        self._holds[name] -= 1
        if self._holds[name] == 0:
            del self._holds[name]
        if not self._holds and self._since is not None:
            held = max(0.0, self.clock.now() - self._since)
            self.total_held_s += held
            # mW · s = mJ
            self.battery.drain(self.drain_mw * held, reason="wake_lock")
            self._since = None
