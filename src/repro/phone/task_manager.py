"""The Task Manager: keeps track of all task instances on a phone."""

from __future__ import annotations

from repro.common.errors import ConfigurationError
from repro.phone.task import TaskInstance, TaskStatus


class TaskManager:
    """Owns every task instance; SOR is a multi-task system."""

    def __init__(self) -> None:
        self._tasks: dict[str, TaskInstance] = {}

    def add(self, task: TaskInstance) -> None:
        """Track a new task instance; ids must be unique."""
        if task.task_id in self._tasks:
            raise ConfigurationError(f"task {task.task_id!r} already exists")
        self._tasks[task.task_id] = task

    def get(self, task_id: str) -> TaskInstance | None:
        """The task with ``task_id``, or None."""
        return self._tasks.get(task_id)

    def all_tasks(self) -> list[TaskInstance]:
        """Every tracked task instance."""
        return list(self._tasks.values())

    def active_tasks(self) -> list[TaskInstance]:
        """Tasks that are neither finished nor failed."""
        return [task for task in self._tasks.values() if not task.is_done]

    def execute_due(self, now: float) -> int:
        """Run every task's due instants; returns total executions."""
        return sum(task.execute_due(now) for task in self.active_tasks())

    def next_sensing_time(self) -> float | None:
        """The earliest pending instant across all active tasks."""
        times = [
            time
            for task in self.active_tasks()
            if (time := task.next_sensing_time()) is not None
        ]
        return min(times) if times else None

    def finished_unreported(self) -> list[TaskInstance]:
        """Tasks that completed (or failed) and still hold data to upload."""
        return [
            task
            for task in self._tasks.values()
            if task.status in (TaskStatus.FINISHED, TaskStatus.ERROR)
            and (task.bursts or task.error)
        ]
