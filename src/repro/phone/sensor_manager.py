"""Sensor Manager and Provider Register (paper Fig. 3, right column).

"When a new sensor is integrated into SOR, the corresponding Provider
needs to be registered with the Sensor Manager via the Provider
Register, which keeps a list of currently supported sensors and the
corresponding data acquisition functions we defined (such as
get_light_readings() and get_location()). When a task instance requests
data by calling such a data acquisition function, the Sensor Manager
directs the call to the corresponding Provider."
"""

from __future__ import annotations

from typing import Callable

from repro.common.errors import ConfigurationError, SensorError, SensorTimeoutError
from repro.core.features.types import GpsFix, ReadingBurst
from repro.phone.power import Battery
from repro.phone.preferences import LocalPreferenceManager
from repro.sensors.provider import Provider


class ProviderRegister:
    """The list of supported sensors and their acquisition-function names."""

    def __init__(self) -> None:
        self._providers: dict[str, Provider] = {}

    def register(self, provider: Provider) -> None:
        """Add a provider; one per sensor type."""
        sensor_type = provider.spec.sensor_type
        if sensor_type in self._providers:
            raise ConfigurationError(
                f"a provider for {sensor_type!r} is already registered"
            )
        self._providers[sensor_type] = provider

    def unregister(self, sensor_type: str) -> None:
        """Remove the provider for ``sensor_type``."""
        if sensor_type not in self._providers:
            raise ConfigurationError(f"no provider for {sensor_type!r}")
        del self._providers[sensor_type]

    def provider(self, sensor_type: str) -> Provider:
        """The provider for ``sensor_type`` (raises if unsupported)."""
        try:
            return self._providers[sensor_type]
        except KeyError:
            raise SensorError(
                f"sensor {sensor_type!r} is not supported on this phone"
            ) from None

    def supported_sensors(self) -> list[str]:
        """Sorted sensor types this phone supports."""
        return sorted(self._providers)

    def acquisition_function_name(self, sensor_type: str) -> str:
        """The whitelisted script-visible name for this sensor."""
        if sensor_type == "gps":
            return "get_location"
        return f"get_{sensor_type}_readings"


class SensorManager:
    """Routes script acquisition calls to providers.

    Enforces local preferences (denied sensors raise, which the task
    instance reports as an error for that acquisition) and charges the
    battery for each provider's energy use.
    """

    def __init__(
        self,
        register: ProviderRegister,
        preferences: LocalPreferenceManager,
        battery: Battery,
    ) -> None:
        self.register = register
        self.preferences = preferences
        self.battery = battery
        self.acquisitions_cancelled = 0

    def acquire_burst(
        self,
        sensor_type: str,
        count: int,
        interval_s: float,
        *,
        timeout_s: float | None = None,
    ) -> ReadingBurst:
        """Take a burst from ``sensor_type``, honoring preferences/power.

        An acquisition whose end-to-end duration would exceed
        ``timeout_s`` (default: the sensor's configured timeout) is
        cancelled before it starts — the paper's "the manager can cancel
        data acquisition if timeout".
        """
        if not self.preferences.is_allowed(sensor_type):
            raise SensorError(
                f"sensor {sensor_type!r} is disabled by the user's preferences"
            )
        if self.battery.is_dead:
            raise SensorError("battery is dead; cannot sense")
        provider = self.register.provider(sensor_type)
        limit = timeout_s if timeout_s is not None else provider.spec.default_timeout_s
        estimated = provider.estimated_duration_s(count, interval_s)
        if estimated > limit:
            self.acquisitions_cancelled += 1
            raise SensorTimeoutError(
                f"{sensor_type!r} acquisition cancelled: would take "
                f"{estimated:.1f}s, timeout is {limit:.1f}s"
            )
        before = provider.energy_consumed_mj
        burst = provider.acquire_burst(count, interval_s)
        self.battery.drain(
            provider.energy_consumed_mj - before, reason=f"sense:{sensor_type}"
        )
        return burst

    def script_bindings(
        self, record: Callable[[str, ReadingBurst], None]
    ) -> dict[str, Callable]:
        """Build the whitelisted acquisition functions for a sandbox.

        Each binding takes ``(count, interval_s)``, records the burst
        through ``record`` (so the task instance keeps the raw (t, Δt, d)
        tuple) and returns the plain reading values to the script.
        """
        bindings: dict[str, Callable] = {}
        for sensor_type in self.register.supported_sensors():
            name = self.register.acquisition_function_name(sensor_type)
            bindings[name] = self._make_binding(sensor_type, record)
        return bindings

    def _make_binding(
        self, sensor_type: str, record: Callable[[str, ReadingBurst], None]
    ) -> Callable:
        def acquire(count: float = 1, interval_s: float = 0.0):
            burst = self.acquire_burst(sensor_type, int(count), float(interval_s))
            record(sensor_type, burst)
            values = []
            for value in burst.values:
                if isinstance(value, GpsFix):
                    values.append([value.latitude, value.longitude, value.altitude_m])
                elif isinstance(value, tuple):
                    values.append(list(value))
                else:
                    values.append(value)
            return values

        return acquire
