"""The phone-side Message Handler.

"The Message Handler serves as an interface for communications between
the mobile frontend and a sensing server … It is responsible for
encoding/decoding the message body", dispatches incoming messages, can
talk to a Google (Cloud Messaging) server, and holds a wake lock during
communications so the phone does not sleep mid-transfer.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.common.errors import CodecError, TransportError
from repro.net import CloudMessenger, Envelope, HttpRequest, HttpResponse, MessageType
from repro.net.transport import Network
from repro.phone.power import WakeLockManager


class PhoneMessageHandler:
    """Encodes, sends, receives and dispatches envelopes for one phone."""

    def __init__(
        self,
        host: str,
        network: Network,
        wake_locks: WakeLockManager,
        *,
        gcm: CloudMessenger | None = None,
        gcm_token: str | None = None,
    ) -> None:
        self.host = host
        self.network = network
        self.wake_locks = wake_locks
        self._dispatch: dict[MessageType, Callable[[Envelope], Envelope | None]] = {}
        self.messages_sent = 0
        self.messages_failed = 0
        if gcm is not None and gcm_token is not None:
            gcm.register_device(gcm_token, self._on_push)
        self._push_handler: Callable[[dict[str, Any]], None] | None = None

    def on(
        self,
        message_type: MessageType,
        handler: Callable[[Envelope], Envelope | None],
    ) -> None:
        """Register the component that serves ``message_type``."""
        self._dispatch[message_type] = handler

    def on_push(self, handler: Callable[[dict[str, Any]], None]) -> None:
        """Register the GCM wake-up handler."""
        self._push_handler = handler

    def _on_push(self, payload: dict[str, Any]) -> None:
        if self._push_handler is not None:
            self._push_handler(payload)

    def send(self, server_host: str, envelope: Envelope) -> Envelope | None:
        """POST an envelope to a server; returns the reply envelope.

        Holds a wake lock for the duration. Transport drops return
        ``None`` (the caller retries or gives up, as a real phone would
        on an HTTP timeout).
        """
        self.wake_locks.acquire("communication")
        try:
            request = HttpRequest(
                method="POST",
                host=server_host,
                path="/sor",
                body=envelope.to_bytes(),
            )
            response = self.network.send(request)
            self.messages_sent += 1
            if not response.ok or not response.body:
                return None
            return Envelope.from_bytes(response.body)
        except (TransportError, CodecError):
            self.messages_failed += 1
            return None
        finally:
            self.wake_locks.release("communication")

    def handle_request(self, request: HttpRequest) -> HttpResponse:
        """Serve a server-initiated HTTP request (dispatching by type)."""
        try:
            envelope = Envelope.from_bytes(request.body)
        except CodecError:
            return HttpResponse(status=400)
        handler = self._dispatch.get(envelope.message_type)
        if handler is None:
            return HttpResponse(status=404)
        reply = handler(envelope)
        if reply is None:
            return HttpResponse(status=200)
        return HttpResponse(status=200, body=reply.to_bytes())
