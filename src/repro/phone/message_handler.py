"""The phone-side Message Handler.

"The Message Handler serves as an interface for communications between
the mobile frontend and a sensing server … It is responsible for
encoding/decoding the message body", dispatches incoming messages, can
talk to a Google (Cloud Messaging) server, and holds a wake lock during
communications so the phone does not sleep mid-transfer.

Outbound envelopes are stamped with an idempotency key and (when a
:class:`~repro.net.resilience.ResilientClient` is attached) retried
through the resilient path; inbound server-initiated requests are
deduped against a bounded :class:`~repro.net.resilience.IdempotencyCache`
so a re-pushed schedule is acked without being re-applied.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.common.errors import CodecError, TransportError
from repro.net import CloudMessenger, Envelope, HttpRequest, HttpResponse, MessageType
from repro.net.resilience import IdempotencyCache, ResilientClient
from repro.net.transport import Network
from repro.phone.power import WakeLockManager


class PhoneMessageHandler:
    """Encodes, sends, receives and dispatches envelopes for one phone."""

    def __init__(
        self,
        host: str,
        network: Network,
        wake_locks: WakeLockManager,
        *,
        gcm: CloudMessenger | None = None,
        gcm_token: str | None = None,
        client: ResilientClient | None = None,
        dedupe_capacity: int = 256,
    ) -> None:
        self.host = host
        self.network = network
        self.wake_locks = wake_locks
        self.client = client
        self._dispatch: dict[MessageType, Callable[[Envelope], Envelope | None]] = {}
        self._dedupe = IdempotencyCache(capacity=dedupe_capacity)
        self.messages_sent = 0
        self.messages_failed = 0
        self.duplicates_ignored = 0
        if gcm is not None and gcm_token is not None:
            gcm.register_device(gcm_token, self._on_push)
        self._push_handler: Callable[[dict[str, Any]], None] | None = None

    def on(
        self,
        message_type: MessageType,
        handler: Callable[[Envelope], Envelope | None],
    ) -> None:
        """Register the component that serves ``message_type``."""
        self._dispatch[message_type] = handler

    def on_push(self, handler: Callable[[dict[str, Any]], None]) -> None:
        """Register the GCM wake-up handler."""
        self._push_handler = handler

    def _on_push(self, payload: dict[str, Any]) -> None:
        if self._push_handler is not None:
            self._push_handler(payload)

    def send(self, server_host: str, envelope: Envelope) -> Envelope | None:
        """POST an envelope to a server; returns the reply envelope.

        Holds a wake lock for the duration. The envelope is stamped with
        its content-derived idempotency key (unless the caller already
        set one), so transport retries and next-tick re-sends of the
        same content are deduped server-side. Failures — transport drops
        *and* HTTP-rejected or empty-bodied responses — return ``None``
        and count into ``messages_failed``, so ``messages_sent −
        messages_failed`` is the number of successful exchanges.
        """
        self.wake_locks.acquire("communication")
        try:
            if envelope.idempotency_key is None:
                envelope = envelope.with_idempotency_key()
            request = HttpRequest(
                method="POST",
                host=server_host,
                path="/sor",
                body=envelope.to_bytes(),
            )
            if self.client is not None:
                response = self.client.send(request)
            else:
                response = self.network.send(request)
            self.messages_sent += 1
            if not response.ok or not response.body:
                self.messages_failed += 1
                return None
            return Envelope.from_bytes(response.body)
        except (TransportError, CodecError):
            self.messages_failed += 1
            return None
        finally:
            self.wake_locks.release("communication")

    def handle_request(self, request: HttpRequest) -> HttpResponse:
        """Serve a server-initiated HTTP request (dispatching by type).

        Envelopes carrying an idempotency key already seen replay the
        original response without re-invoking the handler.
        """
        try:
            envelope = Envelope.from_bytes(request.body)
        except CodecError:
            return HttpResponse(status=400)
        if envelope.idempotency_key is not None:
            cached = self._dedupe.get(envelope.idempotency_key)
            if cached is not None:
                self.duplicates_ignored += 1
                return cached
        handler = self._dispatch.get(envelope.message_type)
        if handler is None:
            return HttpResponse(status=404)
        reply = handler(envelope)
        if reply is None:
            response = HttpResponse(status=200)
        else:
            response = HttpResponse(status=200, body=reply.to_bytes())
        if envelope.idempotency_key is not None:
            self._dedupe.put(envelope.idempotency_key, response)
        return response
