"""Local sensing preferences.

"SOR also allows a user to specify how sensors on his/her phone can be
used … he/she can disallow the phone to return locations provided by
GPS." A denied sensor makes its acquisition functions unavailable to
scripts on this phone — the task still runs, it simply cannot read that
sensor.
"""

from __future__ import annotations


class LocalPreferenceManager:
    """Per-sensor allow/deny switches; everything is allowed by default."""

    def __init__(self) -> None:
        self._denied: set[str] = set()

    def deny(self, sensor_type: str) -> None:
        """Forbid scripts from reading ``sensor_type`` on this phone."""
        self._denied.add(sensor_type)

    def allow(self, sensor_type: str) -> None:
        """Re-allow a previously denied sensor."""
        self._denied.discard(sensor_type)

    def is_allowed(self, sensor_type: str) -> bool:
        """Whether scripts may read ``sensor_type``."""
        return sensor_type not in self._denied

    def denied_sensors(self) -> list[str]:
        """Sorted list of denied sensor types."""
        return sorted(self._denied)

    def to_payload(self) -> dict[str, list[str]]:
        """Serializable form sent to the server in PREFERENCES messages."""
        return {"denied": self.denied_sensors()}
