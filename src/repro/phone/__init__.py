"""The mobile frontend (paper Section II-A, Fig. 3).

Components mirror the paper's architecture one-to-one:

* :class:`MessageHandler` — HTTP + binary-body codec boundary, GCM
  registration, wake locks during communication,
* :class:`LocalPreferenceManager` — per-sensor participation consent
  ("a user may not want to expose his/her exact locations …"),
* :class:`TaskManager` / :class:`TaskInstance` — one self-contained
  instance per sensing task, each owning its status and collected data,
* the script bridge — task instances run their LuaLite scripts in a
  sandbox whose whitelisted ``get_*_readings()`` functions the
  :class:`SensorManager` maps to providers,
* :class:`SensorManager` + :class:`ProviderRegister` — the scalability
  point: support a new sensor by registering one provider,
* :class:`Battery` / :class:`WakeLockManager` — energy accounting.

:class:`MobilePhone` wires them together and implements the network's
``HttpEndpoint`` protocol.
"""

from repro.phone.frontend import MobilePhone
from repro.phone.power import Battery, WakeLockManager
from repro.phone.preferences import LocalPreferenceManager
from repro.phone.sensor_manager import ProviderRegister, SensorManager
from repro.phone.task import TaskInstance, TaskStatus
from repro.phone.task_manager import TaskManager

__all__ = [
    "Battery",
    "LocalPreferenceManager",
    "MobilePhone",
    "ProviderRegister",
    "SensorManager",
    "TaskInstance",
    "TaskManager",
    "TaskStatus",
    "WakeLockManager",
]
