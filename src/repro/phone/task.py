"""Task instances.

"Each incoming task will be served by a task instance … A task instance
is a self-contained component, which maintains its own status (e.g.,
running, waiting for data, etc), calls proper API functions to acquire
data from sensors, and manages data collected from sensors."

A task instance owns one participation: the LuaLite script the server
shipped, the schedule of sensing times, and the bursts collected so
far. Executing one scheduled instant means running the script once in a
sandbox whose acquisition functions record every burst taken.
"""

from __future__ import annotations

import enum
from typing import Any

from repro.common.errors import ScriptError, SensorError
from repro.core.features.types import ReadingBurst
from repro.phone.sensor_manager import SensorManager
from repro.script import Sandbox


class TaskStatus(enum.Enum):
    """Lifecycle states of a task instance (paper Section II-A)."""
    WAITING_FOR_SCHEDULE = "waiting_for_schedule"
    RUNNING = "running"
    WAITING_FOR_DATA = "waiting_for_data"
    FINISHED = "finished"
    ERROR = "error"


class TaskInstance:
    """One sensing task on one phone."""

    def __init__(
        self,
        task_id: str,
        app_id: str,
        script_source: str,
        sensing_times: list[float],
        sensor_manager: SensorManager,
        *,
        max_script_steps: int = 500_000,
    ) -> None:
        self.task_id = task_id
        self.app_id = app_id
        self.script_source = script_source
        self.sensing_times = sorted(sensing_times)
        self.sensor_manager = sensor_manager
        self.max_script_steps = max_script_steps
        self.status = (
            TaskStatus.RUNNING if self.sensing_times else TaskStatus.FINISHED
        )
        self.error: str | None = None
        self.bursts: list[tuple[str, ReadingBurst]] = []
        self.script_results: list[Any] = []
        self._next_index = 0

    @property
    def pending_times(self) -> list[float]:
        return self.sensing_times[self._next_index :]

    @property
    def is_done(self) -> bool:
        return self.status in (TaskStatus.FINISHED, TaskStatus.ERROR)

    def next_sensing_time(self) -> float | None:
        """The next scheduled instant, or None when the task is done."""
        if self._next_index < len(self.sensing_times):
            return self.sensing_times[self._next_index]
        return None

    def execute_due(self, now: float) -> int:
        """Run the script for every scheduled instant that is due.

        Returns how many executions happened. A script or sensor error
        moves the task to ERROR (the server will see it in the upload).
        """
        executed = 0
        while (
            self._next_index < len(self.sensing_times)
            and self.sensing_times[self._next_index] <= now
            and self.status is TaskStatus.RUNNING
        ):
            self._execute_once()
            self._next_index += 1
            executed += 1
        if self.status is TaskStatus.RUNNING and self._next_index >= len(
            self.sensing_times
        ):
            self.status = TaskStatus.FINISHED
        return executed

    def _execute_once(self) -> None:
        self.status = TaskStatus.WAITING_FOR_DATA
        sandbox = Sandbox(max_steps=self.max_script_steps)
        bindings = self.sensor_manager.script_bindings(
            lambda sensor, burst: self.bursts.append((sensor, burst))
        )
        for name, function in bindings.items():
            sandbox.register_function(name, function)
        try:
            result = sandbox.run_to_python(self.script_source)
            self.script_results.append(result)
            self.status = TaskStatus.RUNNING
        except (ScriptError, SensorError) as exc:
            self.status = TaskStatus.ERROR
            self.error = str(exc)

    def collected_payload(self) -> list[dict[str, Any]]:
        """The bursts in wire form (for a SENSED_DATA message body)."""
        payload = []
        for sensor_type, burst in self.bursts:
            values: list[Any] = []
            for value in burst.values:
                if hasattr(value, "latitude"):
                    values.append(
                        [value.latitude, value.longitude, value.altitude_m]
                    )
                elif isinstance(value, tuple):
                    values.append(list(value))
                else:
                    values.append(float(value))
            payload.append(
                {
                    "sensor": sensor_type,
                    "t": burst.timestamp,
                    "dt": burst.duration_s,
                    "values": values,
                }
            )
        return payload
