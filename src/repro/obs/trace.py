"""Lightweight trace spans with parent/child nesting.

A :class:`Tracer` hands out :class:`Span` context managers::

    with tracer.span("server.handle_request", host="server") as span:
        with tracer.span("scheduler.schedule_task", app_id="app-1"):
            ...
        span.set_attribute("type", "participate")

Entering a span pushes it on the tracer's active stack; the span opened
while another is active records that span as its parent. On exit the
span is closed against the tracer's clock and appended to a bounded ring
of finished :class:`SpanRecord` objects that ``tracer.export()`` turns
into plain dicts. An exception escaping the block is recorded on the
span (``error`` attribute) and re-raised.

The clock is injectable (:class:`~repro.common.clock.Clock`), so tests
drive span timing with :class:`~repro.common.clock.ManualClock`. One
tracer may serve many OS threads at once (the concurrent server's
worker pool opens a span per request): the active-span stack is
thread-local, so parent/child nesting is tracked per thread, while the
finished-span ring and the id counter are shared across all of them.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.common.clock import Clock, SystemClock
from repro.common.errors import ObservabilityError


@dataclass
class SpanRecord:
    """One finished span."""

    span_id: int
    parent_id: int | None
    name: str
    start: float
    end: float
    attributes: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict[str, Any]:
        """A JSON-friendly representation (exporters and the CLI)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attributes": dict(self.attributes),
        }


class Span:
    """An in-flight span; use only as a context manager."""

    __slots__ = ("_tracer", "span_id", "parent_id", "name", "attributes", "_start")

    def __init__(
        self,
        tracer: "Tracer",
        span_id: int,
        parent_id: int | None,
        name: str,
        attributes: dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attributes = attributes
        self._start = 0.0

    def set_attribute(self, key: str, value: Any) -> None:
        """Attach ``key=value`` to the span (overwrites)."""
        self.attributes[key] = value

    def __enter__(self) -> "Span":
        self._start = self._tracer._clock.now()
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        if exc is not None:
            self.attributes["error"] = repr(exc)
        self._tracer._pop(self)
        return False  # never swallow the exception


class Tracer:
    """Creates spans, tracks nesting, and keeps the last N finished spans."""

    def __init__(self, clock: Clock | None = None, max_finished: int = 2048) -> None:
        self._clock: Clock = clock if clock is not None else SystemClock()
        self._local = threading.local()
        # deque.append is atomic under the GIL; itertools.count.__next__
        # is a single C call, so id allocation needs no lock either.
        self._finished: deque[SpanRecord] = deque(maxlen=max_finished)
        self._ids = itertools.count(1)

    @property
    def _stack(self) -> list[Span]:
        """The calling thread's active-span stack (created on first use)."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    # ------------------------------------------------------------------
    # span lifecycle
    # ------------------------------------------------------------------
    def span(self, name: str, **attributes: Any) -> Span:
        """A new span named ``name``; parent is the currently active span."""
        parent = self._stack[-1].span_id if self._stack else None
        return Span(self, next(self._ids), parent, name, dict(attributes))

    def _push(self, span: Span) -> None:
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise ObservabilityError(
                f"span {span.name!r} closed out of order (nesting violated)"
            )
        self._stack.pop()
        self._finished.append(
            SpanRecord(
                span_id=span.span_id,
                parent_id=span.parent_id,
                name=span.name,
                start=span._start,
                end=self._clock.now(),
                attributes=span.attributes,
            )
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def active_span(self) -> Span | None:
        """The innermost span currently open, if any."""
        return self._stack[-1] if self._stack else None

    def finished(self) -> tuple[SpanRecord, ...]:
        """Finished spans, oldest first (bounded by ``max_finished``)."""
        return tuple(self._finished)

    def export(self) -> list[dict[str, Any]]:
        """Finished spans as plain dicts (JSON exporter, CLI dump)."""
        return [record.to_dict() for record in self._finished]

    def reset(self) -> None:
        """Forget all finished spans (open spans stay open)."""
        self._finished.clear()


class _NullSpan:
    """Shared no-op span for :class:`NullTracer`."""

    __slots__ = ()
    span_id = 0
    parent_id = None
    name = ""

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer(Tracer):
    """A tracer that records nothing (inject to disable tracing)."""

    def span(self, name: str, **attributes: Any) -> _NullSpan:  # type: ignore[override]
        """A shared no-op span."""
        return _NULL_SPAN
