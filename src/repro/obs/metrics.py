"""A dependency-free metrics registry: counters, gauges, histograms, timers.

Every hot path in the reproduction reports to one of these instruments so
the server's ``GET /metrics`` endpoint (and the ``repro obs`` CLI command)
can expose what the system actually did — requests handled, instants
evaluated by the greedy scheduler, flow iterations spent on aggregation,
bytes moved by the transport, rows touched in the database.

Design rules, in rough order of importance:

* **Cheap on the hot path.** ``Counter.labels(...)`` returns a child
  series whose ``inc`` is one float addition; callers on tight loops
  cache the child (or accumulate locally and report once per call).
* **Thread-safe.** The concurrent server increments counters and
  observes histograms from many worker threads at once; every child
  series guards its state with a lock (`x += y` on a Python float is a
  read-modify-write that loses updates under races), and exposition
  snapshots series under the same locks.
* **Injectable.** Components accept a :class:`MetricsRegistry` and fall
  back to the process-global default (see :mod:`repro.obs`), so tests
  can pass a fresh registry — or :class:`NullRegistry` to turn the whole
  subsystem into no-ops.
* **Deterministic exposition.** Export order is sorted (metric name,
  then label values) so the Prometheus text is stable across runs.

The registry is get-or-create: asking twice for the same metric name
returns the same instrument, and asking with a conflicting kind or label
set raises :class:`~repro.common.errors.ObservabilityError`.
"""

from __future__ import annotations

import re
import threading
from typing import Iterator, Sequence

from repro.common.clock import Clock, SystemClock
from repro.common.errors import ObservabilityError

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Generic histogram buckets (powers-of-ten ladder, wide enough for both
#: sub-millisecond timings and aggregate costs in the hundreds).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0,
)

#: Buckets tuned for wall-clock seconds of in-process request handling.
DEFAULT_TIME_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _validate_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ObservabilityError(f"invalid metric name {name!r}")
    return name


def _validate_labels(label_names: Sequence[str]) -> tuple[str, ...]:
    names = tuple(label_names)
    for label in names:
        if not _LABEL_RE.match(label):
            raise ObservabilityError(f"invalid label name {label!r}")
    if len(set(names)) != len(names):
        raise ObservabilityError(f"duplicate label names in {names!r}")
    return names


class Metric:
    """Base class: a named family of label-keyed series."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labels: Sequence[str] = ()) -> None:
        self.name = _validate_name(name)
        self.help = help
        self.label_names = _validate_labels(labels)
        self._series: dict[tuple[str, ...], object] = {}
        self._lock = threading.Lock()

    def _key(self, labels: dict[str, object]) -> tuple[str, ...]:
        if set(labels) != set(self.label_names):
            raise ObservabilityError(
                f"metric {self.name!r} takes labels {self.label_names!r}, "
                f"got {tuple(sorted(labels))!r}"
            )
        return tuple(str(labels[name]) for name in self.label_names)

    def _child(self, labels: dict[str, object]) -> object:
        key = self._key(labels)
        child = self._series.get(key)
        if child is None:
            with self._lock:
                child = self._series.setdefault(key, self._new_child())
        return child

    def _new_child(self) -> object:  # pragma: no cover - subclass hook
        raise NotImplementedError

    def series(self) -> Iterator[tuple[tuple[str, ...], object]]:
        """Yield ``(label_values, child)`` pairs in sorted label order.

        Snapshots the series map under the metric lock so exporters can
        run while worker threads are still creating new label children.
        """
        with self._lock:
            items = list(self._series.items())
        return iter(sorted(items))

    def clear(self) -> None:
        """Drop every series (used by registry reset)."""
        with self._lock:
            self._series.clear()


class _CounterChild:
    """One counter series; ``inc`` is a single lock-guarded float addition."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ObservabilityError("counters only go up")
        with self._lock:
            self.value += amount


class Counter(Metric):
    """A monotonically increasing count."""

    kind = "counter"

    def _new_child(self) -> _CounterChild:
        return _CounterChild()

    def labels(self, **labels: object) -> _CounterChild:
        """The child series for ``labels`` (cache this on hot paths)."""
        return self._child(labels)  # type: ignore[return-value]

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Increment the series for ``labels`` by ``amount`` (default 1)."""
        self.labels(**labels).inc(amount)

    def value(self, **labels: object) -> float:
        """Current value of the series for ``labels`` (0 if never touched)."""
        child = self._series.get(self._key(labels))
        return child.value if child is not None else 0.0  # type: ignore[union-attr]


class _GaugeChild:
    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount


class Gauge(Metric):
    """A value that can go up and down (current coverage, queue depth)."""

    kind = "gauge"

    def _new_child(self) -> _GaugeChild:
        return _GaugeChild()

    def labels(self, **labels: object) -> _GaugeChild:
        """The child series for ``labels`` (cache this on hot paths)."""
        return self._child(labels)  # type: ignore[return-value]

    def set(self, value: float, **labels: object) -> None:
        """Set the series for ``labels`` to ``value``."""
        self.labels(**labels).set(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Increase the series for ``labels`` by ``amount``."""
        self.labels(**labels).inc(amount)

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        """Decrease the series for ``labels`` by ``amount``."""
        self.labels(**labels).dec(amount)

    def value(self, **labels: object) -> float:
        """Current value of the series for ``labels`` (0 if never set)."""
        child = self._series.get(self._key(labels))
        return child.value if child is not None else 0.0  # type: ignore[union-attr]


class _HistogramChild:
    __slots__ = ("bucket_counts", "sum", "count", "_bounds", "_lock")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        self._bounds = bounds
        self.bucket_counts = [0] * len(bounds)
        self.sum = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.sum += value
            self.count += 1
            for index, bound in enumerate(self._bounds):
                if value <= bound:
                    self.bucket_counts[index] += 1
                    break

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """Prometheus-style cumulative ``(le, count)`` pairs, +Inf last."""
        with self._lock:
            counts = list(self.bucket_counts)
            total = self.count
        out: list[tuple[float, int]] = []
        running = 0
        for bound, bucket_count in zip(self._bounds, counts):
            running += bucket_count
            out.append((bound, running))
        out.append((float("inf"), total))
        return out

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by linear interpolation in buckets.

        The same estimate ``histogram_quantile`` makes in PromQL: find
        the bucket the quantile rank lands in and interpolate between
        its bounds (the lowest bucket interpolates from zero). Values in
        the implicit +Inf bucket clamp to the highest finite bound.
        Returns ``nan`` with no observations.
        """
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError("quantile must be within [0, 1]")
        cumulative = self.cumulative_buckets()
        total = cumulative[-1][1]
        if total == 0:
            return float("nan")
        rank = q * total
        previous_bound, previous_count = 0.0, 0
        for bound, count in cumulative[:-1]:
            if count >= rank:
                if count == previous_count:
                    return bound
                fraction = (rank - previous_count) / (count - previous_count)
                return previous_bound + fraction * (bound - previous_bound)
            previous_bound, previous_count = bound, count
        return previous_bound  # beyond the last finite bucket: clamp


class Histogram(Metric):
    """A distribution over fixed, sorted upper-bound buckets.

    Values above the last bound land only in the implicit ``+Inf``
    bucket, exactly like Prometheus client libraries.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, labels)
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds:
            raise ObservabilityError("histogram needs at least one bucket")
        if list(bounds) != sorted(set(bounds)):
            raise ObservabilityError("histogram buckets must be sorted and unique")
        self.buckets = bounds

    def _new_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    def labels(self, **labels: object) -> _HistogramChild:
        """The child series for ``labels`` (cache this on hot paths)."""
        return self._child(labels)  # type: ignore[return-value]

    def observe(self, value: float, **labels: object) -> None:
        """Record one observation in the series for ``labels``."""
        self.labels(**labels).observe(value)

    def count(self, **labels: object) -> int:
        """Number of observations recorded for ``labels``."""
        child = self._series.get(self._key(labels))
        return child.count if child is not None else 0  # type: ignore[union-attr]

    def total(self, **labels: object) -> float:
        """Sum of all observed values for ``labels``."""
        child = self._series.get(self._key(labels))
        return child.sum if child is not None else 0.0  # type: ignore[union-attr]

    def quantile(self, q: float, **labels: object) -> float:
        """Interpolated ``q``-quantile for ``labels`` (nan if unobserved)."""
        child = self._series.get(self._key(labels))
        if child is None:
            return float("nan")
        return child.quantile(q)  # type: ignore[union-attr]


class _TimerContext:
    """Context manager recording elapsed clock seconds into a histogram."""

    __slots__ = ("_timer", "_labels", "_start")

    def __init__(self, timer: "Timer", labels: dict[str, object]) -> None:
        self._timer = timer
        self._labels = labels
        self._start = 0.0

    def __enter__(self) -> "_TimerContext":
        self._start = self._timer.clock.now()
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        elapsed = self._timer.clock.now() - self._start
        self._timer.histogram.observe(max(0.0, elapsed), **self._labels)
        return False


class Timer:
    """A histogram of elapsed seconds, driven by an injectable clock."""

    def __init__(self, histogram: Histogram, clock: Clock) -> None:
        self.histogram = histogram
        self.clock = clock

    def time(self, **labels: object) -> _TimerContext:
        """Context manager: observe the elapsed seconds of the block."""
        return _TimerContext(self, labels)

    def observe(self, seconds: float, **labels: object) -> None:
        """Record an externally measured duration."""
        self.histogram.observe(seconds, **labels)


class MetricsRegistry:
    """Get-or-create store of every metric in one process (or test)."""

    def __init__(self, clock: Clock | None = None) -> None:
        self.clock: Clock = clock if clock is not None else SystemClock()
        self._metrics: dict[str, Metric] = {}
        self._lock = threading.Lock()

    def _get_or_create(
        self, cls: type[Metric], name: str, help: str, labels: Sequence[str], **kwargs: object
    ) -> Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or type(existing) is not cls:
                    raise ObservabilityError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                if existing.label_names != _validate_labels(labels):
                    raise ObservabilityError(
                        f"metric {name!r} already registered with labels "
                        f"{existing.label_names!r}"
                    )
                return existing
            metric = cls(name, help, labels, **kwargs)  # type: ignore[arg-type]
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> Counter:
        """Get or create the counter ``name``."""
        return self._get_or_create(Counter, name, help, labels)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Gauge:
        """Get or create the gauge ``name``."""
        return self._get_or_create(Gauge, name, help, labels)  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Get or create the histogram ``name`` with fixed ``buckets``."""
        return self._get_or_create(  # type: ignore[return-value]
            Histogram, name, help, labels, buckets=buckets
        )

    def timer(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> Timer:
        """Get or create a seconds histogram wrapped in a :class:`Timer`."""
        histogram = self.histogram(name, help, labels, buckets=buckets)
        return Timer(histogram, self.clock)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def get(self, name: str) -> Metric | None:
        """The metric registered under ``name``, or ``None``."""
        return self._metrics.get(name)

    def collect(self) -> list[Metric]:
        """Every registered metric, sorted by name (for exporters)."""
        return [self._metrics[name] for name in sorted(self._metrics)]

    def reset(self) -> None:
        """Drop all series but keep registrations (between test cases)."""
        for metric in self._metrics.values():
            metric.clear()


class _NullInstrument:
    """Accepts the full Counter/Gauge/Histogram/Timer surface, does nothing."""

    def labels(self, **labels: object) -> "_NullInstrument":
        return self

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        pass

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        pass

    def set(self, value: float, **labels: object) -> None:
        pass

    def observe(self, value: float, **labels: object) -> None:
        pass

    def value(self, **labels: object) -> float:
        return 0.0

    def count(self, **labels: object) -> int:
        return 0

    def total(self, **labels: object) -> float:
        return 0.0

    def quantile(self, q: float, **labels: object) -> float:
        return float("nan")

    def time(self, **labels: object) -> "_NullInstrument":
        return self

    def __enter__(self) -> "_NullInstrument":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        return False


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry(MetricsRegistry):
    """A registry whose instruments are shared no-ops.

    Inject into any component to switch its instrumentation off; the
    exporters see an empty registry.
    """

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()):  # type: ignore[override]
        """A shared no-op instrument."""
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()):  # type: ignore[override]
        """A shared no-op instrument."""
        return _NULL_INSTRUMENT

    def histogram(  # type: ignore[override]
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        """A shared no-op instrument."""
        return _NULL_INSTRUMENT

    def timer(  # type: ignore[override]
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ):
        """A shared no-op instrument."""
        return _NULL_INSTRUMENT
