"""Registry exporters: Prometheus text exposition and JSON dicts.

``to_prometheus_text`` implements the subset of the text exposition
format (version 0.0.4) that counters, gauges and histograms need —
``# HELP`` / ``# TYPE`` headers, escaped label values, and cumulative
``_bucket{le=...}`` / ``_sum`` / ``_count`` histogram series. The output
is byte-stable for a given registry state (metrics sorted by name,
series sorted by label values), which the tests rely on.
"""

from __future__ import annotations

from typing import Any

from repro.obs.metrics import (
    Metric,
    MetricsRegistry,
    _CounterChild,
    _GaugeChild,
    _HistogramChild,
)

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r"\"")


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == int(value):
        return str(int(value))
    return repr(value)


def _label_block(names: tuple[str, ...], values: tuple[str, ...],
                 extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(names, values)
    ]
    pairs.extend(f'{name}="{_escape_label_value(value)}"' for name, value in extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _metric_lines(metric: Metric) -> list[str]:
    lines = [
        f"# HELP {metric.name} {_escape_help(metric.help)}",
        f"# TYPE {metric.name} {metric.kind}",
    ]
    for values, child in metric.series():
        block = _label_block(metric.label_names, values)
        if isinstance(child, (_CounterChild, _GaugeChild)):
            lines.append(f"{metric.name}{block} {_format_value(child.value)}")
        elif isinstance(child, _HistogramChild):
            for bound, cumulative in child.cumulative_buckets():
                bucket_block = _label_block(
                    metric.label_names, values, (("le", _format_value(bound)),)
                )
                lines.append(f"{metric.name}_bucket{bucket_block} {cumulative}")
            lines.append(f"{metric.name}_sum{block} {_format_value(child.sum)}")
            lines.append(f"{metric.name}_count{block} {child.count}")
    return lines


def to_prometheus_text(registry: MetricsRegistry) -> str:
    """The whole registry in Prometheus text exposition format."""
    lines: list[str] = []
    for metric in registry.collect():
        lines.extend(_metric_lines(metric))
    return "\n".join(lines) + ("\n" if lines else "")


def _series_dict(metric: Metric) -> list[dict[str, Any]]:
    out: list[dict[str, Any]] = []
    for values, child in metric.series():
        entry: dict[str, Any] = {
            "labels": dict(zip(metric.label_names, values)),
        }
        if isinstance(child, (_CounterChild, _GaugeChild)):
            entry["value"] = child.value
        elif isinstance(child, _HistogramChild):
            entry["count"] = child.count
            entry["sum"] = child.sum
            entry["buckets"] = {
                _format_value(bound): cumulative
                for bound, cumulative in child.cumulative_buckets()
            }
        out.append(entry)
    return out


def to_dict(registry: MetricsRegistry) -> dict[str, Any]:
    """The whole registry as a JSON-serialisable dict keyed by name."""
    snapshot: dict[str, Any] = {}
    for metric in registry.collect():
        snapshot[metric.name] = {
            "type": metric.kind,
            "help": metric.help,
            "series": _series_dict(metric),
        }
    return snapshot


__all__ = ["CONTENT_TYPE", "to_dict", "to_prometheus_text"]
