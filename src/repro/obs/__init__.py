"""Observability: metrics registry, trace spans, exporters.

Every instrumented component takes ``metrics=`` / ``tracer=`` keyword
arguments and falls back to the process-global defaults below, so

* production-style runs get one registry for the whole process, exposed
  over the server's ``GET /metrics`` endpoint and the ``repro obs`` CLI
  command;
* tests inject a fresh :class:`MetricsRegistry` (exact assertions) or a
  :class:`NullRegistry` / :class:`NullTracer` (instrumentation off).

See ``docs/OBSERVABILITY.md`` for the metric-name catalogue and the
conventions for adding new instruments.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.obs.export import CONTENT_TYPE, to_dict, to_prometheus_text
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    Timer,
)
from repro.obs.trace import NullTracer, Span, SpanRecord, Tracer

_default_registry = MetricsRegistry()
_default_tracer = Tracer()


def get_metrics() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _default_registry


def get_tracer() -> Tracer:
    """The process-global tracer."""
    return _default_tracer


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the global registry; returns the previous one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous


def set_tracer(tracer: Tracer) -> Tracer:
    """Replace the global tracer; returns the previous one."""
    global _default_tracer
    previous = _default_tracer
    _default_tracer = tracer
    return previous


@contextmanager
def use_metrics(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Temporarily swap the global registry (test isolation)."""
    previous = set_metrics(registry)
    try:
        yield registry
    finally:
        set_metrics(previous)


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Temporarily swap the global tracer (test isolation)."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


__all__ = [
    "CONTENT_TYPE",
    "DEFAULT_BUCKETS",
    "DEFAULT_TIME_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NullTracer",
    "Span",
    "SpanRecord",
    "Timer",
    "Tracer",
    "get_metrics",
    "get_tracer",
    "set_metrics",
    "set_tracer",
    "to_dict",
    "to_prometheus_text",
    "use_metrics",
    "use_tracer",
]
