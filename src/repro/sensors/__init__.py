"""Sensor providers (paper Section II-A, "Sensor Manager and Providers").

A *Provider* is "a software component which actually operates embedded
and external sensors … to collect data". In this reproduction the
hardware is replaced by environment signal models
(:mod:`repro.sim.environment`): a provider samples its signal at the
current simulated time, adds sensor noise, and buffers the readings.

The paper's energy-saving behaviour is modelled faithfully: each
provider keeps a data buffer shared across tasks, so a second task
asking for a reading the buffer already holds (within the provider's
freshness window) costs no extra energy; fresh acquisitions charge the
provider's per-sample energy cost.

Providers for every sensor on a Google Nexus 4 (accelerometer, GPS,
light, microphone, Wi-Fi, compass, gyroscope, pressure) and on a
Sensordrone (temperature, humidity, pressure, light, gas, …) are
constructed through the same two classes — scalar and vector providers
parameterized by a :class:`SensorSpec`.
"""

from repro.sensors.buffer import BufferedReading, DataBuffer
from repro.sensors.provider import (
    GpsProvider,
    Provider,
    ScalarProvider,
    VectorProvider,
)
from repro.sensors.spec import (
    NEXUS4_SENSORS,
    SENSORDRONE_SENSORS,
    SensorKind,
    SensorSpec,
)

__all__ = [
    "BufferedReading",
    "DataBuffer",
    "GpsProvider",
    "NEXUS4_SENSORS",
    "Provider",
    "SENSORDRONE_SENSORS",
    "ScalarProvider",
    "SensorKind",
    "SensorSpec",
    "VectorProvider",
]
