"""Sensor specifications: identity, units, noise and energy cost."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common.errors import ValidationError


class SensorKind(enum.Enum):
    """Whether a sensor is on the phone or an external Bluetooth device."""

    EMBEDDED = "embedded"
    EXTERNAL = "external"


@dataclass(frozen=True)
class SensorSpec:
    """Static description of one sensor.

    ``noise_std`` is the standard deviation of additive measurement
    noise; ``energy_per_sample_mj`` the cost charged to the phone's
    battery per fresh sample; ``freshness_s`` how long a buffered
    reading may be reused by other tasks ("each Provider maintains a
    data buffer … and can even share them with multiple different
    tasks. In this way, energy consumed for sensing can be reduced");
    ``default_timeout_s`` how long the Sensor Manager waits before
    cancelling an acquisition ("the manager can cancel data acquisition
    if timeout").
    """

    sensor_type: str
    kind: SensorKind
    unit: str
    noise_std: float = 0.0
    energy_per_sample_mj: float = 1.0
    freshness_s: float = 1.0
    default_timeout_s: float = 120.0

    def __post_init__(self) -> None:
        if not self.sensor_type:
            raise ValidationError("sensor_type is required")
        if self.noise_std < 0:
            raise ValidationError("noise_std must be non-negative")
        if self.energy_per_sample_mj < 0:
            raise ValidationError("energy_per_sample_mj must be non-negative")
        if self.freshness_s < 0:
            raise ValidationError("freshness_s must be non-negative")
        if self.default_timeout_s <= 0:
            raise ValidationError("default_timeout_s must be positive")


def _embedded(sensor_type: str, unit: str, noise: float, energy: float) -> SensorSpec:
    return SensorSpec(
        sensor_type=sensor_type,
        kind=SensorKind.EMBEDDED,
        unit=unit,
        noise_std=noise,
        energy_per_sample_mj=energy,
    )


def _external(sensor_type: str, unit: str, noise: float, energy: float) -> SensorSpec:
    return SensorSpec(
        sensor_type=sensor_type,
        kind=SensorKind.EXTERNAL,
        unit=unit,
        noise_std=noise,
        energy_per_sample_mj=energy,
    )


# Sensors available on a Google Nexus 4 (the paper's field-test phone).
NEXUS4_SENSORS: dict[str, SensorSpec] = {
    spec.sensor_type: spec
    for spec in (
        _embedded("accelerometer", "m/s^2", 0.02, 0.5),
        _embedded("gps", "deg", 0.0, 25.0),  # fix noise modelled in metres
        _embedded("light", "lux", 5.0, 0.3),
        _embedded("microphone", "dB", 1.0, 2.0),
        _embedded("wifi", "dBm", 1.5, 3.0),
        _embedded("compass", "deg", 2.0, 0.5),
        _embedded("gyroscope", "rad/s", 0.01, 0.5),
        _embedded("pressure", "hPa", 0.1, 0.3),
    )
}

# Sensors on a Sensordrone (the paper's external multisensor, Fig. 1).
SENSORDRONE_SENSORS: dict[str, SensorSpec] = {
    spec.sensor_type: spec
    for spec in (
        _external("temperature", "F", 0.3, 1.0),
        _external("humidity", "%", 1.0, 1.0),
        _external("drone_pressure", "hPa", 0.1, 1.0),
        _external("drone_light", "lux", 5.0, 1.0),
        _external("gas_co", "ppm", 0.5, 2.0),
        _external("gas_oxidizing", "ppm", 0.5, 2.0),
        _external("ir_temperature", "F", 0.5, 1.5),
        _external("color_r", "raw", 2.0, 1.0),
        _external("color_g", "raw", 2.0, 1.0),
        _external("color_b", "raw", 2.0, 1.0),
    )
}
