"""Provider implementations.

A provider samples a *signal* — a callable ``t → value`` supplied by the
environment model — applies measurement noise, charges energy, and
serves readings through its shared buffer. Acquisition is synchronous
here but mirrors the paper's asynchronous contract: ``acquire_burst``
returns the ``(t, Δt, d)`` burst a task instance would have been called
back with.
"""

from __future__ import annotations

from typing import Any, Callable, Protocol, runtime_checkable

import numpy as np

from repro.common.clock import Clock
from repro.common.errors import SensorError
from repro.common.geo import LatLon, offset_latlon
from repro.core.features.types import GpsFix, ReadingBurst
from repro.sensors.buffer import BufferedReading, DataBuffer
from repro.sensors.spec import SensorSpec


@runtime_checkable
class Provider(Protocol):
    """What the phone's Sensor Manager needs from any provider."""

    spec: SensorSpec
    buffer: DataBuffer
    energy_consumed_mj: float

    def read_now(self) -> Any:
        """One reading at the current time (buffer-aware)."""
        ...

    def acquire_burst(self, count: int, interval_s: float) -> ReadingBurst:
        """``count`` readings ``interval_s`` apart, as one (t, Δt, d) burst."""
        ...

    def estimated_duration_s(self, count: int, interval_s: float) -> float:
        """End-to-end acquisition time (for the manager's timeout check)."""
        ...


class _BaseProvider:
    """Shared plumbing: clock, buffer, freshness reuse, energy ledger.

    ``response_delay_s`` models sensors that take time to produce their
    first reading (a GPS cold fix, a warming gas sensor); the Sensor
    Manager cancels acquisitions whose total duration would exceed its
    timeout.
    """

    def __init__(
        self,
        spec: SensorSpec,
        clock: Clock,
        rng: np.random.Generator,
        *,
        buffer_capacity: int = 1024,
        response_delay_s: float = 0.0,
    ) -> None:
        if response_delay_s < 0:
            raise SensorError("response_delay_s must be non-negative")
        self.spec = spec
        self.clock = clock
        self.rng = rng
        self.buffer = DataBuffer(capacity=buffer_capacity)
        self.response_delay_s = response_delay_s
        self.energy_consumed_mj = 0.0
        self.samples_taken = 0
        self.samples_reused = 0

    def estimated_duration_s(self, count: int, interval_s: float) -> float:
        """How long acquiring a burst will take, end to end."""
        return self.response_delay_s + max(0, count - 1) * interval_s

    def _sample(self, timestamp: float) -> Any:
        raise NotImplementedError

    def read_now(self) -> Any:
        """Read the sensor, reusing a fresh buffered value when possible.

        A freshness window of 0 disables sharing entirely (even a
        same-instant reading is re-taken).
        """
        now = self.clock.now()
        fresh = (
            self.buffer.fresh_reading(now, self.spec.freshness_s)
            if self.spec.freshness_s > 0
            else None
        )
        if fresh is not None:
            self.samples_reused += 1
            return fresh.value
        value = self._sample(now)
        self.buffer.append(BufferedReading(timestamp=now, value=value))
        self.energy_consumed_mj += self.spec.energy_per_sample_mj
        self.samples_taken += 1
        return value

    def acquire_burst(self, count: int, interval_s: float) -> ReadingBurst:
        """Take ``count`` readings ``interval_s`` apart.

        Multi-reading bursts always sample the sensor (they exist to
        capture within-window variation). A single-reading acquisition
        is served from the shared buffer when a fresh value exists —
        the paper's energy saving: "each Provider maintains a data
        buffer … and can even share them with multiple different tasks".
        """
        if count <= 0:
            raise SensorError("burst count must be positive")
        if interval_s < 0:
            raise SensorError("burst interval must be non-negative")
        if count == 1 and self.spec.freshness_s > 0:
            fresh = self.buffer.fresh_reading(
                self.clock.now(), self.spec.freshness_s
            )
            if fresh is not None:
                self.samples_reused += 1
                return ReadingBurst.of(
                    timestamp=fresh.timestamp, duration_s=0.0, values=[fresh.value]
                )
        start = self.clock.now() + self.response_delay_s
        values = []
        for index in range(count):
            timestamp = start + index * interval_s
            value = self._sample(timestamp)
            self.buffer.append(BufferedReading(timestamp=timestamp, value=value))
            self.energy_consumed_mj += self.spec.energy_per_sample_mj
            self.samples_taken += 1
            values.append(value)
        return ReadingBurst.of(
            timestamp=start, duration_s=max(0.0, (count - 1) * interval_s), values=values
        )


class ScalarProvider(_BaseProvider):
    """A provider for scalar sensors (temperature, light, noise, …)."""

    def __init__(
        self,
        spec: SensorSpec,
        clock: Clock,
        rng: np.random.Generator,
        signal: Callable[[float], float],
        **kwargs: Any,
    ) -> None:
        super().__init__(spec, clock, rng, **kwargs)
        self.signal = signal

    def _sample(self, timestamp: float) -> float:
        truth = float(self.signal(timestamp))
        if self.spec.noise_std > 0:
            truth += float(self.rng.normal(0.0, self.spec.noise_std))
        return truth


class VectorProvider(_BaseProvider):
    """A provider for fixed-arity vector sensors (accelerometer, gyro)."""

    def __init__(
        self,
        spec: SensorSpec,
        clock: Clock,
        rng: np.random.Generator,
        signal: Callable[[float], tuple[float, ...]],
        **kwargs: Any,
    ) -> None:
        super().__init__(spec, clock, rng, **kwargs)
        self.signal = signal

    def _sample(self, timestamp: float) -> tuple[float, ...]:
        truth = tuple(float(component) for component in self.signal(timestamp))
        if self.spec.noise_std > 0:
            noise = self.rng.normal(0.0, self.spec.noise_std, size=len(truth))
            truth = tuple(
                component + float(delta) for component, delta in zip(truth, noise)
            )
        return truth


class GpsProvider(_BaseProvider):
    """A provider for GPS fixes with horizontal fix error in metres.

    The signal returns the phone's true position (and altitude) at time
    t; the provider perturbs it by ``fix_error_m`` in a random
    direction, which is how GPS error actually presents.
    """

    def __init__(
        self,
        spec: SensorSpec,
        clock: Clock,
        rng: np.random.Generator,
        signal: Callable[[float], GpsFix],
        *,
        fix_error_m: float = 3.0,
        altitude_error_m: float = 1.0,
        **kwargs: Any,
    ) -> None:
        super().__init__(spec, clock, rng, **kwargs)
        self.signal = signal
        self.fix_error_m = fix_error_m
        self.altitude_error_m = altitude_error_m

    def _sample(self, timestamp: float) -> GpsFix:
        truth = self.signal(timestamp)
        east = float(self.rng.normal(0.0, self.fix_error_m))
        north = float(self.rng.normal(0.0, self.fix_error_m))
        moved = offset_latlon(
            LatLon(truth.latitude, truth.longitude), east_m=east, north_m=north
        )
        altitude = truth.altitude_m + float(self.rng.normal(0.0, self.altitude_error_m))
        return GpsFix(
            latitude=moved.latitude, longitude=moved.longitude, altitude_m=altitude
        )
