"""The per-provider data buffer shared across sensing tasks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class BufferedReading:
    """One sensed value and when it was taken."""

    timestamp: float
    value: Any


class DataBuffer:
    """A bounded time-ordered buffer of readings.

    Tasks asking for a reading "now" first look here: a reading no older
    than the provider's freshness window is reused instead of operating
    the sensor again — the paper's energy-saving data sharing.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity <= 0:
            raise ValueError("buffer capacity must be positive")
        self.capacity = capacity
        self._readings: list[BufferedReading] = []

    def __len__(self) -> int:
        return len(self._readings)

    def append(self, reading: BufferedReading) -> None:
        """Append a reading, evicting the oldest beyond capacity."""
        self._readings.append(reading)
        if len(self._readings) > self.capacity:
            del self._readings[: len(self._readings) - self.capacity]

    def latest(self) -> BufferedReading | None:
        """The most recent reading, or None when empty."""
        return self._readings[-1] if self._readings else None

    def fresh_reading(self, now: float, freshness_s: float) -> BufferedReading | None:
        """The most recent reading no older than ``freshness_s``, if any."""
        latest = self.latest()
        if latest is not None and now - latest.timestamp <= freshness_s:
            return latest
        return None

    def window(self, start: float, end: float) -> list[BufferedReading]:
        """All readings with ``start <= timestamp <= end`` (time order)."""
        return [
            reading
            for reading in self._readings
            if start <= reading.timestamp <= end
        ]

    def clear(self) -> None:
        """Drop every buffered reading."""
        self._readings.clear()
